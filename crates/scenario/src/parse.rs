//! The line-oriented scenario parser and validator.
//!
//! Grammar (one construct per line):
//!
//! ```text
//! # comment (blank lines ignored)
//! key = value          # top level: name, summary
//! [section]            # world, workload, fault, chaos, crash,
//!                      # engine, eval, expect
//! key = value          # keys belong to the open section
//! ```
//!
//! Only `[fault]` may repeat. Unknown sections, unknown keys, bad
//! values, and duplicate keys are rejected with a `file:line` error —
//! the parser never panics on any input (see the mutation property
//! test in `tests/scenario_props.rs`).

use crate::error::ScenarioError;
use crate::spec::{
    ChaosSpec, CrashSpec, EngineSpec, EvalSpec, Expectation, FaultSpec, OverloadSpec, ScenarioSpec,
    WorkloadSpec, WorldSpec,
};
use blameit::{Blame, UnlocalizedReason};
use blameit_bench::Scale;
use blameit_simnet::CrashPoint;
use std::path::Path;

/// Loads and parses one scenario file from disk.
pub fn load_scenario(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
    let file = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::whole(&file, format!("cannot read scenario file: {e}")))?;
    parse_scenario(&file, &text)
}

/// Parses scenario text. `file` is only used to position errors.
pub fn parse_scenario(file: &str, text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let mut p = Parser::new(file);
    for (i, raw_line) in text.lines().enumerate() {
        p.line(i as u32 + 1, raw_line)?;
    }
    p.finish()
}

/// Section the cursor is in.
#[derive(Clone, Copy, PartialEq)]
enum Section {
    Top,
    World,
    Workload,
    Fault,
    Chaos,
    Crash,
    Overload,
    Engine,
    Eval,
    Expect,
}

/// A half-built `[crash]` section (fields arrive line by line).
#[derive(Default)]
struct CrashDraft {
    kill_tick: Option<u64>,
    kill_point: Option<CrashPoint>,
    seed: Option<u64>,
    line: u32,
}

/// A half-built `[fault]` section.
#[derive(Default)]
struct FaultDraft {
    target: Option<(String, u32)>,
    start_hour: Option<f64>,
    duration_mins: Option<u64>,
    added_ms: Option<f64>,
    line: u32,
}

/// A half-built `[overload]` section.
#[derive(Default)]
struct OverloadDraft {
    surge_mult: Option<u32>,
    surge_start_hour: Option<f64>,
    surge_duration_mins: Option<u64>,
    surge_seed: Option<u64>,
    queue_cap_records: Option<usize>,
    shed_watermark_records: Option<usize>,
    per_loc_shed_cap: Option<usize>,
    sustained_ticks: Option<u32>,
    max_attempts: Option<u32>,
    line: u32,
}

/// A half-built `[eval]` section.
#[derive(Default)]
struct EvalDraft {
    start_hour: Option<f64>,
    duration_mins: Option<u64>,
    line: u32,
}

struct Parser {
    file: String,
    section: Section,
    name: Option<String>,
    summary: String,
    world: WorldSpec,
    workload: WorkloadSpec,
    faults: Vec<FaultSpec>,
    fault: Option<FaultDraft>,
    chaos: Option<ChaosSpec>,
    crash: Option<CrashDraft>,
    overload: Option<OverloadDraft>,
    engine: EngineSpec,
    eval: Option<EvalDraft>,
    expect: Vec<Expectation>,
    seen_sections: Vec<&'static str>,
}

impl Parser {
    fn new(file: &str) -> Self {
        Parser {
            file: file.to_string(),
            section: Section::Top,
            name: None,
            summary: String::new(),
            world: WorldSpec::default(),
            workload: WorkloadSpec::default(),
            faults: Vec::new(),
            fault: None,
            chaos: None,
            crash: None,
            overload: None,
            engine: EngineSpec::default(),
            eval: None,
            expect: Vec::new(),
            seen_sections: Vec::new(),
        }
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> ScenarioError {
        ScenarioError::at(&self.file, line, msg)
    }

    fn line(&mut self, n: u32, raw: &str) -> Result<(), ScenarioError> {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(self.err(n, format!("malformed section header {line:?}")));
            };
            return self.open_section(n, name.trim());
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(self.err(
                n,
                format!("expected `key = value`, a `[section]`, or a `#` comment, got {line:?}"),
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty() {
            return Err(self.err(n, "empty key before `=`"));
        }
        match self.section {
            Section::Top => self.top_key(n, key, value),
            Section::World => self.world_key(n, key, value),
            Section::Workload => self.workload_key(n, key, value),
            Section::Fault => self.fault_key(n, key, value),
            Section::Chaos => self.chaos_key(n, key, value),
            Section::Crash => self.crash_key(n, key, value),
            Section::Overload => self.overload_key(n, key, value),
            Section::Engine => self.engine_key(n, key, value),
            Section::Eval => self.eval_key(n, key, value),
            Section::Expect => self.expect_key(n, key, value),
        }
    }

    fn open_section(&mut self, n: u32, name: &str) -> Result<(), ScenarioError> {
        self.close_fault()?;
        let (section, tag): (Section, &'static str) = match name {
            "world" => (Section::World, "world"),
            "workload" => (Section::Workload, "workload"),
            "fault" => (Section::Fault, "fault"),
            "chaos" => (Section::Chaos, "chaos"),
            "crash" => (Section::Crash, "crash"),
            "overload" => (Section::Overload, "overload"),
            "engine" => (Section::Engine, "engine"),
            "eval" => (Section::Eval, "eval"),
            "expect" => (Section::Expect, "expect"),
            other => {
                return Err(self.err(
                    n,
                    format!(
                        "unknown section [{other}]; expected one of [world] [workload] [fault] \
                         [chaos] [crash] [overload] [engine] [eval] [expect]"
                    ),
                ))
            }
        };
        if section != Section::Fault && self.seen_sections.contains(&tag) {
            return Err(self.err(n, format!("duplicate section [{tag}]")));
        }
        self.seen_sections.push(tag);
        match section {
            Section::Fault => {
                self.fault = Some(FaultDraft {
                    line: n,
                    ..FaultDraft::default()
                })
            }
            Section::Chaos => self.chaos = Some(ChaosSpec::default()),
            Section::Crash => {
                self.crash = Some(CrashDraft {
                    line: n,
                    ..CrashDraft::default()
                })
            }
            Section::Overload => {
                self.overload = Some(OverloadDraft {
                    line: n,
                    ..OverloadDraft::default()
                })
            }
            Section::Eval => {
                self.eval = Some(EvalDraft {
                    line: n,
                    ..EvalDraft::default()
                })
            }
            _ => {}
        }
        self.section = section;
        Ok(())
    }

    /// Completes the open `[fault]` section, checking required keys.
    fn close_fault(&mut self) -> Result<(), ScenarioError> {
        let Some(draft) = self.fault.take() else {
            return Ok(());
        };
        let line = draft.line;
        let (target, target_line) = draft
            .target
            .ok_or_else(|| self.err(line, "[fault] is missing `target`"))?;
        self.faults.push(FaultSpec {
            target,
            target_line,
            start_hour: draft
                .start_hour
                .ok_or_else(|| self.err(line, "[fault] is missing `start_hour`"))?,
            duration_mins: draft
                .duration_mins
                .ok_or_else(|| self.err(line, "[fault] is missing `duration_mins`"))?,
            added_ms: draft
                .added_ms
                .ok_or_else(|| self.err(line, "[fault] is missing `added_ms`"))?,
        });
        Ok(())
    }

    fn finish(mut self) -> Result<ScenarioSpec, ScenarioError> {
        self.close_fault()?;
        let name = self
            .name
            .take()
            .ok_or_else(|| ScenarioError::whole(&self.file, "missing required `name = ...`"))?;
        let Some(eval) = self.eval.take() else {
            return Err(ScenarioError::whole(&self.file, "missing [eval] section"));
        };
        let eval = EvalSpec {
            start_hour: eval
                .start_hour
                .ok_or_else(|| self.err(eval.line, "[eval] is missing `start_hour`"))?,
            duration_mins: eval
                .duration_mins
                .ok_or_else(|| self.err(eval.line, "[eval] is missing `duration_mins`"))?,
        };
        let crash = match self.crash.take() {
            None => None,
            Some(draft) => {
                let line = draft.line;
                Some(CrashSpec {
                    kill_tick: draft
                        .kill_tick
                        .ok_or_else(|| self.err(line, "[crash] is missing `kill_tick`"))?,
                    kill_point: draft
                        .kill_point
                        .ok_or_else(|| self.err(line, "[crash] is missing `kill_point`"))?,
                    seed: draft.seed.unwrap_or(0xC4A5),
                    line,
                })
            }
        };
        let overload = match self.overload.take() {
            None => None,
            Some(draft) => {
                let line = draft.line;
                let mult = draft
                    .surge_mult
                    .ok_or_else(|| self.err(line, "[overload] is missing `surge_mult`"))?;
                if mult < 2 {
                    return Err(self.err(line, "surge_mult must be ≥ 2 (1 is no surge)"));
                }
                Some(OverloadSpec {
                    surge_mult: mult,
                    surge_start_hour: draft.surge_start_hour.ok_or_else(|| {
                        self.err(line, "[overload] is missing `surge_start_hour`")
                    })?,
                    surge_duration_mins: draft.surge_duration_mins.ok_or_else(|| {
                        self.err(line, "[overload] is missing `surge_duration_mins`")
                    })?,
                    surge_seed: draft.surge_seed.unwrap_or(0xC4A0),
                    queue_cap_records: draft.queue_cap_records,
                    shed_watermark_records: draft.shed_watermark_records,
                    per_loc_shed_cap: draft.per_loc_shed_cap,
                    sustained_ticks: draft.sustained_ticks,
                    max_attempts: draft.max_attempts.unwrap_or(3).max(1),
                    line,
                })
            }
        };
        Ok(ScenarioSpec {
            name,
            summary: self.summary,
            world: self.world,
            workload: self.workload,
            faults: self.faults,
            chaos: self.chaos,
            crash,
            overload,
            engine: self.engine,
            eval,
            expect: self.expect,
        })
    }

    // ── per-section key handlers ────────────────────────────────────

    fn top_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        match key {
            "name" => {
                if self.name.is_some() {
                    return Err(self.err(n, "duplicate `name`"));
                }
                if value.is_empty()
                    || !value
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                {
                    return Err(self.err(
                        n,
                        format!("scenario name {value:?} must be non-empty [a-z0-9-]"),
                    ));
                }
                self.name = Some(value.to_string());
                Ok(())
            }
            "summary" => {
                self.summary = value.to_string();
                Ok(())
            }
            other => Err(self.err(
                n,
                format!("unknown top-level key {other:?}; expected `name` or `summary`"),
            )),
        }
    }

    fn world_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        match key {
            "scale" => {
                self.world.scale = match value {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "default" => Scale::Default,
                    other => {
                        return Err(self.err(
                            n,
                            format!("unknown scale {other:?}; expected tiny|small|default"),
                        ))
                    }
                }
            }
            "seed" => self.world.seed = self.u64v(n, key, value)?,
            "days" => self.world.days = self.u64v(n, key, value)?,
            "warmup_days" => self.world.warmup_days = self.u64v(n, key, value)?,
            "organic" => self.world.organic = self.boolv(n, key, value)?,
            "churn_per_day" => self.world.churn_per_day = Some(self.f64v(n, key, value)?),
            "evening_congestion_ms" => {
                self.world.evening_congestion_ms = Some(self.f64v(n, key, value)?)
            }
            "noise_sigma" => self.world.noise_sigma = Some(self.f64v(n, key, value)?),
            "spike_prob" => self.world.spike_prob = Some(self.ratev(n, key, value)?),
            "path_drift_prob" => self.world.path_drift_prob = Some(self.ratev(n, key, value)?),
            "broadband_per_metro" => {
                self.world.broadband_per_metro = Some(self.u64v(n, key, value)? as usize)
            }
            "mobile_per_metro" => {
                self.world.mobile_per_metro = Some(self.u64v(n, key, value)? as usize)
            }
            "tier1_count" => self.world.tier1_count = Some(self.u64v(n, key, value)? as usize),
            "transits_per_region" => {
                self.world.transits_per_region = Some(self.u64v(n, key, value)? as usize)
            }
            "secondary_loc_prob" => {
                self.world.secondary_loc_prob = Some(self.ratev(n, key, value)?)
            }
            other => return Err(self.err(n, format!("unknown [world] key {other:?}"))),
        }
        Ok(())
    }

    fn workload_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        match key {
            "conns_per_client_bucket" => {
                self.workload.conns_per_client_bucket = Some(self.f64v(n, key, value)?)
            }
            "secondary_volume_frac" => {
                self.workload.secondary_volume_frac = Some(self.ratev(n, key, value)?)
            }
            other => return Err(self.err(n, format!("unknown [workload] key {other:?}"))),
        }
        Ok(())
    }

    fn fault_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        // Validate before borrowing the draft mutably.
        let parsed_f64 = match key {
            "start_hour" | "added_ms" => Some(self.f64v(n, key, value)?),
            _ => None,
        };
        let parsed_u64 = match key {
            "duration_mins" => Some(self.u64v(n, key, value)?),
            _ => None,
        };
        let unknown = self.err(n, format!("unknown [fault] key {key:?}"));
        let draft = self.fault.as_mut().expect("in [fault] section");
        match key {
            "target" => draft.target = Some((value.to_string(), n)),
            "start_hour" => draft.start_hour = parsed_f64,
            "duration_mins" => draft.duration_mins = parsed_u64,
            "added_ms" => draft.added_ms = parsed_f64,
            _ => return Err(unknown),
        }
        Ok(())
    }

    fn chaos_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        let rate = matches!(
            key,
            "probe_timeout"
                | "probe_truncate"
                | "probe_slow"
                | "drop_quartet_batch"
                | "drop_route_info"
                | "churn_duplicate"
                | "churn_delay"
        )
        .then(|| self.ratev(n, key, value))
        .transpose()?;
        let secs = matches!(key, "seed" | "slow_by_secs" | "churn_delay_secs")
            .then(|| self.u64v(n, key, value))
            .transpose()?;
        let unknown = self.err(n, format!("unknown [chaos] key {key:?}"));
        let bad_plan = self.err(
            n,
            format!("unknown chaos plan {value:?}; expected none|mild|heavy|probe-storm"),
        );
        let chaos = self.chaos.as_mut().expect("in [chaos] section");
        match key {
            "plan" => {
                if !matches!(value, "none" | "mild" | "heavy" | "probe-storm") {
                    return Err(bad_plan);
                }
                chaos.plan = Some(value.to_string());
            }
            "seed" => chaos.seed = secs,
            "probe_timeout" => chaos.probe_timeout = rate,
            "probe_truncate" => chaos.probe_truncate = rate,
            "probe_slow" => chaos.probe_slow = rate,
            "slow_by_secs" => chaos.slow_by_secs = secs,
            "drop_quartet_batch" => chaos.drop_quartet_batch = rate,
            "drop_route_info" => chaos.drop_route_info = rate,
            "churn_duplicate" => chaos.churn_duplicate = rate,
            "churn_delay" => chaos.churn_delay = rate,
            "churn_delay_secs" => chaos.churn_delay_secs = secs,
            _ => return Err(unknown),
        }
        Ok(())
    }

    fn crash_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        let num = matches!(key, "kill_tick" | "seed")
            .then(|| self.u64v(n, key, value))
            .transpose()?;
        let point = (key == "kill_point")
            .then(|| {
                CrashPoint::ALL
                    .into_iter()
                    .find(|p| p.label() == value)
                    .ok_or_else(|| {
                        let all: Vec<&str> = CrashPoint::ALL.iter().map(|p| p.label()).collect();
                        self.err(
                            n,
                            format!(
                                "unknown kill_point {value:?}; expected one of {}",
                                all.join("|")
                            ),
                        )
                    })
            })
            .transpose()?;
        let unknown = self.err(n, format!("unknown [crash] key {key:?}"));
        let crash = self.crash.as_mut().expect("in [crash] section");
        match key {
            "kill_tick" => crash.kill_tick = num,
            "kill_point" => crash.kill_point = point,
            "seed" => crash.seed = num,
            _ => return Err(unknown),
        }
        Ok(())
    }

    fn overload_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        let hour = (key == "surge_start_hour")
            .then(|| self.f64v(n, key, value))
            .transpose()?;
        let num = matches!(
            key,
            "surge_mult"
                | "surge_duration_mins"
                | "surge_seed"
                | "queue_cap_records"
                | "shed_watermark_records"
                | "per_loc_shed_cap"
                | "sustained_ticks"
                | "max_attempts"
        )
        .then(|| self.u64v(n, key, value))
        .transpose()?;
        let unknown = self.err(n, format!("unknown [overload] key {key:?}"));
        let o = self.overload.as_mut().expect("in [overload] section");
        match key {
            "surge_mult" => o.surge_mult = num.map(|v| v as u32),
            "surge_start_hour" => o.surge_start_hour = hour,
            "surge_duration_mins" => o.surge_duration_mins = num,
            "surge_seed" => o.surge_seed = num,
            "queue_cap_records" => o.queue_cap_records = num.map(|v| v as usize),
            "shed_watermark_records" => o.shed_watermark_records = num.map(|v| v as usize),
            "per_loc_shed_cap" => o.per_loc_shed_cap = num.map(|v| v as usize),
            "sustained_ticks" => o.sustained_ticks = num.map(|v| v as u32),
            "max_attempts" => o.max_attempts = num.map(|v| v as u32),
            _ => return Err(unknown),
        }
        Ok(())
    }

    fn engine_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        match key {
            "probe_budget_per_loc" => {
                self.engine.probe_budget_per_loc = Some(self.u64v(n, key, value)? as usize)
            }
            "probe_max_attempts" => {
                self.engine.probe_max_attempts = Some(self.u64v(n, key, value)? as u32)
            }
            "probe_timeout_secs" => {
                self.engine.probe_timeout_secs = Some(self.u64v(n, key, value)?)
            }
            "probe_backoff_base_secs" => {
                self.engine.probe_backoff_base_secs = Some(self.u64v(n, key, value)?)
            }
            "probe_deadline_budget_secs" => {
                self.engine.probe_deadline_budget_secs = Some(self.u64v(n, key, value)?)
            }
            "baseline_max_age_secs" => {
                self.engine.baseline_max_age_secs = Some(self.u64v(n, key, value)?)
            }
            "background_period_secs" => {
                self.engine.background_period_secs = Some(self.u64v(n, key, value)?)
            }
            "churn_triggered" => self.engine.churn_triggered = Some(self.boolv(n, key, value)?),
            "tick_buckets" => {
                let v = self.u64v(n, key, value)?;
                if v == 0 {
                    return Err(self.err(n, "tick_buckets must be ≥ 1"));
                }
                self.engine.tick_buckets = Some(v as u32);
            }
            "max_alerts" => self.engine.max_alerts = Some(self.u64v(n, key, value)? as usize),
            "snapshot_every_ticks" => {
                self.engine.snapshot_every_ticks = Some(self.u64v(n, key, value)? as u32)
            }
            "flight_degraded_spike" => {
                self.engine.flight_degraded_spike = Some(self.u64v(n, key, value)?)
            }
            "flight_chaos_burst" => {
                self.engine.flight_chaos_burst = Some(self.u64v(n, key, value)?)
            }
            other => return Err(self.err(n, format!("unknown [engine] key {other:?}"))),
        }
        Ok(())
    }

    fn eval_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        let hour = (key == "start_hour")
            .then(|| self.f64v(n, key, value))
            .transpose()?;
        let mins = (key == "duration_mins")
            .then(|| self.u64v(n, key, value))
            .transpose()?;
        let unknown = self.err(n, format!("unknown [eval] key {key:?}"));
        let eval = self.eval.as_mut().expect("in [eval] section");
        match key {
            "start_hour" => eval.start_hour = hour,
            "duration_mins" => eval.duration_mins = mins,
            _ => return Err(unknown),
        }
        Ok(())
    }

    fn expect_key(&mut self, n: u32, key: &str, value: &str) -> Result<(), ScenarioError> {
        // `flight_trigger` and `culprit_as` take non-count values.
        if key == "flight_trigger" {
            if blameit_obs::FlightTrigger::from_label(value).is_none() {
                return Err(self.err(n, format!("unknown flight trigger label {value:?}")));
            }
            self.expect.push(Expectation::FlightTrigger(value.into()));
            return Ok(());
        }
        if key == "culprit_as" {
            let asn = self.u64v(n, key, value)?;
            self.expect.push(Expectation::CulpritAs(asn as u32));
            return Ok(());
        }
        let count = self.u64v(n, key, value)?;
        let e = match key {
            "blames_min" => Expectation::BlamesMin(count),
            "blames_max" => Expectation::BlamesMax(count),
            "localizations_min" => Expectation::LocalizationsMin(count),
            "localizations_max" => Expectation::LocalizationsMax(count),
            "degraded_total_max" => Expectation::DegradedTotalMax(count),
            "alerts_min" => Expectation::AlertsMin(count),
            "alerts_max" => Expectation::AlertsMax(count),
            "shed_min" => Expectation::ShedMin(count),
            "shed_max" => Expectation::ShedMax(count),
            "backpressure_min" => Expectation::BackpressureMin(count),
            "queue_peak_max" => Expectation::QueuePeakMax(count),
            "top_decile_shed_max" => Expectation::TopDecileShedMax(count),
            other => {
                if let Some(e) = blame_expect(other, count) {
                    e
                } else if let Some(e) = degraded_expect(other, count) {
                    e
                } else {
                    return Err(self.err(n, format!("unknown [expect] key {other:?}")));
                }
            }
        };
        self.expect.push(e);
        Ok(())
    }

    // ── value parsers ───────────────────────────────────────────────

    fn u64v(&self, n: u32, key: &str, value: &str) -> Result<u64, ScenarioError> {
        let parsed = match value
            .strip_prefix("0x")
            .or_else(|| value.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16),
            None => value.replace('_', "").parse(),
        };
        parsed.map_err(|_| {
            self.err(
                n,
                format!("{key} expects an unsigned integer, got {value:?}"),
            )
        })
    }

    fn f64v(&self, n: u32, key: &str, value: &str) -> Result<f64, ScenarioError> {
        let v: f64 = value
            .parse()
            .map_err(|_| self.err(n, format!("{key} expects a number, got {value:?}")))?;
        if !v.is_finite() || v < 0.0 {
            return Err(self.err(n, format!("{key} must be finite and ≥ 0, got {value}")));
        }
        Ok(v)
    }

    /// A probability in `[0, 1]`.
    fn ratev(&self, n: u32, key: &str, value: &str) -> Result<f64, ScenarioError> {
        let v = self.f64v(n, key, value)?;
        if v > 1.0 {
            return Err(self.err(n, format!("{key} is a probability in [0, 1], got {value}")));
        }
        Ok(v)
    }

    fn boolv(&self, n: u32, key: &str, value: &str) -> Result<bool, ScenarioError> {
        match value {
            "1" | "true" => Ok(true),
            "0" | "false" => Ok(false),
            other => Err(self.err(n, format!("{key} expects 0|1|true|false, got {other:?}"))),
        }
    }
}

/// `blame_<category>_<min|max>` keys.
fn blame_expect(key: &str, count: u64) -> Option<Expectation> {
    let rest = key.strip_prefix("blame_")?;
    let (cat, bound) = rest.rsplit_once('_')?;
    let blame = Blame::ALL.into_iter().find(|b| b.to_string() == cat)?;
    match bound {
        "min" => Some(Expectation::BlameMin(blame, count)),
        "max" => Some(Expectation::BlameMax(blame, count)),
        _ => None,
    }
}

/// `degraded_<reason>_<min|max>` keys (snake_case reason labels).
fn degraded_expect(key: &str, count: u64) -> Option<Expectation> {
    let rest = key.strip_prefix("degraded_")?;
    let (reason_s, bound) = rest.rsplit_once('_')?;
    let reason = UnlocalizedReason::ALL
        .into_iter()
        .find(|r| r.label() == reason_s)?;
    match bound {
        "min" => Some(Expectation::DegradedMin(reason, count)),
        "max" => Some(Expectation::DegradedMax(reason, count)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
name = smoke
summary = minimal valid scenario

[eval]
start_hour = 24
duration_mins = 45
";

    #[test]
    fn minimal_scenario_parses() {
        let spec = parse_scenario("mem.scn", MINIMAL).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.eval.duration_mins, 45);
        assert!(spec.faults.is_empty() && spec.chaos.is_none() && spec.crash.is_none());
    }

    #[test]
    fn unknown_key_positions_the_error() {
        let text = format!("{MINIMAL}\n[world]\nzap = 3\n");
        let err = parse_scenario("mem.scn", &text).unwrap_err();
        assert_eq!(err.line, 9, "{err}");
        assert!(
            err.to_string().contains("unknown [world] key \"zap\""),
            "{err}"
        );
    }

    #[test]
    fn unknown_section_rejected() {
        let err = parse_scenario("m.scn", &format!("{MINIMAL}[bogus]\n")).unwrap_err();
        assert!(err.to_string().contains("unknown section [bogus]"), "{err}");
    }

    #[test]
    fn fault_requires_all_keys() {
        let text =
            "name = x\n[fault]\ntarget = cloud:0\n[eval]\nstart_hour = 24\nduration_mins = 15\n";
        let err = parse_scenario("m.scn", text).unwrap_err();
        assert!(err.to_string().contains("missing `start_hour`"), "{err}");
    }

    #[test]
    fn expect_grammar_covers_blames_and_reasons() {
        let text = format!(
            "{MINIMAL}\n[expect]\nblame_middle_min = 2\ndegraded_no_baseline_max = 0\n\
             culprit_as = 104\nflight_trigger = degraded-spike\n"
        );
        let spec = parse_scenario("m.scn", &text).unwrap();
        assert_eq!(spec.expect.len(), 4);
        assert!(spec
            .expect
            .contains(&Expectation::BlameMin(Blame::Middle, 2)));
        assert!(spec
            .expect
            .contains(&Expectation::DegradedMax(UnlocalizedReason::NoBaseline, 0)));
    }

    #[test]
    fn overload_section_parses_and_validates() {
        let text = format!(
            "{MINIMAL}\n[overload]\nsurge_mult = 10\nsurge_start_hour = 24.5\n\
             surge_duration_mins = 60\nqueue_cap_records = 9000\n\
             shed_watermark_records = 6000\n[expect]\nshed_min = 1\n\
             backpressure_min = 1\nqueue_peak_max = 9000\ntop_decile_shed_max = 0\n"
        );
        let spec = parse_scenario("m.scn", &text).unwrap();
        let o = spec.overload.expect("overload parsed");
        assert_eq!(o.surge_mult, 10);
        assert_eq!(o.queue_cap_records, Some(9000));
        assert_eq!(o.max_attempts, 3, "default attempts");
        assert!(spec.expect.contains(&Expectation::QueuePeakMax(9000)));
        assert!(spec.expect.contains(&Expectation::TopDecileShedMax(0)));

        let missing = format!("{MINIMAL}\n[overload]\nsurge_mult = 10\n");
        let err = parse_scenario("m.scn", &missing).unwrap_err();
        assert!(err.to_string().contains("surge_start_hour"), "{err}");
        let weak = format!(
            "{MINIMAL}\n[overload]\nsurge_mult = 1\nsurge_start_hour = 24\n\
             surge_duration_mins = 30\n"
        );
        let err = parse_scenario("m.scn", &weak).unwrap_err();
        assert!(err.to_string().contains("must be ≥ 2"), "{err}");
    }

    #[test]
    fn hex_seeds_and_duplicate_sections() {
        let text = format!("{MINIMAL}\n[chaos]\nseed = 0xC4A05\n");
        let spec = parse_scenario("m.scn", &text).unwrap();
        assert_eq!(spec.chaos.unwrap().seed, Some(0xC4A05));
        let dup = format!("{MINIMAL}\n[eval]\nstart_hour = 25\nduration_mins = 15\n");
        let err = parse_scenario("m.scn", &dup).unwrap_err();
        assert!(
            err.to_string().contains("duplicate section [eval]"),
            "{err}"
        );
    }
}
