//! Executes a [`CompiledScenario`] through the deterministic tick.
//!
//! The runner follows the CLI's three-window shape: warmup (history
//! learning, no probes), burn-in (ticks run and discarded so background
//! probes can build middle baselines), then the scored eval window.
//! Scenarios with a `[chaos]` plan run through [`ChaosBackend`];
//! scenarios with a `[crash]` section run the durable path — kill,
//! fsck, recover, resume — and must still produce an eval transcript
//! byte-identical to an uninterrupted run, which the runner verifies
//! itself on every crash scenario.

use crate::compile::CompiledScenario;
use crate::error::ScenarioError;
use blameit::{
    fsck, render_tick_transcript, tally, Backend, BlameCounts, BlameItEngine, ChaosBackend,
    DurableEngine, LocalizationVerdict, PersistError, RecordBatch, StartMode, StateStore,
    TickOutput, UnlocalizedReason, WorldBackend,
};
use blameit_daemon::{DaemonConfig, DaemonCore, OfferReply};
use blameit_obs::MetricsRegistry;
use blameit_simnet::{CrashPlan, TimeBucket};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// What a scenario produced: the canonical transcript (golden-pinnable)
/// plus the aggregates the `[expect]` block is evaluated against.
pub struct ScenarioRun {
    /// Canonical eval-window transcript
    /// ([`render_tick_transcript`] output) — byte-identical at any
    /// thread count.
    pub transcript: String,
    /// Flight-recorder JSONL dump taken after the run — like the
    /// transcript, byte-identical at any thread count. On crash runs it
    /// covers the post-recovery engine only.
    pub flight_dump: String,
    /// Eval-window aggregates.
    pub report: ScenarioReport,
}

/// Aggregates over the eval window only (burn-in output is discarded,
/// and metric counters are differenced across the burn-in/eval
/// boundary).
pub struct ScenarioReport {
    /// Engine ticks in the eval window.
    pub ticks: u64,
    /// Passive blame tally.
    pub blames: BlameCounts,
    /// Active-phase localizations attempted.
    pub localizations: u64,
    /// Culprit ASes named, sorted and deduplicated.
    pub culprits: Vec<u32>,
    /// Degraded verdicts per reason, [`UnlocalizedReason::ALL`] order,
    /// counted from the localization records.
    pub degraded_verdicts: [u64; 6],
    /// The same counts read back from the engine's metric counters
    /// (eval-window delta). `None` on crash runs: counters don't
    /// compose across a kill/recover boundary.
    pub degraded_metrics: Option<[u64; 6]>,
    /// Operator alerts emitted.
    pub alerts: u64,
    /// Flight-recorder trigger labels that fired, deduplicated, in
    /// first-fired order.
    pub flight_triggers: Vec<String>,
    /// Ingest accounting, `Some` exactly on `[overload]` runs.
    pub overload: Option<OverloadReport>,
}

/// Eval-side ingest accounting from an `[overload]` run (cumulative
/// over the whole feed, burn-in included — overload scenarios place
/// their surge inside the eval window, so burn-in contributes zeros).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadReport {
    /// Records offered (retries re-count, like the daemon's own stats).
    pub offered: u64,
    /// Records admitted to the queue.
    pub admitted: u64,
    /// Records shed by the impact-ordered controller.
    pub shed_low_impact: u64,
    /// Records refused wholesale at the queue cap.
    pub shed_backpressure: u64,
    /// `SLOW_DOWN` replies issued.
    pub backpressure_replies: u64,
    /// Buckets the feeder abandoned after exhausting its attempts.
    pub batches_abandoned: u64,
    /// Highest queue depth observed after an admit.
    pub queue_peak_records: u64,
    /// Shed records that ranked in the top impact decile of their own
    /// offer (the coverage-protection claim: should stay 0).
    pub top_decile_shed_records: u64,
}

/// Runs `scn` at `threads` engine threads (`0` = ambient default) and
/// returns the transcript + report. `file` positions run errors.
pub fn run_scenario(
    file: &str,
    scn: &CompiledScenario,
    threads: usize,
) -> Result<ScenarioRun, ScenarioError> {
    if scn.spec.crash.is_some() {
        run_crash(file, scn, threads)
    } else if scn.spec.overload.is_some() {
        run_overload(file, scn, threads)
    } else {
        Ok(run_plain(scn, threads))
    }
}

/// The non-durable path: plain engine, optionally behind a
/// [`ChaosBackend`].
fn run_plain(scn: &CompiledScenario, threads: usize) -> ScenarioRun {
    let cfg = scn.engine_config(threads);
    let parallelism = cfg.parallelism;
    let mut engine = BlameItEngine::new(cfg);
    let outs = match &scn.plan {
        Some(plan) => {
            let mut backend = ChaosBackend::with_registry(
                WorldBackend::with_parallelism(&scn.world, parallelism),
                *plan,
                engine.metrics().registry(),
            );
            drive(&mut engine, &mut backend, scn)
        }
        None => {
            let mut backend = WorldBackend::with_parallelism(&scn.world, parallelism);
            drive(&mut engine, &mut backend, scn)
        }
    };
    finish(&engine, outs)
}

/// Warmup + burn-in (discarded) + eval, returning eval outputs plus
/// the metric-counter baseline captured at the burn-in/eval boundary.
fn drive<B: blameit::Backend>(
    engine: &mut BlameItEngine,
    backend: &mut B,
    scn: &CompiledScenario,
) -> (Vec<TickOutput>, [u64; 6]) {
    engine.warmup(backend, scn.warmup, 2);
    if scn.burn_in.num_buckets() > 0 {
        let _ = engine.run(backend, scn.burn_in);
    }
    let before = degraded_counters(engine);
    (engine.run(backend, scn.eval), before)
}

/// The durable path: run to the kill point, fsck, reopen (recovering
/// by snapshot + journal replay), resume, and verify the composed
/// transcript equals an uninterrupted run's byte-for-byte.
fn run_crash(
    file: &str,
    scn: &CompiledScenario,
    threads: usize,
) -> Result<ScenarioRun, ScenarioError> {
    let crash = scn.spec.crash.as_ref().expect("caller checked");
    let fail = |msg: String| ScenarioError::at(file, crash.line, msg);
    let dir = scratch_dir(&scn.spec.name, threads);
    let mut cfg = scn.engine_config(threads);
    cfg.state_dir = Some(dir.clone());

    let store = StateStore::create(&dir).map_err(|e| fail(format!("state dir: {e}")))?;
    store.wipe().map_err(|e| fail(format!("state dir: {e}")))?;

    let mut backend = WorldBackend::with_parallelism(&scn.world, cfg.parallelism);
    let (mut durable, recovery) =
        DurableEngine::open(cfg.clone(), Arc::new(MetricsRegistry::new()), &mut backend)
            .map_err(|e| fail(format!("open: {e}")))?;
    debug_assert_eq!(recovery.mode, StartMode::Cold, "wiped dir starts cold");
    durable
        .warmup_and_checkpoint(&backend, scn.warmup, 2)
        .map_err(|e| fail(format!("warmup checkpoint: {e}")))?;
    if scn.burn_in.num_buckets() > 0 {
        durable
            .run(&mut backend, scn.burn_in)
            .map_err(|e| fail(format!("burn-in: {e}")))?;
    }

    // Eval ticks are driven bucket-by-bucket (durable `run` resumes a
    // single whole range; our burn-in already advanced `ticks_done`).
    let starts = eval_tick_starts(scn);
    durable.set_crash_plan(Some(CrashPlan::kill_at(
        scn.burn_in_ticks + crash.kill_tick,
        crash.kill_point,
        crash.seed,
    )));
    let mut outs: Vec<TickOutput> = Vec::new();
    let mut killed = false;
    for &start in &starts {
        match durable.tick(&mut backend, start) {
            Ok(out) => outs.push(out),
            Err(PersistError::Crashed(point)) => {
                debug_assert_eq!(point, crash.kill_point);
                killed = true;
                break;
            }
            Err(e) => return Err(fail(format!("durable tick: {e}"))),
        }
    }
    if !killed {
        return Err(fail(format!(
            "crash plan never fired (kill_tick {} of {} eval tick(s))",
            crash.kill_tick,
            starts.len()
        )));
    }
    drop(durable);

    // The torn state must still pass fsck before we even try recovery.
    let fsck_report = fsck(&dir);
    if !fsck_report.ok() {
        return Err(fail(format!(
            "fsck found errors in the post-crash state dir:\n{}",
            fsck_report.render()
        )));
    }

    // Recover: snapshot + journal replay hands back every completed
    // tick we haven't already got, then resumption runs the rest.
    let (mut durable, recovery) =
        DurableEngine::open(cfg, Arc::new(MetricsRegistry::new()), &mut backend)
            .map_err(|e| fail(format!("recovery open: {e}")))?;
    if recovery.mode == StartMode::Cold {
        return Err(fail("recovery unexpectedly started cold".to_string()));
    }
    let first_missing = scn.burn_in_ticks + outs.len() as u64;
    for (j, out) in recovery.replayed.into_iter().enumerate() {
        if recovery.snapshot_ticks_done + j as u64 >= first_missing {
            outs.push(out);
        }
    }
    for (k, &start) in starts.iter().enumerate() {
        if scn.burn_in_ticks + k as u64 >= durable.ticks_done() {
            outs.push(
                durable
                    .tick(&mut backend, start)
                    .map_err(|e| fail(format!("resumed tick: {e}")))?,
            );
        }
    }
    if outs.len() != starts.len() {
        return Err(fail(format!(
            "composed run has {} tick(s), expected {}",
            outs.len(),
            starts.len()
        )));
    }
    let run = finish_crash(durable.engine(), outs);
    let _ = std::fs::remove_dir_all(&dir);

    // The determinism contract, enforced per scenario: crash + recover
    // + resume must be invisible in the transcript.
    let reference = run_plain(scn, threads);
    if reference.transcript != run.transcript {
        return Err(fail(
            "composed crash-run transcript differs from an uninterrupted run".to_string(),
        ));
    }
    Ok(run)
}

/// The overload path: replay the feed through the daemon's decision
/// core ([`DaemonCore`]) with the compiled surge plan, bucket by bucket
/// like the reference `feed` client — admission, shedding, WAL, and
/// data-driven ticks all engaged, no sockets, no clocks.
fn run_overload(
    file: &str,
    scn: &CompiledScenario,
    threads: usize,
) -> Result<ScenarioRun, ScenarioError> {
    let o = scn.spec.overload.as_ref().expect("caller checked");
    let surge = scn.surge.clone().expect("compiled with [overload]");
    let fail = |msg: String| ScenarioError::at(file, o.line, msg);
    let dir = scratch_dir(&scn.spec.name, threads);
    let mut cfg = scn.engine_config(threads);
    cfg.state_dir = Some(dir.clone());
    let tick_buckets = cfg.tick_buckets;

    let store = StateStore::create(&dir).map_err(|e| fail(format!("state dir: {e}")))?;
    store.wipe().map_err(|e| fail(format!("state dir: {e}")))?;

    let mut dcfg = DaemonConfig::default();
    if let Some(v) = o.queue_cap_records {
        dcfg.admission.queue_cap_records = v;
    }
    if let Some(v) = o.shed_watermark_records {
        dcfg.admission.shed_watermark_records = v;
    }
    if let Some(v) = o.per_loc_shed_cap {
        dcfg.admission.per_loc_shed_cap = v;
    }
    if let Some(v) = o.sustained_ticks {
        dcfg.overload_sustained_ticks = v;
    }

    let inner = WorldBackend::with_parallelism(&scn.world, cfg.parallelism);
    let feed = WorldBackend::with_parallelism(&scn.world, cfg.parallelism);
    let (mut core, recovery) = DaemonCore::open(
        cfg,
        dcfg,
        Arc::new(MetricsRegistry::new()),
        inner,
        scn.warmup,
    )
    .map_err(|e| fail(format!("open: {e}")))?;
    debug_assert_eq!(recovery.mode, StartMode::Cold, "wiped dir starts cold");

    // Feed exactly the whole-tick coverage: burn-in plus the eval
    // ticks. Compile guarantees the burn-in is whole ticks too, so the
    // daemon's continuous tick grid lands on the eval boundary.
    let feed_start = scn.burn_in.start.bucket().0;
    let feed_end = scn.eval.start.bucket().0 + scn.eval_ticks as u32 * tick_buckets;
    let mut outs: Vec<TickOutput> = Vec::new();
    let mut abandoned = 0u64;
    let mut top_decile_shed = 0u64;
    let mut baseline: Option<Option<[u64; 6]>> = None;
    let capture_baseline = |core: &DaemonCore<WorldBackend>, b: &mut Option<Option<[u64; 6]>>| {
        if b.is_none() && core.ticks_done() >= scn.burn_in_ticks {
            // Exact only if no tick jumped the burn-in/eval boundary.
            *b = Some(
                (core.ticks_done() == scn.burn_in_ticks).then(|| degraded_counters(core.engine())),
            );
        }
    };
    capture_baseline(&core, &mut baseline);
    for b in feed_start..feed_end {
        let bucket = TimeBucket(b);
        let records = feed
            .rtt_records_in(bucket)
            .expect("the world backend exposes raw records");
        let records = surge.amplify(bucket, &records);
        if records.is_empty() {
            continue;
        }
        let batch = RecordBatch::from_records(bucket, &records);
        // Score the offer with the same history `offer` will use, to
        // mark its top impact decile before any of it can be shed.
        let top_decile: BTreeSet<u64> = {
            let mut sorted = batch.clone();
            sorted.sort_by_key();
            let scored = core.admission().score_batch(&sorted);
            let keep = scored.len() - scored.len().div_ceil(10);
            scored[keep..].iter().map(|g| g.subkey).collect()
        };
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let shed_before = core.shed_log().len();
            match core
                .offer(batch.clone())
                .map_err(|e| fail(format!("offer: {e}")))?
            {
                OfferReply::Ack { .. } => {
                    for entry in &core.shed_log()[shed_before..] {
                        if top_decile.contains(&entry.subkey) {
                            top_decile_shed += u64::from(entry.records);
                        }
                    }
                    break;
                }
                OfferReply::SlowDown { .. } => {
                    if attempts >= o.max_attempts {
                        abandoned += 1;
                        break;
                    }
                    // No clock to wait on: draining is the only thing
                    // that can change the next attempt's answer.
                }
            }
            outs.extend(core.pump().map_err(|e| fail(format!("pump: {e}")))?);
            capture_baseline(&core, &mut baseline);
        }
        outs.extend(core.pump().map_err(|e| fail(format!("pump: {e}")))?);
        capture_baseline(&core, &mut baseline);
    }
    outs.extend(core.term().map_err(|e| fail(format!("term: {e}")))?);
    capture_baseline(&core, &mut baseline);

    let want = scn.burn_in_ticks + scn.eval_ticks;
    if outs.len() as u64 != want {
        return Err(fail(format!(
            "overload run produced {} tick(s), expected {want} — the surge abandoned every \
             bucket of a trailing window, stalling the feed cursor",
            outs.len()
        )));
    }
    let stats = core.stats();
    let report = OverloadReport {
        offered: stats.offered,
        admitted: stats.admitted,
        shed_low_impact: stats.shed_low_impact,
        shed_backpressure: stats.shed_backpressure,
        backpressure_replies: stats.backpressure_replies,
        batches_abandoned: abandoned,
        queue_peak_records: stats.queue_peak,
        top_decile_shed_records: top_decile_shed,
    };
    let eval_outs = outs.split_off(scn.burn_in_ticks as usize);
    let after = degraded_counters(core.engine());
    let degraded_metrics = baseline.flatten().map(|before| {
        let mut delta = [0u64; 6];
        for i in 0..6 {
            delta[i] = after[i].saturating_sub(before[i]);
        }
        delta
    });
    let mut run = build_run(core.engine(), eval_outs, degraded_metrics);
    run.report.overload = Some(report);
    drop(core);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(run)
}

/// Eval-window tick start buckets, mirroring `BlameItEngine::run`'s
/// whole-ticks-only coverage.
fn eval_tick_starts(scn: &CompiledScenario) -> Vec<TimeBucket> {
    let tick_buckets = scn.eval.num_buckets() / scn.eval_ticks.max(1) as u32;
    let buckets: Vec<TimeBucket> = scn.eval.buckets().collect();
    buckets
        .chunks(tick_buckets.max(1) as usize)
        .take(scn.eval_ticks as usize)
        .map(|c| c[0])
        .collect()
}

/// A per-(scenario, thread-count, process) scratch directory for crash
/// runs, under the system temp dir.
fn scratch_dir(name: &str, threads: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "blameit-scn-{name}-t{threads}-p{}",
        std::process::id()
    ))
}

fn degraded_counters(engine: &BlameItEngine) -> [u64; 6] {
    let m = engine.metrics();
    UnlocalizedReason::ALL.map(|r| m.degraded_counter(r).get())
}

fn finish(engine: &BlameItEngine, (outs, before): (Vec<TickOutput>, [u64; 6])) -> ScenarioRun {
    let after = degraded_counters(engine);
    let mut delta = [0u64; 6];
    for i in 0..6 {
        delta[i] = after[i].saturating_sub(before[i]);
    }
    build_run(engine, outs, Some(delta))
}

fn finish_crash(engine: &BlameItEngine, outs: Vec<TickOutput>) -> ScenarioRun {
    build_run(engine, outs, None)
}

fn build_run(
    engine: &BlameItEngine,
    outs: Vec<TickOutput>,
    degraded_metrics: Option<[u64; 6]>,
) -> ScenarioRun {
    let transcript = render_tick_transcript(&outs);
    let mut blames = BlameCounts::new();
    let mut localizations = 0u64;
    let mut culprits: Vec<u32> = Vec::new();
    let mut degraded_verdicts = [0u64; 6];
    let mut alerts = 0u64;
    for out in &outs {
        blames.merge(&tally(&out.blames));
        alerts += out.alerts.len() as u64;
        localizations += out.localizations.len() as u64;
        for loc in &out.localizations {
            match loc.verdict {
                LocalizationVerdict::Culprit(asn) => culprits.push(asn.0),
                LocalizationVerdict::MiddleUnlocalized { reason } => {
                    let i = UnlocalizedReason::ALL
                        .iter()
                        .position(|r| *r == reason)
                        .expect("ALL covers every reason");
                    degraded_verdicts[i] += 1;
                }
            }
        }
    }
    culprits.sort_unstable();
    culprits.dedup();
    let flight_triggers = {
        let mut seen = Vec::new();
        for ev in engine.flight().dump_events() {
            let label = ev.trigger.label().to_string();
            if !seen.contains(&label) {
                seen.push(label);
            }
        }
        seen
    };
    ScenarioRun {
        transcript,
        flight_dump: engine.flight().dump_jsonl(),
        report: ScenarioReport {
            ticks: outs.len() as u64,
            blames,
            localizations,
            culprits,
            degraded_verdicts,
            degraded_metrics,
            alerts,
            flight_triggers,
            overload: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parse::parse_scenario;

    fn run_text(text: &str, threads: usize) -> ScenarioRun {
        let scn = compile("mem.scn", parse_scenario("mem.scn", text).unwrap()).unwrap();
        run_scenario("mem.scn", &scn, threads).unwrap()
    }

    const QUIET: &str = "\
name = quiet
[world]
scale = tiny
days = 2
[eval]
start_hour = 24
duration_mins = 90
";

    #[test]
    fn quiet_world_runs_and_reports() {
        let run = run_text(QUIET, 1);
        assert_eq!(run.report.ticks, 6);
        assert!(run.report.blames.total() > 0, "traffic produces verdicts");
        assert!(run.transcript.starts_with("tick 0 "), "{}", run.transcript);
    }

    #[test]
    fn thread_count_is_invisible() {
        let one = run_text(QUIET, 1);
        let four = run_text(QUIET, 4);
        assert_eq!(one.transcript, four.transcript);
        assert_eq!(one.report.blames.total(), four.report.blames.total());
    }

    #[test]
    fn chaos_timeouts_degrade_without_metrics_drift() {
        let text = format!("{QUIET}[chaos]\nprobe_timeout = 1.0\n");
        let run = run_text(&text, 1);
        // Whatever localizations were attempted all failed to probe.
        let metrics = run
            .report
            .degraded_metrics
            .expect("plain run keeps metrics");
        assert_eq!(
            run.report.degraded_verdicts.iter().sum::<u64>(),
            metrics.iter().sum::<u64>(),
            "verdict records and metric deltas agree over the eval window"
        );
        assert!(run.report.culprits.is_empty());
    }
}
