//! The typed scenario AST produced by [`crate::parse`].
//!
//! Every override is an `Option`: `None` means "leave the engine /
//! world default alone", so a scenario file only states what it
//! changes. Specs keep the source line of anything that can still fail
//! semantic validation (fault targets, crash ticks), so
//! [`crate::compile`] errors carry `file:line` positions too.

use blameit::{Blame, UnlocalizedReason};
use blameit_bench::Scale;
use blameit_simnet::CrashPoint;

/// A parsed, syntactically-valid scenario file.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (`[a-z0-9-]+`); the library file stem must match.
    pub name: String,
    /// One-line human description.
    pub summary: String,
    /// `[world]` — scale, seed, span, and model overrides.
    pub world: WorldSpec,
    /// `[workload]` — activity-model overrides.
    pub workload: WorkloadSpec,
    /// `[fault]` sections, in file order.
    pub faults: Vec<FaultSpec>,
    /// `[chaos]` — measurement-plane fault plan, if any.
    pub chaos: Option<ChaosSpec>,
    /// `[crash]` — process kill point, if any (runs the durable path).
    pub crash: Option<CrashSpec>,
    /// `[overload]` — ingest surge through the daemon's bounded-queue
    /// admission path, if any.
    pub overload: Option<OverloadSpec>,
    /// `[engine]` — `BlameItConfig` overrides.
    pub engine: EngineSpec,
    /// `[eval]` — the scored window.
    pub eval: EvalSpec,
    /// `[expect]` — verdict assertions, in file order.
    pub expect: Vec<Expectation>,
}

/// `[world]`: which world to build and how to bend its models.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    /// Topology scale (default: tiny).
    pub scale: Scale,
    /// Master world seed (default: 20190519).
    pub seed: u64,
    /// Simulated days (default: 2).
    pub days: u64,
    /// Engine warmup days before the burn-in/eval window (default: 1).
    pub warmup_days: u64,
    /// Generate organic faults + churn (default: false = quiet world).
    pub organic: bool,
    /// BGP churn events per route per day.
    pub churn_per_day: Option<f64>,
    /// Evening-congestion scale, ms (`LatencyModel`).
    pub evening_congestion_ms: Option<f64>,
    /// Multiplicative per-sample noise σ (`LatencyModel`).
    pub noise_sigma: Option<f64>,
    /// Heavy-outlier probability (`LatencyModel`).
    pub spike_prob: Option<f64>,
    /// Day-long path-drift probability (`LatencyModel`).
    pub path_drift_prob: Option<f64>,
    /// Broadband access ISPs per metro (`TopologyConfig`).
    pub broadband_per_metro: Option<usize>,
    /// Cellular carriers per metro (`TopologyConfig`).
    pub mobile_per_metro: Option<usize>,
    /// Global tier-1 backbones (`TopologyConfig`).
    pub tier1_count: Option<usize>,
    /// Regional transit providers per region (`TopologyConfig`).
    pub transits_per_region: Option<usize>,
    /// Probability a /24 also talks to its second-nearest location.
    pub secondary_loc_prob: Option<f64>,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            scale: Scale::Tiny,
            seed: 20190519,
            days: 2,
            warmup_days: 1,
            organic: false,
            churn_per_day: None,
            evening_congestion_ms: None,
            noise_sigma: None,
            spike_prob: None,
            path_drift_prob: None,
            broadband_per_metro: None,
            mobile_per_metro: None,
            tier1_count: None,
            transits_per_region: None,
            secondary_loc_prob: None,
        }
    }
}

/// `[workload]`: activity-model overrides (the flash-crowd knobs).
#[derive(Clone, Debug, Default)]
pub struct WorkloadSpec {
    /// Expected connections per active client per 5-min bucket at peak.
    pub conns_per_client_bucket: Option<f64>,
    /// Fraction of primary volume mirrored to the secondary location.
    pub secondary_volume_frac: Option<f64>,
}

/// One `[fault]` section: a scheduled ground-truth network fault.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Raw target string: `cloud:<loc>`, `middle:<asn>`,
    /// `middle-reverse:<asn>`, or `client:<asn>`; resolved against the
    /// built topology in [`crate::compile`].
    pub target: String,
    /// Source line of the `target` key (for compile errors).
    pub target_line: u32,
    /// Fault onset, hours from sim start (decimals allowed).
    pub start_hour: f64,
    /// Fault duration, minutes.
    pub duration_mins: u64,
    /// Added round-trip milliseconds while active.
    pub added_ms: f64,
}

/// `[chaos]`: a measurement-plane [`blameit_simnet::FaultPlan`], built
/// from an optional named base plan plus individual rate overrides.
#[derive(Clone, Debug, Default)]
pub struct ChaosSpec {
    /// Base plan name: `none`, `mild`, `heavy`, `probe-storm`
    /// (default: none).
    pub plan: Option<String>,
    /// Chaos seed (default: 0xC4A05, the CLI's).
    pub seed: Option<u64>,
    /// Probability a traceroute times out entirely.
    pub probe_timeout: Option<f64>,
    /// Probability a traceroute comes back truncated.
    pub probe_truncate: Option<f64>,
    /// Probability a traceroute result is delayed.
    pub probe_slow: Option<f64>,
    /// Delay applied to slow probes, seconds.
    pub slow_by_secs: Option<u64>,
    /// Probability a whole quartet bucket is dropped.
    pub drop_quartet_batch: Option<f64>,
    /// Probability a route-table lookup misses.
    pub drop_route_info: Option<f64>,
    /// Probability a churn event is delivered twice.
    pub churn_duplicate: Option<f64>,
    /// Probability a churn event is delivered late.
    pub churn_delay: Option<f64>,
    /// Lateness applied to delayed churn events, seconds.
    pub churn_delay_secs: Option<u64>,
}

/// `[crash]`: kill the process at a persistence kill point, then
/// recover and resume; the composed transcript must equal an
/// uninterrupted run's.
#[derive(Clone, Debug)]
pub struct CrashSpec {
    /// 0-based tick index *within the eval window* the kill fires on.
    pub kill_tick: u64,
    /// Which kill point fires (see [`CrashPoint`] labels).
    pub kill_point: CrashPoint,
    /// Crash-plan seed.
    pub seed: u64,
    /// Source line of the `kill_tick` key (for compile errors).
    pub line: u32,
}

/// `[overload]`: replay the feed through `blameitd`'s decision core
/// ([`blameit_daemon::DaemonCore`]) with a seeded ingest surge, so the
/// bounded queue, backpressure, and impact-ordered shedding are
/// exercised and golden-pinned like any other scenario.
#[derive(Clone, Debug)]
pub struct OverloadSpec {
    /// Ingest multiplier inside the surge window (≥ 2).
    pub surge_mult: u32,
    /// Surge onset, hours from sim start (decimals allowed).
    pub surge_start_hour: f64,
    /// Surge length, minutes.
    pub surge_duration_mins: u64,
    /// Surge jitter seed (default 0xC4A0).
    pub surge_seed: u64,
    /// Hard queue bound, records (default: the daemon's).
    pub queue_cap_records: Option<usize>,
    /// Shedding watermark, records (default: the daemon's).
    pub shed_watermark_records: Option<usize>,
    /// Per-location fairness cap, records (default: the daemon's).
    pub per_loc_shed_cap: Option<usize>,
    /// Consecutive overloaded ticks before `overload-sustained` fires
    /// (default: the daemon's).
    pub sustained_ticks: Option<u32>,
    /// Offer attempts per bucket before the feeder abandons it
    /// (default 3).
    pub max_attempts: u32,
    /// Source line of the `[overload]` header (for compile errors).
    pub line: u32,
}

/// `[engine]`: `BlameItConfig` overrides.
#[derive(Clone, Debug, Default)]
pub struct EngineSpec {
    /// On-demand traceroutes per cloud location per tick.
    pub probe_budget_per_loc: Option<usize>,
    /// On-demand attempts per issue (first try + retries).
    pub probe_max_attempts: Option<u32>,
    /// Per-probe deadline, seconds.
    pub probe_timeout_secs: Option<u64>,
    /// Backoff base between on-demand attempts, seconds.
    pub probe_backoff_base_secs: Option<u64>,
    /// Per-tick probing time budget, seconds.
    pub probe_deadline_budget_secs: Option<u64>,
    /// Baseline quarantine age, seconds.
    pub baseline_max_age_secs: Option<u64>,
    /// Background probe period per (location, path), seconds.
    pub background_period_secs: Option<u64>,
    /// Issue background probes on IBGP churn events.
    pub churn_triggered: Option<bool>,
    /// Buckets per analysis tick.
    pub tick_buckets: Option<u32>,
    /// Maximum operator alerts per tick.
    pub max_alerts: Option<usize>,
    /// Ticks between snapshots (durable/crash runs).
    pub snapshot_every_ticks: Option<u32>,
    /// Degraded-verdict flight trigger threshold (0 disables).
    pub flight_degraded_spike: Option<u64>,
    /// Lost-probe-attempt flight trigger threshold (0 disables).
    pub flight_chaos_burst: Option<u64>,
}

/// `[eval]`: the scored window.
#[derive(Clone, Debug)]
pub struct EvalSpec {
    /// Window start, hours from sim start (decimals allowed).
    pub start_hour: f64,
    /// Window length, minutes.
    pub duration_mins: u64,
}

/// One `[expect]` assertion, with its source line for failure
/// messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Expectation {
    /// Total passive blame verdicts over the window ≥ n.
    BlamesMin(u64),
    /// Total passive blame verdicts over the window ≤ n.
    BlamesMax(u64),
    /// Verdicts in one blame category ≥ n.
    BlameMin(Blame, u64),
    /// Verdicts in one blame category ≤ n.
    BlameMax(Blame, u64),
    /// Active-phase localizations attempted ≥ n.
    LocalizationsMin(u64),
    /// Active-phase localizations attempted ≤ n.
    LocalizationsMax(u64),
    /// This AS must appear among the named culprit ASes.
    CulpritAs(u32),
    /// Degraded verdicts with this reason ≥ n, in both the
    /// localization records and the engine's metrics, and the reason
    /// label must appear in the transcript (provenance surface).
    DegradedMin(UnlocalizedReason, u64),
    /// Degraded verdicts with this reason over the window ≤ n.
    DegradedMax(UnlocalizedReason, u64),
    /// Total degraded verdicts over the window ≤ n.
    DegradedTotalMax(u64),
    /// Operator alerts over the window ≥ n.
    AlertsMin(u64),
    /// Operator alerts over the window ≤ n.
    AlertsMax(u64),
    /// A flight-recorder trigger with this label must have fired.
    FlightTrigger(String),
    /// Records shed by the impact-ordered controller ≥ n
    /// (`[overload]` runs only).
    ShedMin(u64),
    /// Records shed by the impact-ordered controller ≤ n.
    ShedMax(u64),
    /// `SLOW_DOWN` backpressure replies ≥ n.
    BackpressureMin(u64),
    /// Peak queue depth after any admit ≤ n (the bounded-memory
    /// claim; compile rejects values above the queue cap).
    QueuePeakMax(u64),
    /// Of the records shed, at most n ranked in the top impact decile
    /// of their own offer (0 = the top decile was never touched).
    TopDecileShedMax(u64),
}
