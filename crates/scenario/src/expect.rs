//! Evaluates a scenario's `[expect]` block against a [`ScenarioRun`].
//!
//! Each failed expectation becomes one human-readable line stating the
//! assertion, the observed value, and where the evidence was looked
//! for. Degraded-reason minimums are checked on three surfaces at
//! once — the localization records, the engine's metric counters, and
//! the transcript's `unlocalized(<reason>)` provenance text — so a
//! regression on any surface fails the scenario.

use crate::run::ScenarioRun;
use crate::spec::{Expectation, ScenarioSpec};
use blameit::UnlocalizedReason;

/// Checks every `[expect]` assertion; returns one message per failure
/// (empty = pass).
pub fn evaluate(spec: &ScenarioSpec, run: &ScenarioRun) -> Vec<String> {
    let r = &run.report;
    let mut failures = Vec::new();
    let mut fail = |msg: String| failures.push(msg);
    for e in &spec.expect {
        match e {
            Expectation::BlamesMin(n) => {
                let got = r.blames.total();
                if got < *n {
                    fail(format!("expected ≥ {n} blame verdicts, got {got}"));
                }
            }
            Expectation::BlamesMax(n) => {
                let got = r.blames.total();
                if got > *n {
                    fail(format!("expected ≤ {n} blame verdicts, got {got}"));
                }
            }
            Expectation::BlameMin(blame, n) => {
                let got = r.blames.count(*blame);
                if got < *n {
                    fail(format!("expected ≥ {n} `{blame}` verdicts, got {got}"));
                }
            }
            Expectation::BlameMax(blame, n) => {
                let got = r.blames.count(*blame);
                if got > *n {
                    fail(format!("expected ≤ {n} `{blame}` verdicts, got {got}"));
                }
            }
            Expectation::LocalizationsMin(n) => {
                if r.localizations < *n {
                    fail(format!(
                        "expected ≥ {n} localization attempts, got {}",
                        r.localizations
                    ));
                }
            }
            Expectation::LocalizationsMax(n) => {
                if r.localizations > *n {
                    fail(format!(
                        "expected ≤ {n} localization attempts, got {}",
                        r.localizations
                    ));
                }
            }
            Expectation::CulpritAs(asn) => {
                if !r.culprits.contains(asn) {
                    fail(format!(
                        "expected AS{asn} among named culprits, got [{}]",
                        r.culprits
                            .iter()
                            .map(|a| format!("AS{a}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            Expectation::DegradedMin(reason, n) => {
                degraded_min(*reason, *n, run, &mut fail);
            }
            Expectation::DegradedMax(reason, n) => {
                let got = degraded_count(r.degraded_verdicts, *reason);
                if got > *n {
                    fail(format!(
                        "expected ≤ {n} degraded `{}` verdicts, got {got}",
                        reason.label()
                    ));
                }
            }
            Expectation::DegradedTotalMax(n) => {
                let got: u64 = r.degraded_verdicts.iter().sum();
                if got > *n {
                    fail(format!("expected ≤ {n} degraded verdicts total, got {got}"));
                }
            }
            Expectation::AlertsMin(n) => {
                if r.alerts < *n {
                    fail(format!("expected ≥ {n} alerts, got {}", r.alerts));
                }
            }
            Expectation::AlertsMax(n) => {
                if r.alerts > *n {
                    fail(format!("expected ≤ {n} alerts, got {}", r.alerts));
                }
            }
            Expectation::FlightTrigger(label) => {
                if !r.flight_triggers.iter().any(|t| t == label) {
                    fail(format!(
                        "expected flight trigger `{label}` to fire, fired: [{}]",
                        r.flight_triggers.join(", ")
                    ));
                }
            }
            Expectation::ShedMin(n)
            | Expectation::ShedMax(n)
            | Expectation::BackpressureMin(n)
            | Expectation::QueuePeakMax(n)
            | Expectation::TopDecileShedMax(n) => {
                // Compile guarantees these only appear with [overload].
                let Some(ovl) = &r.overload else {
                    fail(format!("{e:?} evaluated on a run with no overload report"));
                    continue;
                };
                match e {
                    Expectation::ShedMin(_) => {
                        if ovl.shed_low_impact < *n {
                            fail(format!(
                                "expected ≥ {n} impact-shed records, got {}",
                                ovl.shed_low_impact
                            ));
                        }
                    }
                    Expectation::ShedMax(_) => {
                        if ovl.shed_low_impact > *n {
                            fail(format!(
                                "expected ≤ {n} impact-shed records, got {}",
                                ovl.shed_low_impact
                            ));
                        }
                    }
                    Expectation::BackpressureMin(_) => {
                        if ovl.backpressure_replies < *n {
                            fail(format!(
                                "expected ≥ {n} SLOW_DOWN replies, got {}",
                                ovl.backpressure_replies
                            ));
                        }
                    }
                    Expectation::QueuePeakMax(_) => {
                        if ovl.queue_peak_records > *n {
                            fail(format!(
                                "expected queue peak ≤ {n} records, got {} (bounded-memory \
                                 claim violated)",
                                ovl.queue_peak_records
                            ));
                        }
                    }
                    Expectation::TopDecileShedMax(_) => {
                        if ovl.top_decile_shed_records > *n {
                            fail(format!(
                                "expected ≤ {n} shed records from the top impact decile, got \
                                 {} (shedding touched the groups it must protect)",
                                ovl.top_decile_shed_records
                            ));
                        }
                    }
                    _ => unreachable!("outer match narrowed to overload expectations"),
                }
            }
        }
    }
    failures
}

fn degraded_count(counts: [u64; 6], reason: UnlocalizedReason) -> u64 {
    let i = UnlocalizedReason::ALL
        .iter()
        .position(|r| *r == reason)
        .expect("ALL covers every reason");
    counts[i]
}

/// `degraded_<reason>_min`: the reason must show up in the verdict
/// records, in the engine's metric counters (when the run kept them),
/// and in the transcript's provenance text.
fn degraded_min(
    reason: UnlocalizedReason,
    n: u64,
    run: &ScenarioRun,
    fail: &mut impl FnMut(String),
) {
    let label = reason.label();
    let got = degraded_count(run.report.degraded_verdicts, reason);
    if got < n {
        fail(format!(
            "expected ≥ {n} degraded `{label}` verdicts, got {got}"
        ));
        return;
    }
    if let Some(metrics) = run.report.degraded_metrics {
        let counted = degraded_count(metrics, reason);
        if counted < n {
            fail(format!(
                "degraded `{label}`: verdict records show {got} but the \
                 metrics counter only advanced by {counted} (metrics surface regressed)"
            ));
        }
    }
    let marker = format!("unlocalized({label})");
    if !run.transcript.contains(&marker) {
        fail(format!(
            "degraded `{label}`: `{marker}` never appears in the transcript \
             (provenance surface regressed)"
        ));
    }
}

/// Renders a one-scenario result block: PASS/FAIL, the report
/// aggregates, and any failure lines, indented ready for the CLI.
pub fn render_report(spec: &ScenarioSpec, run: &ScenarioRun, failures: &[String]) -> String {
    use std::fmt::Write;
    let r = &run.report;
    let mut out = String::new();
    let verdict = if failures.is_empty() { "PASS" } else { "FAIL" };
    writeln!(
        out,
        "{verdict} {} ({} expectation(s))",
        spec.name,
        spec.expect.len()
    )
    .unwrap();
    writeln!(out, "  {}", spec.summary).unwrap();
    writeln!(
        out,
        "  ticks={} blames={} localizations={} culprits=[{}] degraded={} alerts={}",
        r.ticks,
        r.blames.total(),
        r.localizations,
        r.culprits
            .iter()
            .map(|a| format!("AS{a}"))
            .collect::<Vec<_>>()
            .join(", "),
        r.degraded_verdicts.iter().sum::<u64>(),
        r.alerts
    )
    .unwrap();
    let by_blame: Vec<String> = blameit::Blame::ALL
        .iter()
        .filter_map(|b| {
            let c = r.blames.count(*b);
            (c > 0).then(|| format!("{b}={c}"))
        })
        .collect();
    if !by_blame.is_empty() {
        writeln!(out, "  blame: {}", by_blame.join(" ")).unwrap();
    }
    let degraded: Vec<String> = UnlocalizedReason::ALL
        .iter()
        .filter_map(|reason| {
            let c = degraded_count(r.degraded_verdicts, *reason);
            (c > 0).then(|| format!("{}={c}", reason.label()))
        })
        .collect();
    if !degraded.is_empty() {
        writeln!(out, "  degraded: {}", degraded.join(" ")).unwrap();
    }
    if !r.flight_triggers.is_empty() {
        writeln!(out, "  flight: {}", r.flight_triggers.join(", ")).unwrap();
    }
    if let Some(o) = &r.overload {
        writeln!(
            out,
            "  overload: offered={} admitted={} shed={} refused={} slow_downs={} \
             abandoned={} queue_peak={} top_decile_shed={}",
            o.offered,
            o.admitted,
            o.shed_low_impact,
            o.shed_backpressure,
            o.backpressure_replies,
            o.batches_abandoned,
            o.queue_peak_records,
            o.top_decile_shed_records
        )
        .unwrap();
    }
    for f in failures {
        writeln!(out, "  FAIL: {f}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{ScenarioReport, ScenarioRun};
    use crate::spec::*;
    use blameit::{Blame, BlameCounts};

    fn spec_with(expect: Vec<Expectation>) -> ScenarioSpec {
        ScenarioSpec {
            name: "t".into(),
            summary: "test".into(),
            world: WorldSpec::default(),
            workload: WorkloadSpec::default(),
            faults: Vec::new(),
            chaos: None,
            crash: None,
            overload: None,
            engine: EngineSpec::default(),
            eval: EvalSpec {
                start_hour: 24.0,
                duration_mins: 45,
            },
            expect,
        }
    }

    fn run_with(transcript: &str) -> ScenarioRun {
        let mut blames = BlameCounts::new();
        blames.add(Blame::Cloud);
        blames.add(Blame::Middle);
        ScenarioRun {
            transcript: transcript.into(),
            flight_dump: String::new(),
            report: ScenarioReport {
                ticks: 3,
                blames,
                localizations: 1,
                culprits: vec![104],
                degraded_verdicts: [1, 0, 0, 0, 0, 0],
                degraded_metrics: Some([1, 0, 0, 0, 0, 0]),
                alerts: 1,
                flight_triggers: vec!["degraded-spike".into()],
                overload: None,
            },
        }
    }

    #[test]
    fn passing_expectations_produce_no_failures() {
        let spec = spec_with(vec![
            Expectation::BlamesMin(2),
            Expectation::BlameMin(Blame::Middle, 1),
            Expectation::CulpritAs(104),
            Expectation::DegradedMin(UnlocalizedReason::ProbeTimeout, 1),
            Expectation::AlertsMax(5),
            Expectation::FlightTrigger("degraded-spike".into()),
        ]);
        let run = run_with("tick 0\n  localization ... unlocalized(probe_timeout)\n");
        assert_eq!(evaluate(&spec, &run), Vec::<String>::new());
        assert!(render_report(&spec, &run, &[]).starts_with("PASS t"));
    }

    #[test]
    fn each_surface_of_degraded_min_is_checked() {
        let spec = spec_with(vec![Expectation::DegradedMin(
            UnlocalizedReason::ProbeTimeout,
            1,
        )]);
        // Verdict records say 1 but the transcript lacks the marker.
        let run = run_with("tick 0\n");
        let fails = evaluate(&spec, &run);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("provenance surface"), "{fails:?}");
        // Metrics counter lagging is its own failure.
        let mut lagging = run_with("unlocalized(probe_timeout)");
        lagging.report.degraded_metrics = Some([0; 6]);
        let fails = evaluate(&spec, &lagging);
        assert!(fails[0].contains("metrics counter"), "{fails:?}");
        // Crash runs (no metrics) only check verdicts + transcript.
        let mut crashy = run_with("unlocalized(probe_timeout)");
        crashy.report.degraded_metrics = None;
        assert!(evaluate(&spec, &crashy).is_empty());
    }

    #[test]
    fn overload_expectations_read_the_overload_report() {
        use crate::run::OverloadReport;
        let spec = spec_with(vec![
            Expectation::ShedMin(100),
            Expectation::BackpressureMin(2),
            Expectation::QueuePeakMax(9_000),
            Expectation::TopDecileShedMax(0),
        ]);
        let mut run = run_with("x");
        run.report.overload = Some(OverloadReport {
            offered: 50_000,
            admitted: 40_000,
            shed_low_impact: 2_000,
            shed_backpressure: 8_000,
            backpressure_replies: 4,
            batches_abandoned: 1,
            queue_peak_records: 8_500,
            top_decile_shed_records: 0,
        });
        assert_eq!(evaluate(&spec, &run), Vec::<String>::new());
        let report = render_report(&spec, &run, &[]);
        assert!(report.contains("overload: offered=50000"), "{report}");

        run.report.overload.as_mut().unwrap().queue_peak_records = 9_500;
        run.report
            .overload
            .as_mut()
            .unwrap()
            .top_decile_shed_records = 3;
        let fails = evaluate(&spec, &run);
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails[0].contains("bounded-memory"), "{fails:?}");
        assert!(fails[1].contains("top impact decile"), "{fails:?}");
    }

    #[test]
    fn failures_name_the_observed_value() {
        let spec = spec_with(vec![
            Expectation::BlamesMin(100),
            Expectation::CulpritAs(9),
            Expectation::FlightTrigger("chaos-burst".into()),
            Expectation::DegradedTotalMax(0),
        ]);
        let run = run_with("x");
        let fails = evaluate(&spec, &run);
        assert_eq!(fails.len(), 4);
        assert!(fails[0].contains("got 2"), "{fails:?}");
        assert!(fails[1].contains("AS104"), "{fails:?}");
        assert!(fails[2].contains("degraded-spike"), "{fails:?}");
        let report = render_report(&spec, &run, &fails);
        assert!(report.starts_with("FAIL t"), "{report}");
        assert!(report.contains("degraded: probe_timeout=1"), "{report}");
    }
}
