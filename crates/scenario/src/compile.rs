//! Compiles a parsed [`ScenarioSpec`] into runnable engine inputs.
//!
//! Compilation builds the world (topology + model overrides + the
//! scenario's hand-placed faults), derives the warmup / burn-in / eval
//! time ranges, and validates everything the parser could not check
//! syntactically: fault targets against the actual topology, the eval
//! window against the sim span, crash ticks against the eval length.
//! Errors keep `file:line` positions where the spec recorded them.

use crate::error::ScenarioError;
use crate::spec::{ScenarioSpec, WorldSpec};
use blameit::{BadnessThresholds, BlameItConfig};
use blameit_bench::world_config;
use blameit_simnet::{
    Fault, FaultId, FaultPlan, FaultTarget, SimTime, SurgePlan, TimeBucket, TimeRange, World,
    BUCKET_SECS,
};
use blameit_topology::{Asn, CloudLocId};

/// A scenario ready to run: world built, windows derived, everything
/// validated.
#[derive(Debug)]
pub struct CompiledScenario {
    /// The source spec (expectations are evaluated from it).
    pub spec: ScenarioSpec,
    /// The world, with the scenario's faults merged in.
    pub world: World,
    /// Measurement-plane chaos plan, `None` when the scenario injects
    /// no chaos.
    pub plan: Option<FaultPlan>,
    /// Ingest surge plan, `Some` exactly when the spec has an
    /// `[overload]` section.
    pub surge: Option<SurgePlan>,
    /// History-learning warmup (no probes).
    pub warmup: TimeRange,
    /// Post-warmup burn-in, warmup end → eval start: the engine runs
    /// here (discarded) so background probes build middle baselines.
    pub burn_in: TimeRange,
    /// The scored window.
    pub eval: TimeRange,
    /// Whole engine ticks inside the eval window.
    pub eval_ticks: u64,
    /// Whole engine ticks inside the burn-in window.
    pub burn_in_ticks: u64,
}

/// Compiles `spec` (from `file`, for error positions) into a
/// [`CompiledScenario`].
pub fn compile(file: &str, spec: ScenarioSpec) -> Result<CompiledScenario, ScenarioError> {
    let w = &spec.world;
    if w.days == 0 || w.warmup_days == 0 || w.warmup_days >= w.days {
        return Err(ScenarioError::whole(
            file,
            format!(
                "[world] needs 1 ≤ warmup_days < days (got warmup_days = {}, days = {})",
                w.warmup_days, w.days
            ),
        ));
    }
    let sim_end = SimTime::from_days(w.days);
    let warmup_end = SimTime::from_days(w.warmup_days);

    let eval_start = hour_to_time(spec.eval.start_hour);
    let eval_end = eval_start + spec.eval.duration_mins * 60;
    if eval_start < warmup_end || eval_end > sim_end {
        return Err(ScenarioError::whole(
            file,
            format!(
                "[eval] window [{eval_start}, {eval_end}) must lie inside \
                 [warmup end {warmup_end}, sim end {sim_end})"
            ),
        ));
    }
    let eval = TimeRange::new(eval_start, eval_end);

    let tick_buckets = spec.engine.tick_buckets.unwrap_or(3).max(1);
    let eval_ticks = (eval.num_buckets() / tick_buckets) as u64;
    if eval_ticks == 0 {
        return Err(ScenarioError::whole(
            file,
            format!(
                "[eval] window holds {} bucket(s) — too short for even one {}-bucket tick",
                eval.num_buckets(),
                tick_buckets
            ),
        ));
    }

    let surge = match &spec.overload {
        None => None,
        Some(o) => {
            if spec.crash.is_some() {
                return Err(ScenarioError::at(
                    file,
                    o.line,
                    "[overload] does not combine with [crash] (the overload runner already \
                     drives the durable path; crash coverage lives in the daemon test suite)",
                ));
            }
            if spec.chaos.is_some() {
                return Err(ScenarioError::at(
                    file,
                    o.line,
                    "[overload] does not combine with [chaos] (the daemon feed replaces the \
                     measurement-plane backend)",
                ));
            }
            let start = hour_to_time(o.surge_start_hour);
            let end = start + o.surge_duration_mins * 60;
            if start < warmup_end || end > eval_end {
                return Err(ScenarioError::at(
                    file,
                    o.line,
                    format!(
                        "surge window [{start}, {end}) must lie inside the fed range \
                         [warmup end {warmup_end}, eval end {eval_end})"
                    ),
                ));
            }
            if end.bucket().0 <= start.bucket().0 {
                return Err(ScenarioError::at(
                    file,
                    o.line,
                    "surge_duration_mins is shorter than one 5-minute bucket",
                ));
            }
            let burn_in_buckets = TimeRange::new(warmup_end, eval_start).num_buckets();
            if !burn_in_buckets.is_multiple_of(tick_buckets) {
                return Err(ScenarioError::at(
                    file,
                    o.line,
                    format!(
                        "[overload] needs the burn-in ({burn_in_buckets} bucket(s)) to be whole \
                         {tick_buckets}-bucket ticks, so the daemon's continuous tick grid lands \
                         on the eval boundary"
                    ),
                ));
            }
            if let (Some(w), Some(c)) = (o.shed_watermark_records, o.queue_cap_records) {
                if w > c {
                    return Err(ScenarioError::at(
                        file,
                        o.line,
                        format!(
                            "shed_watermark_records ({w}) must not exceed queue_cap_records ({c})"
                        ),
                    ));
                }
            }
            Some(SurgePlan::single(
                start.bucket(),
                TimeBucket(end.bucket().0 - 1),
                o.surge_mult,
                o.surge_seed,
            ))
        }
    };
    for e in &spec.expect {
        let needs_overload = matches!(
            e,
            crate::spec::Expectation::ShedMin(_)
                | crate::spec::Expectation::ShedMax(_)
                | crate::spec::Expectation::BackpressureMin(_)
                | crate::spec::Expectation::QueuePeakMax(_)
                | crate::spec::Expectation::TopDecileShedMax(_)
        );
        if needs_overload && spec.overload.is_none() {
            return Err(ScenarioError::whole(
                file,
                format!("[expect] {e:?} needs an [overload] section"),
            ));
        }
    }

    if let Some(crash) = &spec.crash {
        if spec.chaos.is_some() {
            return Err(ScenarioError::at(
                file,
                crash.line,
                "[crash] does not combine with [chaos] (mirrors the CLI: durable runs \
                 don't take a fault plan)",
            ));
        }
        if crash.kill_tick >= eval_ticks {
            return Err(ScenarioError::at(
                file,
                crash.line,
                format!(
                    "kill_tick {} is outside the eval window ({} tick(s))",
                    crash.kill_tick, eval_ticks
                ),
            ));
        }
    }

    // ── build the world ─────────────────────────────────────────────
    let mut cfg = world_config(w.scale, w.days, w.seed, !w.organic);
    apply_world_overrides(&mut cfg, w);
    if let Some(v) = spec.workload.conns_per_client_bucket {
        cfg.activity.conns_per_client_bucket = v;
    }
    if let Some(v) = spec.workload.secondary_volume_frac {
        cfg.activity.secondary_volume_frac = v;
    }
    let mut world = World::new(cfg);

    // ── resolve and merge faults ────────────────────────────────────
    let mut faults = Vec::with_capacity(spec.faults.len());
    for f in &spec.faults {
        let start = hour_to_time(f.start_hour);
        if start >= sim_end {
            return Err(ScenarioError::at(
                file,
                f.target_line,
                format!("fault starts at {start}, after the sim ends ({sim_end})"),
            ));
        }
        faults.push(Fault {
            id: FaultId(0),
            target: resolve_target(file, &world, &f.target, f.target_line)?,
            start,
            duration_secs: f.duration_mins * 60,
            added_ms: f.added_ms,
        });
    }
    if !faults.is_empty() {
        world.add_faults(faults);
    }

    // ── chaos plan ──────────────────────────────────────────────────
    let plan = match &spec.chaos {
        None => None,
        Some(c) => {
            let seed = c.seed.unwrap_or(0xC4A05);
            let mut plan = match c.plan.as_deref() {
                None => FaultPlan::none(seed),
                // Names were validated by the parser.
                Some(name) => {
                    FaultPlan::parse(name, seed).map_err(|e| ScenarioError::whole(file, e))?
                }
            };
            apply_chaos_overrides(&mut plan, c);
            (!plan.is_noop()).then_some(plan)
        }
    };

    let burn_in = TimeRange::new(warmup_end, eval_start);
    let burn_in_ticks = (burn_in.num_buckets() / tick_buckets) as u64;
    Ok(CompiledScenario {
        warmup: TimeRange::days(w.warmup_days),
        burn_in,
        eval,
        eval_ticks,
        burn_in_ticks,
        world,
        plan,
        surge,
        spec,
    })
}

impl CompiledScenario {
    /// The engine configuration: paper defaults for this world, the
    /// scenario's `[engine]` overrides, then the runner's thread count
    /// (`0` keeps the ambient default).
    pub fn engine_config(&self, threads: usize) -> BlameItConfig {
        let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&self.world));
        if threads > 0 {
            cfg.parallelism = threads;
        }
        let e = &self.spec.engine;
        if let Some(v) = e.probe_budget_per_loc {
            cfg.probe_budget_per_loc = v;
        }
        if let Some(v) = e.probe_max_attempts {
            cfg.probe_max_attempts = v;
        }
        if let Some(v) = e.probe_timeout_secs {
            cfg.probe_timeout_secs = v;
        }
        if let Some(v) = e.probe_backoff_base_secs {
            cfg.probe_backoff_base_secs = v;
        }
        if let Some(v) = e.probe_deadline_budget_secs {
            cfg.probe_deadline_budget_secs = v;
        }
        if let Some(v) = e.baseline_max_age_secs {
            cfg.baseline_max_age_secs = v;
        }
        if let Some(v) = e.background_period_secs {
            cfg.background_period_secs = v;
        }
        if let Some(v) = e.churn_triggered {
            cfg.churn_triggered = v;
        }
        if let Some(v) = e.tick_buckets {
            cfg.tick_buckets = v;
        }
        if let Some(v) = e.max_alerts {
            cfg.max_alerts = v;
        }
        if let Some(v) = e.snapshot_every_ticks {
            cfg.snapshot_every_ticks = v.max(1);
        }
        if let Some(v) = e.flight_degraded_spike {
            cfg.flight_degraded_spike = v;
        }
        if let Some(v) = e.flight_chaos_burst {
            cfg.flight_chaos_burst = v;
        }
        cfg
    }
}

/// Converts a fractional hour to a bucket-aligned instant (rounded down
/// to the 5-minute grid, so windows always start on bucket boundaries).
fn hour_to_time(hours: f64) -> SimTime {
    let secs = (hours * 3_600.0).round() as u64;
    SimTime(secs / BUCKET_SECS * BUCKET_SECS)
}

fn apply_world_overrides(cfg: &mut blameit_simnet::WorldConfig, w: &WorldSpec) {
    if let Some(v) = w.churn_per_day {
        cfg.churn_rate_per_day = v;
    }
    if let Some(v) = w.evening_congestion_ms {
        cfg.latency.evening_congestion_ms = v;
    }
    if let Some(v) = w.noise_sigma {
        cfg.latency.noise_sigma = v;
    }
    if let Some(v) = w.spike_prob {
        cfg.latency.spike_prob = v;
    }
    if let Some(v) = w.path_drift_prob {
        cfg.latency.path_drift_prob = v;
    }
    if let Some(v) = w.broadband_per_metro {
        cfg.topology.broadband_per_metro = v;
    }
    if let Some(v) = w.mobile_per_metro {
        cfg.topology.mobile_per_metro = v;
    }
    if let Some(v) = w.tier1_count {
        cfg.topology.tier1_count = v;
    }
    if let Some(v) = w.transits_per_region {
        cfg.topology.transits_per_region = v;
    }
    if let Some(v) = w.secondary_loc_prob {
        cfg.topology.secondary_loc_prob = v;
    }
}

fn apply_chaos_overrides(plan: &mut FaultPlan, c: &crate::spec::ChaosSpec) {
    if let Some(v) = c.probe_timeout {
        plan.probe_timeout = v;
    }
    if let Some(v) = c.probe_truncate {
        plan.probe_truncate = v;
    }
    if let Some(v) = c.probe_slow {
        plan.probe_slow = v;
    }
    if let Some(v) = c.slow_by_secs {
        plan.slow_by_secs = v;
    }
    if let Some(v) = c.drop_quartet_batch {
        plan.drop_quartet_batch = v;
    }
    if let Some(v) = c.drop_route_info {
        plan.drop_route_info = v;
    }
    if let Some(v) = c.churn_duplicate {
        plan.churn_duplicate = v;
    }
    if let Some(v) = c.churn_delay {
        plan.churn_delay = v;
    }
    if let Some(v) = c.churn_delay_secs {
        plan.churn_delay_secs = v;
    }
}

/// Parses and resolves `cloud:<loc>` / `middle:<asn>` /
/// `middle-reverse:<asn>` / `client:<asn>` against the built topology.
fn resolve_target(
    file: &str,
    world: &World,
    s: &str,
    line: u32,
) -> Result<FaultTarget, ScenarioError> {
    let bad = |msg: String| ScenarioError::at(file, line, msg);
    let Some((kind, id_s)) = s.split_once(':') else {
        return Err(bad(format!(
            "target {s:?} must be kind:id — cloud:<loc>, middle:<asn>, \
             middle-reverse:<asn>, or client:<asn>"
        )));
    };
    let id: u32 = id_s
        .parse()
        .map_err(|_| bad(format!("bad target id {id_s:?}")))?;
    let topo = world.topology();
    match kind {
        "cloud" => {
            if id as usize >= topo.cloud_locations.len() {
                return Err(bad(format!(
                    "no cloud location {id} (this world has {})",
                    topo.cloud_locations.len()
                )));
            }
            Ok(FaultTarget::CloudLocation(CloudLocId(id as u16)))
        }
        "middle" | "middle-reverse" => {
            let ok = topo
                .as_info(Asn(id))
                .is_some_and(|info| info.role.is_middle());
            if !ok {
                return Err(bad(format!(
                    "AS{id} is not a middle AS in this world; traversed middle ASes: {}",
                    traversed_middle_ases(world)
                )));
            }
            if kind == "middle" {
                Ok(FaultTarget::MiddleAs {
                    asn: Asn(id),
                    via_path: None,
                })
            } else {
                Ok(FaultTarget::MiddleAsReverse { asn: Asn(id) })
            }
        }
        "client" => {
            let ok = topo
                .as_info(Asn(id))
                .is_some_and(|info| info.role.is_access());
            if !ok {
                return Err(bad(format!("AS{id} is not an access ISP in this world")));
            }
            Ok(FaultTarget::ClientAs(Asn(id)))
        }
        other => Err(bad(format!(
            "unknown target kind {other:?}; expected cloud|middle|middle-reverse|client"
        ))),
    }
}

/// Middle ASes actually traversed by some client's primary route, as a
/// capped display list for target-resolution errors.
fn traversed_middle_ases(world: &World) -> String {
    let topo = world.topology();
    let mut ases: Vec<u32> = Vec::new();
    for c in &topo.clients {
        let route = &topo.routes_for(c.primary_loc, c).options[0];
        ases.extend(topo.paths.get(route.path_id).middle.iter().map(|a| a.0));
    }
    ases.sort_unstable();
    ases.dedup();
    let shown: Vec<String> = ases.iter().take(16).map(|a| format!("AS{a}")).collect();
    let suffix = if ases.len() > 16 { ", …" } else { "" };
    format!("{}{suffix}", shown.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_scenario;

    fn compiled(text: &str) -> Result<CompiledScenario, ScenarioError> {
        compile("mem.scn", parse_scenario("mem.scn", text)?)
    }

    const BASE: &str = "\
name = c
[world]
scale = tiny
days = 2
[eval]
start_hour = 24
duration_mins = 60
";

    #[test]
    fn windows_derived_and_aligned() {
        let c = compiled(BASE).unwrap();
        assert_eq!(c.warmup, TimeRange::days(1));
        assert_eq!(c.burn_in.secs(), 0);
        assert_eq!(c.eval.num_buckets(), 12);
        assert_eq!(c.eval_ticks, 4);
        assert!(c.plan.is_none());
        // Fractional hours land on the bucket grid (rounded down).
        assert_eq!(hour_to_time(24.1), SimTime(24 * 3_600 + 300));
        assert_eq!(hour_to_time(24.07), SimTime(24 * 3_600));
    }

    #[test]
    fn eval_outside_span_rejected() {
        let bad = BASE.replace("start_hour = 24", "start_hour = 47.9");
        let err = compiled(&bad).unwrap_err();
        assert!(err.to_string().contains("must lie inside"), "{err}");
        let early = BASE.replace("start_hour = 24", "start_hour = 3");
        assert!(compiled(&early).is_err());
    }

    #[test]
    fn fault_target_resolution_and_errors() {
        let with_fault = format!(
            "{BASE}[fault]\ntarget = middle:99999\nstart_hour = 24\nduration_mins = 30\nadded_ms = 80\n"
        );
        let err = compiled(&with_fault).unwrap_err();
        let msg = err.to_string();
        assert_eq!(err.line, 9, "{msg}");
        assert!(msg.contains("not a middle AS"), "{msg}");
        assert!(msg.contains("traversed middle ASes: AS"), "{msg}");
        // A real middle AS named in the message compiles.
        let asn: u32 = msg
            .split("ASes: AS")
            .nth(1)
            .unwrap()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap();
        let good = with_fault.replace("middle:99999", &format!("middle:{asn}"));
        let c = compiled(&good).unwrap();
        assert_eq!(c.world.faults().len(), 1);
        let rev = with_fault.replace("middle:99999", &format!("middle-reverse:{asn}"));
        assert!(matches!(
            compiled(&rev).unwrap().world.faults().faults()[0].target,
            FaultTarget::MiddleAsReverse { .. }
        ));
    }

    #[test]
    fn crash_tick_bounds_and_chaos_exclusion() {
        let crash = format!("{BASE}[crash]\nkill_tick = 4\nkill_point = post-journal\n");
        let err = compiled(&crash).unwrap_err();
        assert!(err.to_string().contains("outside the eval window"), "{err}");
        let ok = crash.replace("kill_tick = 4", "kill_tick = 1");
        assert!(compiled(&ok).is_ok());
        let both = format!("{ok}[chaos]\nprobe_timeout = 0.5\n");
        assert!(compiled(&both)
            .unwrap_err()
            .to_string()
            .contains("does not combine"));
    }

    #[test]
    fn overload_window_and_exclusions_validated() {
        let ovl = "[overload]\nsurge_mult = 8\nsurge_start_hour = 24\nsurge_duration_mins = 30\n";
        let c = compiled(&format!("{BASE}{ovl}")).unwrap();
        let surge = c.surge.expect("surge compiled");
        assert_eq!(surge.multiplier_at(blameit_simnet::TimeBucket(24 * 12)), 8);
        assert_eq!(
            surge.multiplier_at(blameit_simnet::TimeBucket(24 * 12 + 6)),
            1,
            "window is [start, start + 30min)"
        );

        let early = format!(
            "{BASE}[overload]\nsurge_mult = 8\nsurge_start_hour = 3\nsurge_duration_mins = 30\n"
        );
        let err = compiled(&early).unwrap_err();
        assert!(err.to_string().contains("must lie inside"), "{err}");

        let with_crash = format!("{BASE}[crash]\nkill_tick = 1\nkill_point = post-journal\n{ovl}");
        assert!(compiled(&with_crash)
            .unwrap_err()
            .to_string()
            .contains("does not combine with [crash]"));

        let inverted = format!(
            "{BASE}[overload]\nsurge_mult = 8\nsurge_start_hour = 24\nsurge_duration_mins = 30\n\
             queue_cap_records = 100\nshed_watermark_records = 200\n"
        );
        assert!(compiled(&inverted)
            .unwrap_err()
            .to_string()
            .contains("must not exceed"));

        let orphan = format!("{BASE}[expect]\nshed_min = 1\n");
        assert!(compiled(&orphan)
            .unwrap_err()
            .to_string()
            .contains("needs an [overload] section"));
    }

    #[test]
    fn chaos_plan_composed_from_base_and_overrides() {
        let text = format!("{BASE}[chaos]\nplan = probe-storm\nprobe_timeout = 0.9\nseed = 7\n");
        let plan = compiled(&text).unwrap().plan.unwrap();
        assert_eq!(plan.probe_timeout, 0.9, "override wins over the base plan");
        assert_eq!(plan.probe_truncate, 0.25, "base plan survives elsewhere");
        assert_eq!(plan.seed, 7);
        // An all-zero chaos section compiles to no plan at all.
        let noop = format!("{BASE}[chaos]\nplan = none\n");
        assert!(compiled(&noop).unwrap().plan.is_none());
    }

    #[test]
    fn engine_overrides_apply() {
        let text = format!(
            "{BASE}[engine]\nprobe_deadline_budget_secs = 0\ntick_buckets = 2\nmax_alerts = 3\n"
        );
        let c = compiled(&text).unwrap();
        let cfg = c.engine_config(4);
        assert_eq!(cfg.probe_deadline_budget_secs, 0);
        assert_eq!(cfg.tick_buckets, 2);
        assert_eq!(cfg.max_alerts, 3);
        assert_eq!(cfg.parallelism, 4);
        assert_eq!(
            c.eval_ticks, 6,
            "tick_buckets override reshapes the tick grid"
        );
    }

    #[test]
    fn world_and_workload_overrides_reach_the_config() {
        let text = format!(
            "{BASE}[workload]\nconns_per_client_bucket = 2.5\n\
             # churn override on an otherwise quiet world\n"
        );
        let c = compiled(&text).unwrap();
        assert_eq!(c.world.config().activity.conns_per_client_bucket, 2.5);
        assert_eq!(c.world.config().churn_rate_per_day, 0.0, "quiet default");
        let organic = text.replace("scale = tiny\n", "scale = tiny\nchurn_per_day = 1.5\n");
        assert_eq!(
            compiled(&organic)
                .unwrap()
                .world
                .config()
                .churn_rate_per_day,
            1.5
        );
    }
}
