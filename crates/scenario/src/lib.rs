//! # blameit-scenario — declarative incident scenarios
//!
//! One scenario file describes a complete end-to-end exercise of the
//! engine: the world (topology scale + model overrides), a workload
//! shape, injected network faults, measurement-plane chaos
//! ([`blameit_simnet::FaultPlan`]), process-crash kill points
//! ([`blameit_simnet::CrashPlan`]), the evaluation window, and an
//! `[expect]` block of verdict assertions. The format is line-oriented
//! key/value with `[section]` headers — no external parser dependency —
//! and every load error carries a `file:line` position.
//!
//! ```text
//! name = regional-cable-cut
//! summary = a long strong middle-AS fault, localized to the AS
//!
//! [world]
//! scale = tiny
//! seed = 20190519
//! days = 2
//!
//! [fault]
//! target = middle:104
//! start_hour = 26
//! duration_mins = 180
//! added_ms = 120
//!
//! [eval]
//! start_hour = 26
//! duration_mins = 90
//!
//! [expect]
//! blame_middle_min = 5
//! culprit_as = 104
//! ```
//!
//! The library half compiles a [`ScenarioSpec`] into the existing
//! engine/backend configuration and runs it through the pure
//! deterministic tick ([`run_scenario`]); the result is a canonical
//! transcript (golden-pinnable, byte-identical at any thread count)
//! plus a [`ScenarioReport`] the `[expect]` block is evaluated against
//! ([`evaluate`]). The `blameit scenario run|list|check` CLI and the
//! `tests/scenario_library.rs` regression suite both drive this crate;
//! the shipped corpus lives under `scenarios/` with goldens under
//! `tests/golden/scenarios/`. See `docs/SCENARIOS.md` for the full
//! format reference.

pub mod compile;
pub mod error;
pub mod expect;
pub mod parse;
pub mod run;
pub mod spec;

pub use compile::{compile, CompiledScenario};
pub use error::ScenarioError;
pub use expect::{evaluate, render_report};
pub use parse::{load_scenario, parse_scenario};
pub use run::{run_scenario, OverloadReport, ScenarioReport, ScenarioRun};
pub use spec::{
    ChaosSpec, CrashSpec, EngineSpec, EvalSpec, Expectation, FaultSpec, OverloadSpec, ScenarioSpec,
    WorkloadSpec, WorldSpec,
};
