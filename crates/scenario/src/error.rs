//! Positioned scenario errors.

/// A scenario load, compile, or run failure, positioned at the line
/// that caused it. Line 0 means the error concerns the file (or run)
/// as a whole rather than one line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// The scenario file (as given to the loader — typically a path).
    pub file: String,
    /// 1-based line the error points at; 0 for whole-file errors.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl ScenarioError {
    /// An error at a specific line.
    pub fn at(file: &str, line: u32, msg: impl Into<String>) -> Self {
        ScenarioError {
            file: file.to_string(),
            line,
            msg: msg.into(),
        }
    }

    /// A whole-file error (no meaningful line).
    pub fn whole(file: &str, msg: impl Into<String>) -> Self {
        ScenarioError::at(file, 0, msg)
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.msg)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ScenarioError::at("scenarios/x.scn", 7, "unknown key \"zap\"");
        assert_eq!(e.to_string(), "scenarios/x.scn:7: unknown key \"zap\"");
        let w = ScenarioError::whole("x.scn", "missing [eval] section");
        assert_eq!(w.to_string(), "x.scn: missing [eval] section");
    }
}
