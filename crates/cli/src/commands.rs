//! CLI command implementations.
//!
//! Each command takes parsed [`Args`] and a writer, so tests can run
//! commands in-process and inspect their output.

use blameit::{
    fsck, render_blame_explain, render_localization_explain, tally, Backend, BadnessThresholds,
    BlameItConfig, BlameItEngine, ChaosBackend, DurableEngine, MiddleLocalization, StartMode,
    StateStore, TickOutput, UnlocalizedReason, WorldBackend,
};
use blameit_bench::{organic_world, quiet_world, Args, Scale};
use blameit_simnet::{
    DatasetSummary, Fault, FaultId, FaultPlan, FaultTarget, Segment, SimTime, TimeRange, World,
};
use blameit_topology::{AsRole, Asn, CloudLocId, Prefix24, Region};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A user-facing CLI failure (bad arguments, unknown ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
blameit — WAN latency fault localization (BlameIt reproduction)

USAGE:
  blameit <COMMAND> [--key value ...]

COMMANDS:
  topo       Topology inventory (ASes, locations, prefixes, paths)
             (--dot 1 emits a Graphviz AS-level peering graph instead)
  routes     BGP route options for one client /24 (primary + alternates)
  simulate   Telemetry summary for a simulated period (Table-2 style)
             (--json 1 for machine-readable output)
  analyze    Run the BlameIt engine and print alerts + blame fractions
             (--tickets N renders the first N alerts as operator tickets;
             --state-dir DIR makes the run durable, --resume 1 recovers)
  fsck       Validate a state directory written by --state-dir: every
             snapshot CRC + structure, journal records, seed agreement.
             Exits non-zero (with a report) on corruption.
  explain    Render the provenance chain behind a verdict as a tree:
             blameit explain quartet:<loc>/<p24> | incident:<loc>
             (--limit N caps matches shown; with --target and the
             inject flags it explains that injected scenario, otherwise
             an analyze-style organic run)
  flight     Flight recorder: `blameit flight dump` runs the engine and
             prints the recorder ring as JSONL (--out FILE to write it;
             --fault-plan to watch chaos-burst triggers fire)
  scenario   Declarative scenario library (see docs/SCENARIOS.md):
               blameit scenario list             catalog the library
               blameit scenario run <name|path>  run one, print report +
                                                 transcript
               blameit scenario check <name>|--all 1
                                                 run + golden transcript
                                                 compare + [expect] block
             (--dir DIR scenario library, default `scenarios`;
              --golden-dir DIR goldens, default `tests/golden/scenarios`;
              --bless 1 or BLESS=1 re-pins goldens; failing transcripts
              land in --fail-dir, default `target/scenario-failures`)
  inject     Inject one incident and investigate it end to end
  probe      Print one simulated traceroute
  metrics    Run the engine and dump its metrics registry
             (Prometheus text exposition; --json 1 for a JSON dump;
             --filter PREFIX keeps only matching metric names)
  daemon     Run the engine as a service (`blameitd`): framed ingest
             socket with a bounded queue, backpressure (SLOW_DOWN),
             impact-aware overload shedding, and /metrics over HTTP.
             Requires --state-dir; serves until a feeder sends TERM.
             (--ingest-addr/--http-addr H:P, port 0 = ephemeral;
              --queue-cap/--shed-watermark/--per-loc-shed-cap records;
              --sustained-ticks N overload watchdog; --resume 1 recovers)
  feed       Replay a simulated world into a running daemon
             (--addr H:P; --surge-mult M --surge-start-hour H
              --surge-hours N amplifies volume to provoke shedding;
              honors SLOW_DOWN backpressure with bounded retries;
              --no-term 1 leaves the daemon up, --term-only 1 sends
              just TERM so a harness can scrape between the two)
  scrape     One HTTP GET against a running daemon
             (--addr H:P, --path /metrics|/alerts|/healthz)
  trace      Run engine ticks under tracing, print the span tree
             (--ticks N for more than one tick; defaults to --scale tiny)
  help       This text

COMMON FLAGS:
  --scale tiny|small|default   world size        (default: small)
  --seed N                     determinism seed  (default: 2019)
  --days D                     simulated days    (command-specific default)
  --threads N                  engine tick worker threads; 0 = auto
                               (available cores, or BLAMEIT_THREADS).
                               Output is byte-identical at any N.
                               `trace` defaults to 1 for a readable tree.
  --fault-plan NAME            (analyze/inject) run under a chaos plan
                               degrading the measurement plane:
                               none|mild|heavy|probe-storm. The engine
                               retries, degrades verdicts, and reports
                               every injected/absorbed fault.
  --fault-seed N               chaos plan seed (default: 0xC4A05);
                               output is deterministic per (seed, plan)
  --state-dir DIR              (analyze) durable state: versioned CRC'd
                               snapshots + an fsync'd tick journal in DIR.
                               A fresh run wipes prior blameit state there.
  --resume 1                   (analyze, with --state-dir) recover from the
                               newest valid snapshot + deterministic journal
                               replay; output is byte-identical to a run
                               that never stopped
  --snapshot-every N           (analyze) ticks between snapshots (default 4)
";

/// Dispatches a command line (excluding `argv[0]`). Returns the rendered
/// output.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(USAGE.to_string());
    };
    // `fsck <dir>`, `explain <selector>`, `flight <sub>`, and
    // `scenario <sub> [name]` take positional arguments, so they are
    // dispatched before `Args::parse_from` (which rejects positionals).
    if cmd == "fsck" {
        return cmd_fsck(rest);
    }
    if cmd == "explain" {
        return cmd_explain(rest);
    }
    if cmd == "flight" {
        return cmd_flight(rest);
    }
    if cmd == "scenario" {
        return cmd_scenario(rest);
    }
    let args = Args::parse_from(rest.iter().cloned());
    match cmd.as_str() {
        "topo" => cmd_topo(&args),
        "routes" => cmd_routes(&args),
        "simulate" => cmd_simulate(&args),
        "analyze" => cmd_analyze(&args),
        "inject" => cmd_inject(&args),
        "probe" => cmd_probe(&args),
        "metrics" => cmd_metrics(&args),
        "trace" => cmd_trace(&args),
        "daemon" => blameit_daemon::run_daemon(&args).map_err(err),
        "feed" => blameit_daemon::run_feed(&args).map_err(err),
        "scrape" => blameit_daemon::run_scrape(&args).map_err(err),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!(
            "unknown command {other:?}; try `blameit help`"
        ))),
    }
}

fn cmd_topo(args: &Args) -> Result<String, CliError> {
    let world = organic_world(args.scale(Scale::Small), 1, args.u64("seed", 2019));
    let topo = world.topology();
    if args.get("dot").is_some() {
        return Ok(render_dot(topo));
    }
    let mut out = String::new();
    let count_role = |role: AsRole| topo.ases.iter().filter(|a| a.role == role).count();
    writeln!(out, "topology (seed {}):", args.u64("seed", 2019)).unwrap();
    writeln!(out, "  metros:           {}", topo.metros.len()).unwrap();
    writeln!(out, "  cloud locations:  {}", topo.cloud_locations.len()).unwrap();
    writeln!(out, "  tier-1 ASes:      {}", count_role(AsRole::Tier1)).unwrap();
    writeln!(out, "  transit ASes:     {}", count_role(AsRole::Transit)).unwrap();
    writeln!(
        out,
        "  access ISPs:      {} broadband + {} cellular",
        count_role(AsRole::AccessBroadband),
        count_role(AsRole::AccessMobile)
    )
    .unwrap();
    writeln!(out, "  announced prefixes: {}", topo.prefixes.len()).unwrap();
    writeln!(out, "  client /24s:      {}", topo.clients.len()).unwrap();
    writeln!(out, "  middle BGP paths: {}", topo.paths.len()).unwrap();
    writeln!(out, "\n  per-region clients:").unwrap();
    for r in Region::ALL {
        let n = topo.clients.iter().filter(|c| c.region == r).count();
        writeln!(out, "    {:>12}: {n}", r.label()).unwrap();
    }
    Ok(out)
}

/// Renders the AS-level peering graph as Graphviz DOT: one node per
/// AS (shaped by role), one edge per distinct AS adjacency in the PoP
/// graph.
fn render_dot(topo: &blameit_topology::Topology) -> String {
    use std::collections::BTreeSet;
    let mut out = String::new();
    writeln!(out, "graph blameit_topology {{").unwrap();
    writeln!(out, "  layout=sfdp; overlap=false; splines=true;").unwrap();
    for a in &topo.ases {
        let (shape, color) = match a.role {
            AsRole::Cloud => ("doublecircle", "gold"),
            AsRole::Tier1 => ("hexagon", "steelblue"),
            AsRole::Transit => ("box", "seagreen"),
            AsRole::AccessBroadband => ("ellipse", "gray70"),
            AsRole::AccessMobile => ("ellipse", "plum"),
        };
        writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{}\", shape={shape}, style=filled, fillcolor={color}];",
            a.asn, a.asn, a.name
        )
        .unwrap();
    }
    // Distinct AS-level adjacencies from the PoP graph.
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for pop in topo.graph.pops() {
        for (nbr, _, _) in topo.graph.neighbors(pop.id) {
            let other = topo.graph.pop(nbr).asn;
            if other != pop.asn {
                let (a, b) = if pop.asn.0 < other.0 {
                    (pop.asn.0, other.0)
                } else {
                    (other.0, pop.asn.0)
                };
                edges.insert((a, b));
            }
        }
    }
    for (a, b) in edges {
        writeln!(out, "  \"AS{a}\" -- \"AS{b}\";").unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

fn cmd_routes(args: &Args) -> Result<String, CliError> {
    let world = organic_world(args.scale(Scale::Small), 1, args.u64("seed", 2019));
    let topo = world.topology();
    let c = match args.get("p24") {
        Some(s) => {
            let p24: Prefix24 = s.parse().map_err(|e| err(format!("bad --p24: {e}")))?;
            topo.client(p24)
                .ok_or_else(|| err(format!("{p24} is not a known client block")))?
        }
        None => &topo.clients[args.u64("client", 0) as usize % topo.clients.len()],
    };
    let mut out = String::new();
    writeln!(
        out,
        "client {} — {} ({}, {}), population ~{}, {}",
        c.p24,
        c.origin,
        topo.as_info(c.origin)
            .map(|a| a.name.clone())
            .unwrap_or_default(),
        c.region.label(),
        c.population,
        if c.mobile {
            "cellular"
        } else if c.enterprise {
            "enterprise"
        } else {
            "home broadband"
        },
    )
    .unwrap();
    writeln!(
        out,
        "announced prefix {}, anycast primary {}, secondary {}",
        topo.announced_prefix(c).prefix,
        c.primary_loc,
        c.secondary_loc
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".into()),
    )
    .unwrap();
    for loc in [Some(c.primary_loc), c.secondary_loc].into_iter().flatten() {
        let ro = topo.routes_for(loc, c);
        let live = world.route_at(loc, c, SimTime(args.u64("at-secs", 43_200)));
        writeln!(out, "\nroutes from {loc}:").unwrap();
        for (i, opt) in ro.options.iter().enumerate() {
            let middle = topo.paths.get(opt.path_id);
            writeln!(
                out,
                "  option {} {} {:<28} one-way {:>6.2} ms  {}",
                i,
                if opt.path_id == live.path_id && opt.total_oneway_ms == live.total_oneway_ms {
                    "*"
                } else {
                    " "
                },
                middle.to_string(),
                opt.total_oneway_ms,
                opt.path_id,
            )
            .unwrap();
        }
    }
    writeln!(out, "\n(* = live at --at-secs, accounting for BGP churn)").unwrap();
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let days = args.u64("days", 1);
    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let s = DatasetSummary::collect(&world, TimeRange::days(days));
    if args.get("json").is_some() {
        let j = blameit_bench::json::Json::obj()
            .field("days", days)
            .field("seed", args.u64("seed", 2019))
            .field("rtt_measurements", s.rtt_measurements)
            .field("quartets", s.quartets)
            .field("client_p24s", s.client_p24s)
            .field("bgp_prefixes", s.bgp_prefixes)
            .field("client_ases", s.client_ases)
            .field("bgp_paths", s.bgp_paths)
            .field("scheduled_faults", world.faults().len());
        return Ok(format!("{j}\n"));
    }
    let mut out = String::new();
    writeln!(out, "simulated {days} day(s):").unwrap();
    writeln!(out, "  RTT measurements: {}", s.rtt_measurements).unwrap();
    writeln!(out, "  quartets:         {}", s.quartets).unwrap();
    writeln!(out, "  client /24s:      {}", s.client_p24s).unwrap();
    writeln!(out, "  BGP prefixes:     {}", s.bgp_prefixes).unwrap();
    writeln!(out, "  client ASes:      {}", s.client_ases).unwrap();
    writeln!(out, "  middle BGP paths: {}", s.bgp_paths).unwrap();
    writeln!(out, "  scheduled faults: {}", world.faults().len()).unwrap();
    Ok(out)
}

/// Engine config for `world` with the `--threads` override applied
/// (`0` keeps the default: available cores or `BLAMEIT_THREADS`).
fn engine_config(world: &World, threads: usize) -> BlameItConfig {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    if threads > 0 {
        cfg.parallelism = threads;
    }
    cfg
}

/// Parses `--fault-plan`/`--fault-seed` into a chaos plan, if any.
fn parse_fault_plan(args: &Args) -> Result<Option<FaultPlan>, CliError> {
    let Some(name) = args.get("fault-plan") else {
        return Ok(None);
    };
    let seed = args.u64("fault-seed", 0xC4A05);
    FaultPlan::parse(name, seed).map(Some).map_err(err)
}

fn run_engine(
    world: &World,
    warmup_days: u64,
    eval: TimeRange,
    tickets: u64,
    threads: usize,
    plan: Option<FaultPlan>,
    out: &mut String,
) {
    let cfg = engine_config(world, threads);
    let parallelism = cfg.parallelism;
    let engine = BlameItEngine::new(cfg);
    match plan {
        None => {
            let backend = WorldBackend::with_parallelism(world, parallelism);
            drive(engine, backend, warmup_days, eval, tickets, out);
        }
        Some(plan) => {
            // Share the engine's registry so injected faults and the
            // engine's absorption counters land in one exposition.
            let backend = ChaosBackend::with_registry(
                WorldBackend::with_parallelism(world, parallelism),
                plan,
                engine.metrics().registry(),
            );
            let (engine, backend) = drive(engine, backend, warmup_days, eval, tickets, out);
            let s = backend.stats();
            let m = engine.metrics();
            writeln!(
                out,
                "chaos: {} faults injected (probe timeouts {}, truncated {}, delayed {}, \
                 quartet batches dropped {}, route lookups dropped {}, churn duplicated {}, \
                 churn delayed {})",
                s.total(),
                s.probe_timeouts,
                s.probes_truncated,
                s.probes_delayed,
                s.quartet_batches_dropped,
                s.route_infos_dropped,
                s.churn_duplicated,
                s.churn_delayed,
            )
            .unwrap();
            writeln!(
                out,
                "chaos: absorbed with {} probe retries, {} lost attempts, {} degraded verdicts, \
                 {} baseline quarantines, {} background retries",
                m.probe_retries.get(),
                m.probe_attempts_lost.get(),
                m.degraded_total(),
                m.baseline_quarantines.get(),
                m.background_retries.get(),
            )
            .unwrap();
        }
    }
}

/// Renders per-tick alerts (operator tickets first, then plain lines
/// capped at 40) and returns the collected blames for the window
/// tally. Shared by the in-memory and durable analyze paths so a
/// durable run prints byte-identical alert output.
fn render_alerts(
    ticks: impl IntoIterator<Item = TickOutput>,
    tickets: u64,
    out: &mut String,
) -> Vec<blameit::BlameResult> {
    let mut blames = Vec::new();
    let mut alerts_shown = 0;
    let mut tickets_shown = 0u64;
    for tick in ticks {
        for a in &tick.alerts {
            if tickets_shown < tickets {
                let localization = tick
                    .localizations
                    .iter()
                    .find(|l| Some(l.issue.issue.path) == a.path && l.issue.issue.loc == a.loc);
                out.push_str(&blameit::report::render_ticket(a, localization));
                out.push('\n');
                tickets_shown += 1;
                continue;
            }
            if alerts_shown < 40 {
                writeln!(
                    out,
                    "  [{}] {:>7}  loc={} path={} client_as={} culprit={} ({} conns, {} /24s, {:.0}%)",
                    a.bucket,
                    a.blame.to_string(),
                    a.loc,
                    a.path.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                    a.client_as.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
                    a.culprit.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
                    a.impacted_connections,
                    a.impacted_p24s,
                    100.0 * a.confidence,
                )
                .unwrap();
                alerts_shown += 1;
            }
        }
        blames.extend(tick.blames);
    }
    blames
}

/// The trailing summary lines shared by every analyze-style run.
fn render_run_summary(blames: &[blameit::BlameResult], engine: &BlameItEngine, out: &mut String) {
    let t = tally(blames);
    writeln!(out, "\nblame fractions over the window: {t}").unwrap();
    writeln!(
        out,
        "probes: {} background + {} on-demand",
        engine.background_probes_total, engine.on_demand_probes_total
    )
    .unwrap();
    // Degraded-verdict breakdown: why middle localizations fell back
    // to `MiddleUnlocalized`, by reason (zero reasons elided).
    let m = engine.metrics();
    if m.degraded_total() > 0 {
        let parts: Vec<String> = UnlocalizedReason::ALL
            .iter()
            .filter_map(|r| {
                let n = m.degraded_counter(*r).get();
                (n > 0).then(|| format!("{r} {n}"))
            })
            .collect();
        writeln!(
            out,
            "degraded verdicts: {} ({})",
            m.degraded_total(),
            parts.join(", ")
        )
        .unwrap();
    }
}

/// Warmup + evaluation loop shared by the plain and chaos paths.
fn drive<B: Backend>(
    mut engine: BlameItEngine,
    mut backend: B,
    warmup_days: u64,
    eval: TimeRange,
    tickets: u64,
    out: &mut String,
) -> (BlameItEngine, B) {
    engine.warmup(&backend, TimeRange::days(warmup_days), 2);
    let ticks = engine.run(&mut backend, eval);
    let blames = render_alerts(ticks, tickets, out);
    render_run_summary(&blames, &engine, out);
    (engine, backend)
}

fn cmd_analyze(args: &Args) -> Result<String, CliError> {
    if let Some(dir) = args.get("state-dir") {
        let dir = dir.to_string();
        return cmd_analyze_durable(args, &dir);
    }
    let days = args.u64("days", 2).max(2);
    let warmup = args.u64("warmup", 1).min(days - 1);
    let tickets = args.u64("tickets", 0);
    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let plan = parse_fault_plan(args)?;
    let mut out = String::new();
    writeln!(out, "alerts (top per 15-min tick, first 40):").unwrap();
    run_engine(
        &world,
        warmup,
        TimeRange::new(SimTime::from_days(warmup), SimTime::from_days(days)),
        tickets,
        args.u64("threads", 0) as usize,
        plan,
        &mut out,
    );
    Ok(out)
}

/// `analyze --state-dir DIR [--resume 1]`: the durable engine path.
///
/// A fresh run wipes prior blameit state in `DIR`, warms up, writes
/// the tick-0 checkpoint, then runs durable ticks (journal + periodic
/// snapshots). `--resume 1` instead recovers — newest valid snapshot
/// plus deterministic journal replay — and continues; everything after
/// the first status line is byte-identical to an in-memory run.
fn cmd_analyze_durable(args: &Args, dir: &str) -> Result<String, CliError> {
    if args.get("fault-plan").is_some() {
        return Err(err("--state-dir does not combine with --fault-plan"));
    }
    let days = args.u64("days", 2).max(2);
    let warmup = args.u64("warmup", 1).min(days - 1);
    let tickets = args.u64("tickets", 0);
    let resume = args.get("resume").is_some_and(|v| v != "0");
    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let state_err = |e: &dyn std::fmt::Display| err(format!("state dir {dir}: {e}"));

    let mut cfg = engine_config(&world, args.u64("threads", 0) as usize);
    cfg.state_dir = Some(PathBuf::from(dir));
    cfg.snapshot_every_ticks = args.u64("snapshot-every", 4).max(1) as u32;
    if !resume {
        let store = StateStore::create(dir).map_err(|e| state_err(&e))?;
        store.wipe().map_err(|e| state_err(&e))?;
    }

    let mut backend = WorldBackend::with_parallelism(&world, cfg.parallelism);
    let registry = std::sync::Arc::new(blameit_obs::MetricsRegistry::new());
    let (mut durable, recovery) =
        DurableEngine::open(cfg, registry, &mut backend).map_err(|e| state_err(&e))?;

    let mut out = String::new();
    writeln!(out, "{}", recovery.describe()).unwrap();
    if recovery.mode == StartMode::Cold {
        durable
            .warmup_and_checkpoint(&backend, TimeRange::days(warmup), 2)
            .map_err(|e| state_err(&e))?;
    }
    writeln!(out, "alerts (top per 15-min tick, first 40):").unwrap();
    let resumed = durable
        .run(
            &mut backend,
            TimeRange::new(SimTime::from_days(warmup), SimTime::from_days(days)),
        )
        .map_err(|e| state_err(&e))?;
    let mut ticks = recovery.replayed;
    ticks.extend(resumed);
    let blames = render_alerts(ticks, tickets, &mut out);
    render_run_summary(&blames, durable.engine(), &mut out);
    Ok(out)
}

/// `fsck <dir>` (or `fsck --dir DIR`): validate a state directory.
fn cmd_fsck(rest: &[String]) -> Result<String, CliError> {
    let dir = match rest.first() {
        Some(s) if !s.starts_with("--") => s.clone(),
        _ => Args::parse_from(rest.iter().cloned())
            .get("dir")
            .map(str::to_string)
            .ok_or_else(|| err("fsck requires a state directory: blameit fsck <dir>"))?,
    };
    let report = fsck(Path::new(&dir));
    let rendered = report.render();
    if report.ok() {
        Ok(rendered)
    } else {
        // Corruption must exit non-zero; the report itself is the
        // error message.
        Err(CliError(rendered.trim_end().to_string()))
    }
}

/// What `blameit explain <selector>` should explain.
enum ExplainSelector {
    /// One quartet's Algorithm-1 verdict(s): `quartet:<loc>/<p24>`.
    Quartet { loc: CloudLocId, p24: Prefix24 },
    /// Middle localizations observed from one location: `incident:<loc>`.
    Incident { loc: CloudLocId },
}

fn parse_selector(s: &str) -> Result<ExplainSelector, CliError> {
    let usage = "selector must be quartet:<loc>/<p24> (e.g. quartet:0/10.80.0.0/24) \
                 or incident:<loc> (e.g. incident:0)";
    let (kind, rest) = s.split_once(':').ok_or_else(|| err(usage))?;
    match kind {
        "quartet" => {
            let (loc_s, p24_s) = rest.split_once('/').ok_or_else(|| err(usage))?;
            let loc = loc_s
                .parse()
                .map_err(|_| err(format!("bad cloud location {loc_s:?}")))?;
            let p24 = p24_s
                .parse()
                .map_err(|e| err(format!("bad /24 {p24_s:?}: {e}")))?;
            Ok(ExplainSelector::Quartet {
                loc: CloudLocId(loc),
                p24,
            })
        }
        "incident" => {
            let loc = rest
                .parse()
                .map_err(|_| err(format!("bad cloud location {rest:?}")))?;
            Ok(ExplainSelector::Incident {
                loc: CloudLocId(loc),
            })
        }
        other => Err(err(format!("unknown selector kind {other:?}; {usage}"))),
    }
}

/// Runs the scenario the explain/flight verbs operate on and returns
/// every tick output. With `--target` this is the `inject` scenario
/// (quiet world + one fault, evaluated over the fault window);
/// otherwise the `analyze` scenario (organic world, post-warmup days).
fn scenario_ticks(args: &Args) -> Result<Vec<TickOutput>, CliError> {
    let threads = args.u64("threads", 0) as usize;
    let seed = args.u64("seed", 2019);
    if let Some(target_s) = args.get("target") {
        let ms = args.f64("ms", 80.0);
        let at_hour = args.u64("at-hour", 26).max(25);
        let hours = args.u64("hours", 3);
        let days = (at_hour + hours) / 24 + 2;
        let mut world = quiet_world(args.scale(Scale::Small), days, seed);
        let (target, _) = parse_target(&world, target_s)?;
        let start = SimTime::from_hours(at_hour);
        world.add_faults(vec![Fault {
            id: FaultId(0),
            target,
            start,
            duration_secs: hours * 3_600,
            added_ms: ms,
        }]);
        // Learn on quiet day 0, then burn in from day 1 to the fault
        // start so background probes build middle baselines — without
        // them every localization degrades to `no_baseline` and the
        // provenance tree has no per-AS delta to show.
        let cfg = engine_config(&world, threads);
        let mut backend = WorldBackend::with_parallelism(&world, cfg.parallelism);
        let mut engine = BlameItEngine::new(cfg);
        engine.warmup(&backend, TimeRange::days(1), 2);
        engine.run(&mut backend, TimeRange::new(SimTime::from_days(1), start));
        Ok(engine.run(&mut backend, TimeRange::new(start, start + hours * 3_600)))
    } else {
        let days = args.u64("days", 2).max(2);
        let warmup = args.u64("warmup", 1).min(days - 1);
        let world = organic_world(args.scale(Scale::Small), days, seed);
        Ok(collect_ticks(
            &world,
            warmup,
            TimeRange::new(SimTime::from_days(warmup), SimTime::from_days(days)),
            threads,
        ))
    }
}

/// Warms up an engine over `world` and returns the evaluated ticks.
fn collect_ticks(
    world: &World,
    warmup_days: u64,
    eval: TimeRange,
    threads: usize,
) -> Vec<TickOutput> {
    let cfg = engine_config(world, threads);
    let mut backend = WorldBackend::with_parallelism(world, cfg.parallelism);
    let mut engine = BlameItEngine::new(cfg);
    engine.warmup(&backend, TimeRange::days(warmup_days), 2);
    engine.run(&mut backend, eval)
}

/// `explain <selector>`: render the provenance chain behind verdicts
/// matching the selector as a tree, newest-run scenario first match.
fn cmd_explain(rest: &[String]) -> Result<String, CliError> {
    let Some((selector, flags)) = rest.split_first() else {
        return Err(err(
            "explain requires a selector: blameit explain quartet:<loc>/<p24> | incident:<loc>",
        ));
    };
    let sel = parse_selector(selector)?;
    let args = Args::parse_from(flags.iter().cloned());
    let limit = args.u64("limit", 3).max(1) as usize;
    let ticks = scenario_ticks(&args)?;
    let mut out = String::new();
    match sel {
        ExplainSelector::Quartet { loc, p24 } => {
            let matches: Vec<&blameit::BlameResult> = ticks
                .iter()
                .flat_map(|t| t.blames.iter())
                .filter(|b| b.obs.loc == loc && b.obs.p24 == p24)
                .collect();
            if matches.is_empty() {
                return Err(err(format!(
                    "no verdicts for quartet loc={loc} p24={p24} in this scenario \
                     (try `blameit topo` / `blameit routes` for valid ids)"
                )));
            }
            writeln!(
                out,
                "{} verdict(s) for quartet loc={loc} p24={p24}; showing {}:",
                matches.len(),
                matches.len().min(limit)
            )
            .unwrap();
            for b in matches.iter().take(limit) {
                out.push('\n');
                out.push_str(&render_blame_explain(b));
            }
        }
        ExplainSelector::Incident { loc } => {
            let matches: Vec<&MiddleLocalization> = ticks
                .iter()
                .flat_map(|t| t.localizations.iter())
                .filter(|l| l.issue.issue.loc == loc)
                .collect();
            if matches.is_empty() {
                return Err(err(format!(
                    "no middle localizations at loc={loc} in this scenario \
                     (middle incidents need a middle-segment fault; try \
                     `blameit explain incident:<loc> --target middle:<asn> ...`)"
                )));
            }
            writeln!(
                out,
                "{} middle localization(s) at loc={loc}; showing {}:",
                matches.len(),
                matches.len().min(limit)
            )
            .unwrap();
            for l in matches.iter().take(limit) {
                out.push('\n');
                out.push_str(&render_localization_explain(l));
            }
        }
    }
    Ok(out)
}

/// `flight dump [--out FILE]`: run the engine over the scenario and
/// dump the flight-recorder ring (trigger log + recent tick frames)
/// as JSONL.
fn cmd_flight(rest: &[String]) -> Result<String, CliError> {
    let Some((sub, flags)) = rest.split_first() else {
        return Err(err("flight requires a subcommand: blameit flight dump"));
    };
    if sub != "dump" {
        return Err(err(format!(
            "unknown flight subcommand {sub:?}; try `blameit flight dump`"
        )));
    }
    let args = Args::parse_from(flags.iter().cloned());
    let days = args.u64("days", 2).max(2);
    let warmup = args.u64("warmup", 1).min(days - 1);
    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let plan = parse_fault_plan(&args)?;
    let cfg = engine_config(&world, args.u64("threads", 0) as usize);
    let parallelism = cfg.parallelism;
    let mut engine = BlameItEngine::new(cfg);
    let eval = TimeRange::new(SimTime::from_days(warmup), SimTime::from_days(days));
    match plan {
        None => {
            let mut backend = WorldBackend::with_parallelism(&world, parallelism);
            engine.warmup(&backend, TimeRange::days(warmup), 2);
            engine.run(&mut backend, eval);
        }
        Some(plan) => {
            let mut backend = ChaosBackend::with_registry(
                WorldBackend::with_parallelism(&world, parallelism),
                plan,
                engine.metrics().registry(),
            );
            engine.warmup(&backend, TimeRange::days(warmup), 2);
            engine.run(&mut backend, eval);
        }
    }
    let dump = engine.flight_dump_manual(SimTime::from_days(days).secs(), "cli flight dump");
    if let Some(path) = args.get("out") {
        std::fs::write(path, &dump).map_err(|e| err(format!("write {path}: {e}")))?;
        Ok(format!("wrote {} byte(s) to {path}\n", dump.len()))
    } else {
        Ok(dump)
    }
}

/// `scenario list|run|check`: the declarative scenario library
/// (crates/scenario, format reference in docs/SCENARIOS.md).
fn cmd_scenario(rest: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err(err(
            "scenario requires a subcommand: blameit scenario list|run|check",
        ));
    };
    let (positional, flags) = match rest.first() {
        Some(s) if !s.starts_with("--") => (Some(s.clone()), &rest[1..]),
        _ => (None, rest),
    };
    let args = Args::parse_from(flags.iter().cloned());
    let dir = args.get("dir").unwrap_or("scenarios").to_string();
    let threads = args.u64("threads", 0) as usize;
    match sub.as_str() {
        "list" => scenario_list(&dir),
        "run" => {
            let name = positional.ok_or_else(|| {
                err("scenario run requires a name or path: blameit scenario run <name>")
            })?;
            scenario_run_one(&scenario_path(&dir, &name), threads)
        }
        "check" => {
            let all = args.u64("all", 0) == 1;
            let checker = ScenarioChecker {
                golden_dir: PathBuf::from(
                    args.get("golden-dir").unwrap_or("tests/golden/scenarios"),
                ),
                fail_dir: PathBuf::from(args.get("fail-dir").unwrap_or("target/scenario-failures")),
                bless: args.u64("bless", 0) == 1
                    || std::env::var("BLESS").ok().as_deref() == Some("1"),
                threads,
            };
            let paths = match (all, positional) {
                (true, _) => scenario_files(&dir)?,
                (false, Some(name)) => vec![scenario_path(&dir, &name)],
                (false, None) => return Err(err(
                    "scenario check requires a name or `--all 1`: blameit scenario check <name>",
                )),
            };
            scenario_check(&checker, &paths)
        }
        other => Err(err(format!(
            "unknown scenario subcommand {other:?}; try list, run, or check"
        ))),
    }
}

/// A bare name resolves inside the library dir; anything with a path
/// separator or a `.scn` suffix is used as-is.
fn scenario_path(dir: &str, name_or_path: &str) -> PathBuf {
    if name_or_path.ends_with(".scn") || name_or_path.contains('/') {
        PathBuf::from(name_or_path)
    } else {
        Path::new(dir).join(format!("{name_or_path}.scn"))
    }
}

/// Every `*.scn` in the library dir, sorted by file name.
fn scenario_files(dir: &str) -> Result<Vec<PathBuf>, CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| err(format!("scenario dir {dir}: {e}")))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(err(format!("scenario dir {dir}: no .scn files")));
    }
    Ok(files)
}

/// Loads and compiles one scenario file, insisting the file stem match
/// the declared `name` (so `scenario run <name>` round-trips).
fn load_compiled(path: &Path) -> Result<blameit_scenario::CompiledScenario, CliError> {
    let spec = blameit_scenario::load_scenario(path).map_err(|e| err(e.to_string()))?;
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    if stem != spec.name {
        return Err(err(format!(
            "{}: file stem {stem:?} does not match declared name {:?}",
            path.display(),
            spec.name
        )));
    }
    blameit_scenario::compile(&path.display().to_string(), spec).map_err(|e| err(e.to_string()))
}

fn scenario_list(dir: &str) -> Result<String, CliError> {
    let mut out = String::new();
    let files = scenario_files(dir)?;
    writeln!(out, "{} scenario(s) in {dir}:", files.len()).unwrap();
    for path in &files {
        match load_compiled(path) {
            Ok(scn) => {
                let spec = &scn.spec;
                let mut traits = Vec::new();
                if !spec.faults.is_empty() {
                    traits.push(format!("{} fault(s)", spec.faults.len()));
                }
                if spec.chaos.is_some() {
                    traits.push("chaos".to_string());
                }
                if spec.crash.is_some() {
                    traits.push("crash".to_string());
                }
                traits.push(format!("{} expectation(s)", spec.expect.len()));
                writeln!(out, "  {:<28} {}", spec.name, spec.summary).unwrap();
                writeln!(out, "  {:<28}   [{}]", "", traits.join(", ")).unwrap();
            }
            Err(e) => writeln!(out, "  {}: ERROR {e}", path.display()).unwrap(),
        }
    }
    Ok(out)
}

fn scenario_run_one(path: &Path, threads: usize) -> Result<String, CliError> {
    let scn = load_compiled(path)?;
    let file = path.display().to_string();
    let run =
        blameit_scenario::run_scenario(&file, &scn, threads).map_err(|e| err(e.to_string()))?;
    let failures = blameit_scenario::evaluate(&scn.spec, &run);
    let mut out = blameit_scenario::render_report(&scn.spec, &run, &failures);
    writeln!(out, "transcript:").unwrap();
    for line in run.transcript.lines() {
        writeln!(out, "  {line}").unwrap();
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(CliError(out.trim_end().to_string()))
    }
}

/// Shared settings for `scenario check`.
struct ScenarioChecker {
    golden_dir: PathBuf,
    fail_dir: PathBuf,
    bless: bool,
    threads: usize,
}

fn scenario_check(c: &ScenarioChecker, paths: &[PathBuf]) -> Result<String, CliError> {
    let mut out = String::new();
    let mut failed = 0usize;
    for path in paths {
        match scenario_check_one(c, path) {
            Ok(line) => out.push_str(&line),
            Err(block) => {
                failed += 1;
                out.push_str(&block);
            }
        }
    }
    writeln!(
        out,
        "checked {} scenario(s): {} pass, {failed} fail (threads={})",
        paths.len(),
        paths.len() - failed,
        c.threads
    )
    .unwrap();
    if failed == 0 {
        Ok(out)
    } else {
        Err(CliError(out.trim_end().to_string()))
    }
}

/// One scenario: run, compare the golden transcript (or re-pin it when
/// blessing), evaluate the `[expect]` block. On failure the transcript
/// is written to the fail dir so CI can upload it as an artifact.
fn scenario_check_one(c: &ScenarioChecker, path: &Path) -> Result<String, String> {
    let fail = |name: &str, lines: Vec<String>| -> String {
        let mut block = format!("FAIL {name}\n");
        for l in lines {
            block.push_str(&format!("  {l}\n"));
        }
        block
    };
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("?")
        .to_string();
    let scn = load_compiled(path).map_err(|e| fail(&name, vec![e.0]))?;
    let file = path.display().to_string();
    let run = blameit_scenario::run_scenario(&file, &scn, c.threads)
        .map_err(|e| fail(&name, vec![e.to_string()]))?;

    let mut failures = blameit_scenario::evaluate(&scn.spec, &run);
    let golden = c.golden_dir.join(format!("{name}.txt"));
    let mut blessed = false;
    if c.bless {
        if let Err(e) = std::fs::create_dir_all(&c.golden_dir)
            .and_then(|()| std::fs::write(&golden, &run.transcript))
        {
            failures.push(format!("bless {}: {e}", golden.display()));
        } else {
            blessed = true;
        }
    } else {
        match std::fs::read_to_string(&golden) {
            Ok(want) => {
                if want != run.transcript {
                    failures.push(format!(
                        "golden transcript mismatch vs {} ({})",
                        golden.display(),
                        first_transcript_diff(&run.transcript, &want)
                    ));
                }
            }
            Err(e) => failures.push(format!(
                "golden {}: {e} (bless with `blameit scenario check {name} --bless 1`)",
                golden.display()
            )),
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "PASS {name} ({} expectation(s){})\n",
            scn.spec.expect.len(),
            if blessed {
                ", golden blessed"
            } else {
                ", golden ok"
            }
        ))
    } else {
        let dump = c.fail_dir.join(format!("{name}.txt"));
        match std::fs::create_dir_all(&c.fail_dir)
            .and_then(|()| std::fs::write(&dump, &run.transcript))
        {
            Ok(()) => failures.push(format!("transcript written to {}", dump.display())),
            Err(e) => failures.push(format!("could not write failing transcript: {e}")),
        }
        Err(fail(&name, failures))
    }
}

/// Locates the first differing line between a run transcript and its
/// golden, for a pointed mismatch message.
fn first_transcript_diff(got: &str, want: &str) -> String {
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!("first diff at line {}: got {g:?}, golden {w:?}", i + 1);
        }
    }
    format!(
        "line count differs: got {}, golden {}",
        got.lines().count(),
        want.lines().count()
    )
}

/// Parses `cloud:<loc-id>`, `middle:<asn>`, or `client:<asn>`.
fn parse_target(world: &World, s: &str) -> Result<(FaultTarget, Segment), CliError> {
    let (kind, id) = s
        .split_once(':')
        .ok_or_else(|| err("--target expects kind:id, e.g. cloud:3 or middle:112"))?;
    let id: u32 = id
        .parse()
        .map_err(|_| err(format!("bad target id {id:?}")))?;
    match kind {
        "cloud" => {
            if id as usize >= world.topology().cloud_locations.len() {
                return Err(err(format!(
                    "no cloud location {id} (have {})",
                    world.topology().cloud_locations.len()
                )));
            }
            Ok((
                FaultTarget::CloudLocation(CloudLocId(id as u16)),
                Segment::Cloud,
            ))
        }
        "middle" => {
            let info = world
                .topology()
                .as_info(Asn(id))
                .ok_or_else(|| err(format!("unknown AS{id}")))?;
            if !info.role.is_middle() {
                return Err(err(format!("AS{id} is {}, not a middle AS", info.role)));
            }
            Ok((
                FaultTarget::MiddleAs {
                    asn: Asn(id),
                    via_path: None,
                },
                Segment::Middle,
            ))
        }
        "client" => {
            let info = world
                .topology()
                .as_info(Asn(id))
                .ok_or_else(|| err(format!("unknown AS{id}")))?;
            if !info.role.is_access() {
                return Err(err(format!("AS{id} is {}, not an access ISP", info.role)));
            }
            Ok((FaultTarget::ClientAs(Asn(id)), Segment::Client))
        }
        other => Err(err(format!("unknown target kind {other:?}"))),
    }
}

fn cmd_inject(args: &Args) -> Result<String, CliError> {
    let target_s = args
        .get("target")
        .ok_or_else(|| err("inject requires --target cloud:<loc>|middle:<asn>|client:<asn>"))?;
    let ms = args.f64("ms", 80.0);
    let at_hour = args.u64("at-hour", 26);
    let hours = args.u64("hours", 3);
    let warmup = (at_hour / 24).max(1);
    let days = warmup + (at_hour % 24 + hours) / 24 + 2;

    let mut world = quiet_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let (target, segment) = parse_target(&world, target_s)?;
    let plan = parse_fault_plan(args)?;
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target,
        start: SimTime::from_hours(at_hour),
        duration_secs: hours * 3_600,
        added_ms: ms,
    }]);

    let mut out = String::new();
    writeln!(
        out,
        "injected +{ms:.0} ms {segment} fault ({target_s}) at hour {at_hour} for {hours} h\n"
    )
    .unwrap();
    writeln!(out, "alerts during the incident:").unwrap();
    let start = SimTime::from_hours(at_hour);
    run_engine(
        &world,
        warmup,
        TimeRange::new(start, start + hours * 3_600),
        args.u64("tickets", 1),
        args.u64("threads", 0) as usize,
        plan,
        &mut out,
    );
    Ok(out)
}

fn cmd_probe(args: &Args) -> Result<String, CliError> {
    let world = organic_world(args.scale(Scale::Small), 1, args.u64("seed", 2019));
    let loc = CloudLocId(args.u64("loc", 0) as u16);
    if loc.0 as usize >= world.topology().cloud_locations.len() {
        return Err(err(format!("no cloud location {}", loc.0)));
    }
    let p24 = match args.get("p24") {
        Some(s) => s
            .parse::<Prefix24>()
            .map_err(|e| err(format!("bad --p24: {e}")))?,
        None => {
            // Default: the first /24 served by this location.
            world
                .topology()
                .clients_of(loc)
                .next()
                .ok_or_else(|| err(format!("{loc} serves no clients")))?
                .p24
        }
    };
    let at = SimTime(args.u64("at-secs", 43_200));
    let tr = world
        .traceroute(loc, p24, at)
        .ok_or_else(|| err(format!("{p24} is not a known client block")))?;

    let mut out = String::new();
    writeln!(out, "traceroute {loc} → {p24} at {at}:").unwrap();
    for (i, h) in tr.hops.iter().enumerate() {
        if h.responded {
            writeln!(
                out,
                "  {:>2}  {:<8} {:<10} {:>8.2} ms   [{}]",
                i + 1,
                h.asn.to_string(),
                world
                    .topology()
                    .as_info(h.asn)
                    .map(|a| a.name.clone())
                    .unwrap_or_default(),
                h.rtt_ms,
                h.segment,
            )
            .unwrap();
        } else {
            writeln!(out, "  {:>2}  * * *  (no response)", i + 1).unwrap();
        }
    }
    writeln!(out, "\nper-AS contributions:").unwrap();
    for (asn, ms) in tr.as_contributions() {
        writeln!(out, "  {:<8} {:>8.2} ms", asn.to_string(), ms).unwrap();
    }
    Ok(out)
}

/// Builds a warmed-up engine over `world` and evaluates
/// `[warmup_days, days)`; returns the engine for metric inspection.
fn warmed_engine_run(world: &World, warmup_days: u64, days: u64, threads: usize) -> BlameItEngine {
    let cfg = engine_config(world, threads);
    let mut backend = WorldBackend::with_parallelism(world, cfg.parallelism);
    let mut engine = BlameItEngine::new(cfg);
    engine.warmup(&backend, TimeRange::days(warmup_days), 2);
    engine.run(
        &mut backend,
        TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days)),
    );
    engine
}

fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    let days = args.u64("days", 2).max(2);
    let warmup = args.u64("warmup", 1).min(days - 1);
    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let engine = warmed_engine_run(&world, warmup, days, args.u64("threads", 0) as usize);
    let registry = engine.metrics().registry();
    let filter = args.get("filter").unwrap_or("");
    if args.get("json").is_some() {
        Ok(format!("{}\n", registry.render_json_filtered(filter)))
    } else {
        Ok(registry.render_prometheus_filtered(filter))
    }
}

fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let warmup = args.u64("warmup", 1).max(1);
    let ticks = args.u64("ticks", 1).max(1) as u32;
    let seed = args.u64("seed", 2019);
    // Tiny by default: the tree prints one line per span, and a small
    // world's first post-warmup tick issues hundreds of background
    // traceroutes (one span each).
    let world = organic_world(args.scale(Scale::Tiny), warmup + 1, seed);
    // Default to one thread: worker spans open at thread-local depth 0,
    // so a multi-threaded tick would flatten the rendered tree.
    let cfg = engine_config(&world, args.u64("threads", 1).max(1) as usize);
    let mut backend = WorldBackend::with_parallelism(&world, cfg.parallelism);
    let mut engine = BlameItEngine::new(cfg);
    engine.warmup(&backend, TimeRange::days(warmup), 2);

    let per_tick = engine.config().tick_buckets;
    let first = SimTime::from_days(warmup).bucket();
    let ring = blameit_obs::RingCollector::new(args.u64("events", 65_536) as usize);
    blameit_obs::with_subscriber(ring.clone(), || {
        for k in 0..ticks {
            engine.tick(&mut backend, first.plus(k * per_tick));
        }
    });

    let mut out = String::new();
    writeln!(
        out,
        "span tree: {ticks} tick(s) from {first} (seed {seed}, durations are wall time)\n"
    )
    .unwrap();
    out.push_str(&blameit_obs::render_tree(&ring.events()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_s(argv: &[&str]) -> Result<String, CliError> {
        run(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_empty() {
        assert!(run_s(&[]).unwrap().contains("USAGE"));
        assert!(run_s(&["help"]).unwrap().contains("COMMANDS"));
        assert!(run_s(&["bogus"]).is_err());
    }

    #[test]
    fn topo_lists_inventory() {
        let out = run_s(&["topo", "--scale", "tiny", "--seed", "3"]).unwrap();
        assert!(out.contains("cloud locations:"), "{out}");
        assert!(out.contains("middle BGP paths:"));
        for r in Region::ALL {
            assert!(out.contains(r.label()));
        }
    }

    #[test]
    fn topo_dot_is_valid_graphviz() {
        let out = run_s(&["topo", "--scale", "tiny", "--dot", "1"]).unwrap();
        assert!(out.starts_with("graph blameit_topology {"), "{out}");
        assert!(out.trim_end().ends_with('}'));
        assert!(out.contains("doublecircle"), "cloud node styled");
        assert!(out.contains(" -- "), "has edges");
        // Every quoted node in an edge line was declared.
        let declared: std::collections::HashSet<&str> = out
            .lines()
            .filter(|l| l.contains("[label="))
            .filter_map(|l| l.trim().split('"').nth(1))
            .collect();
        for line in out.lines().filter(|l| l.contains(" -- ")) {
            let mut parts = line.trim().trim_end_matches(';').split(" -- ");
            let a = parts.next().unwrap().trim_matches('"');
            let b = parts.next().unwrap().trim_matches('"');
            assert!(declared.contains(a), "undeclared {a}");
            assert!(declared.contains(b), "undeclared {b}");
        }
    }

    #[test]
    fn routes_shows_options() {
        let out = run_s(&["routes", "--scale", "tiny", "--client", "0"]).unwrap();
        assert!(out.contains("routes from"), "{out}");
        assert!(out.contains("option 0"), "{out}");
        assert!(out.contains("anycast primary"), "{out}");
        assert!(run_s(&["routes", "--scale", "tiny", "--p24", "9.9.9.0/24"]).is_err());
    }

    #[test]
    fn simulate_summarizes() {
        let out = run_s(&["simulate", "--scale", "tiny", "--days", "1"]).unwrap();
        assert!(out.contains("RTT measurements:"));
        assert!(out.contains("scheduled faults:"));
    }

    #[test]
    fn simulate_json_mode() {
        let out = run_s(&["simulate", "--scale", "tiny", "--days", "1", "--json", "1"]).unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"rtt_measurements\":"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn probe_prints_hops() {
        let out = run_s(&["probe", "--scale", "tiny", "--loc", "0"]).unwrap();
        assert!(out.contains("traceroute cloud0"), "{out}");
        assert!(out.contains("per-AS contributions:"));
        assert!(out.contains("[cloud]"));
        assert!(out.contains("[client]"));
    }

    #[test]
    fn probe_rejects_unknown() {
        assert!(run_s(&["probe", "--scale", "tiny", "--loc", "9999"]).is_err());
        assert!(run_s(&["probe", "--scale", "tiny", "--p24", "9.9.9.0/24"]).is_err());
    }

    #[test]
    fn inject_requires_and_validates_target() {
        assert!(run_s(&["inject", "--scale", "tiny"]).is_err());
        assert!(run_s(&["inject", "--scale", "tiny", "--target", "weird:1"]).is_err());
        assert!(run_s(&["inject", "--scale", "tiny", "--target", "cloud:50000"]).is_err());
        // `middle:` with an access AS id must be rejected.
        let world = quiet_world(Scale::Tiny, 1, 2019);
        let access = world
            .topology()
            .ases
            .iter()
            .find(|a| a.role.is_access())
            .unwrap()
            .asn;
        assert!(run_s(&[
            "inject",
            "--scale",
            "tiny",
            "--target",
            &format!("middle:{}", access.0)
        ])
        .is_err());
    }

    #[test]
    fn analyze_tickets_render() {
        let out = run_s(&[
            "analyze",
            "--scale",
            "tiny",
            "--days",
            "2",
            "--tickets",
            "2",
        ])
        .unwrap();
        assert!(out.contains("## ["), "a ticket heading renders: {out}");
        assert!(out.contains("routing:"), "{out}");
    }

    #[test]
    fn inject_cloud_produces_cloud_alerts() {
        let out = run_s(&[
            "inject",
            "--scale",
            "tiny",
            "--target",
            "cloud:0",
            "--ms",
            "120",
            "--at-hour",
            "26",
            "--hours",
            "2",
        ])
        .unwrap();
        assert!(out.contains("injected +120 ms cloud fault"), "{out}");
        assert!(out.contains("cloud"), "{out}");
        assert!(out.contains("blame fractions"), "{out}");
    }

    #[test]
    fn fault_plan_output_is_thread_invariant() {
        let argv = |threads: &'static str| {
            [
                "inject",
                "--scale",
                "tiny",
                "--target",
                "cloud:0",
                "--ms",
                "110",
                "--at-hour",
                "26",
                "--hours",
                "2",
                "--fault-plan",
                "heavy",
                "--fault-seed",
                "77",
                "--threads",
                threads,
            ]
        };
        let one = run_s(&argv("1")).unwrap();
        let four = run_s(&argv("4")).unwrap();
        assert!(one.contains("faults injected"), "{one}");
        assert_eq!(one, four, "chaos output must not depend on --threads");
    }

    #[test]
    fn fault_plan_none_matches_plain_run() {
        let base = [
            "inject",
            "--scale",
            "tiny",
            "--target",
            "cloud:0",
            "--ms",
            "110",
            "--at-hour",
            "26",
            "--hours",
            "2",
        ];
        let plain = run_s(&base).unwrap();
        let mut with_none: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        with_none.extend(["--fault-plan", "none"].iter().map(|s| s.to_string()));
        let chaotic = run(&with_none).unwrap();
        // Identical engine output; the chaos run only appends its summary.
        let prefix: String = chaotic
            .lines()
            .take_while(|l| !l.starts_with("chaos:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(plain, prefix, "a no-op plan must not perturb the engine");
        assert!(chaotic.contains("chaos: 0 faults injected"), "{chaotic}");
    }

    #[test]
    fn fault_plan_rejects_unknown_name() {
        let err = run_s(&[
            "analyze",
            "--scale",
            "tiny",
            "--days",
            "2",
            "--fault-plan",
            "bogus",
        ])
        .unwrap_err();
        assert!(err.0.contains("unknown fault plan"), "{}", err.0);
    }

    #[test]
    fn metrics_prometheus_exposition() {
        let out = run_s(&["metrics", "--scale", "tiny", "--days", "2"]).unwrap();
        assert!(out.contains("# TYPE blameit_ticks_total counter"), "{out}");
        assert!(out.contains("blameit_quartets_processed_total"), "{out}");
        assert!(
            out.contains("blameit_stage_duration_us_bucket{stage=\"passive_blame\""),
            "{out}"
        );
        assert!(out.contains("blameit_blames_total{segment="), "{out}");
        // Populated from a real run: at least one tick happened.
        let ticks_line = out
            .lines()
            .find(|l| l.starts_with("blameit_ticks_total "))
            .expect("ticks sample present");
        let n: u64 = ticks_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(n > 0, "{ticks_line}");
    }

    #[test]
    fn metrics_json_mode() {
        let out = run_s(&["metrics", "--scale", "tiny", "--days", "2", "--json", "1"]).unwrap();
        assert!(out.trim_start().starts_with('['), "{out}");
        assert!(out.trim_end().ends_with(']'), "{out}");
        assert!(
            out.contains("\"name\":\"blameit_tick_duration_us\""),
            "{out}"
        );
        assert!(out.contains("\"p99\":"), "{out}");
    }

    #[test]
    fn explain_rejects_bad_selectors() {
        assert!(run_s(&["explain"]).is_err());
        assert!(run_s(&["explain", "nonsense"]).is_err());
        assert!(run_s(&["explain", "bogus:1"]).is_err());
        assert!(run_s(&["explain", "quartet:zz/1.0.0.0/24"]).is_err());
        assert!(run_s(&["explain", "quartet:0"]).is_err());
        assert!(run_s(&["explain", "incident:zz"]).is_err());
    }

    #[test]
    fn explain_incident_renders_provenance_chain() {
        let out = run_s(&[
            "explain",
            "incident:0",
            "--scale",
            "tiny",
            "--target",
            "middle:104",
            "--ms",
            "100",
            "--at-hour",
            "30",
            "--hours",
            "2",
            "--limit",
            "1",
        ])
        .unwrap();
        assert!(
            out.contains("middle localization(s) at loc=cloud0"),
            "{out}"
        );
        assert!(out.contains("├─ incident: opened at bucket"), "{out}");
        assert!(out.contains("├─ priority: client-time product"), "{out}");
        assert!(out.contains("├─ probe: target"), "{out}");
        assert!(out.contains("├─ baseline: "), "{out}");
        assert!(out.contains("└─ verdict: culprit(AS104)"), "{out}");
        assert!(out.contains("per-AS delta:"), "{out}");
        assert!(out.contains("AS104 baseline="), "{out}");
    }

    #[test]
    fn explain_quartet_renders_algorithm1_branch() {
        // A /24 served by cloud0 in the quiet tiny world; the injected
        // cloud fault guarantees it carries verdicts during the window.
        let world = quiet_world(Scale::Tiny, 2, 2019);
        let p24 = world
            .topology()
            .clients_of(CloudLocId(0))
            .next()
            .unwrap()
            .p24;
        let out = run_s(&[
            "explain",
            &format!("quartet:0/{p24}"),
            "--scale",
            "tiny",
            "--target",
            "cloud:0",
            "--ms",
            "120",
            "--at-hour",
            "30",
            "--hours",
            "2",
            "--limit",
            "2",
        ])
        .unwrap();
        assert!(out.contains("verdict(s) for quartet loc=cloud0"), "{out}");
        assert!(out.contains("├─ observed: n="), "{out}");
        assert!(out.contains("└─ algorithm-1: "), "{out}");
        assert!(out.contains("tau 0.8"), "{out}");
        assert!(out.contains("└─ evidence: cloud="), "{out}");
    }

    #[test]
    fn explain_reports_no_matches_as_error() {
        let e = run_s(&[
            "explain",
            "quartet:0/9.9.9.0/24",
            "--scale",
            "tiny",
            "--days",
            "2",
        ])
        .unwrap_err();
        assert!(e.0.contains("no verdicts"), "{}", e.0);
    }

    #[test]
    fn flight_dump_emits_jsonl_ring() {
        assert!(run_s(&["flight"]).is_err());
        assert!(run_s(&["flight", "bogus"]).is_err());
        let out = run_s(&["flight", "dump", "--scale", "tiny", "--days", "2"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(!lines.is_empty());
        // Trigger log first (the manual dump itself always logs one),
        // then the frame ring; every line is a JSON object.
        assert!(
            lines.iter().any(|l| l.contains("\"trigger\":\"manual\"")),
            "{out}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("{\"kind\":\"frame\"")),
            "{out}"
        );
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        // Byte-identical across thread counts.
        let again = run_s(&[
            "flight",
            "dump",
            "--scale",
            "tiny",
            "--days",
            "2",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(out, again, "flight dump must not depend on --threads");
    }

    #[test]
    fn metrics_filter_selects_prefix_in_sorted_order() {
        let out = run_s(&[
            "metrics",
            "--scale",
            "tiny",
            "--days",
            "2",
            "--filter",
            "blameit_blames",
        ])
        .unwrap();
        assert!(out.contains("blameit_blames_total{segment="), "{out}");
        assert!(!out.contains("blameit_ticks_total"), "{out}");
        let names: Vec<&str> = out
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert!(!names.is_empty());
        for n in &names {
            assert!(n.starts_with("blameit_blames"), "{n}");
        }
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "exposition must render in sorted order");
        // JSON path honors the filter too.
        let j = run_s(&[
            "metrics",
            "--scale",
            "tiny",
            "--days",
            "2",
            "--filter",
            "zzz_nothing",
            "--json",
            "1",
        ])
        .unwrap();
        assert_eq!(j.trim(), "[]", "{j}");
    }

    #[test]
    fn analyze_summary_breaks_down_degraded_verdicts() {
        let out = run_s(&["analyze", "--scale", "tiny", "--days", "2"]).unwrap();
        assert!(out.contains("degraded verdicts: "), "{out}");
        // Reason labels come straight from UnlocalizedReason.
        let line = out
            .lines()
            .find(|l| l.starts_with("degraded verdicts: "))
            .unwrap();
        assert!(
            UnlocalizedReason::ALL
                .iter()
                .any(|r| line.contains(r.label())),
            "{line}"
        );
    }

    #[test]
    fn trace_renders_span_tree() {
        let out = run_s(&["trace", "--ticks", "2"]).unwrap();
        assert!(out.contains("span tree: 2 tick(s)"), "{out}");
        assert!(out.contains("tick"), "{out}");
        assert!(out.contains("passive_blame"), "{out}");
        assert!(out.contains("ingest"), "{out}");
    }

    fn cli_tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("blameit-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fsck_requires_dir_and_rejects_missing() {
        assert!(run_s(&["fsck"]).is_err());
        let e = run_s(&["fsck", "/nonexistent/blameit-state"]).unwrap_err();
        assert!(e.0.contains("does not exist"), "{}", e.0);
        assert!(e.0.contains("CORRUPT"), "{}", e.0);
    }

    #[test]
    fn analyze_durable_matches_in_memory_and_resumes() {
        let dir = cli_tmp_dir("analyze");
        let dir_s = dir.to_str().unwrap();
        let base = ["analyze", "--scale", "tiny", "--days", "2"];
        let plain = run_s(&base).unwrap();

        let durable_argv: Vec<&str> = base
            .iter()
            .chain(["--state-dir", dir_s].iter())
            .copied()
            .collect();
        let fresh = run_s(&durable_argv).unwrap();
        let (first, rest) = fresh.split_once('\n').unwrap();
        assert!(first.starts_with("engine start: cold"), "{first}");
        assert_eq!(rest, plain, "durable run must not perturb the engine");

        // fsck on the healthy directory is CLEAN (exit 0 path).
        let clean = run_s(&["fsck", dir_s]).unwrap();
        assert!(clean.contains("CLEAN"), "{clean}");

        // Force a real replay: drop the newest snapshots so recovery
        // falls back to an older one and re-derives the tail from the
        // journal.
        let store = StateStore::create(&dir).unwrap();
        let snaps = store.list_snapshots().unwrap();
        assert!(snaps.len() >= 2, "retention keeps several snapshots");
        for (_, path) in &snaps[1..] {
            std::fs::remove_file(path).unwrap();
        }
        let oldest = snaps[0].0;
        let resume_argv: Vec<&str> = durable_argv
            .iter()
            .chain(["--resume", "1"].iter())
            .copied()
            .collect();
        let resumed = run_s(&resume_argv).unwrap();
        let (first, rest) = resumed.split_once('\n').unwrap();
        assert!(
            first.starts_with(&format!(
                "engine start: recovered from snapshot @ tick {oldest}"
            )),
            "{first}"
        );
        // Replay restores the exact end-of-run state: the cumulative
        // probe totals match the uninterrupted run. (Per-tick byte
        // identity is enforced inside recovery — every replayed tick's
        // digest is checked against the journal.)
        let probes = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("probes: "))
                .map(str::to_string)
        };
        assert_eq!(probes(rest), probes(&plain), "{rest}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_flags_corruption_in_real_state() {
        let dir = cli_tmp_dir("fsck-corrupt");
        let dir_s = dir.to_str().unwrap();
        run_s(&[
            "analyze",
            "--scale",
            "tiny",
            "--days",
            "2",
            "--state-dir",
            dir_s,
        ])
        .unwrap();
        // Flip one byte in the newest snapshot.
        let store = StateStore::create(&dir).unwrap();
        let (_, newest) = store.list_snapshots().unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        let e = run_s(&["fsck", dir_s]).unwrap_err();
        assert!(e.0.contains("corrupt"), "{}", e.0);
        assert!(e.0.contains("CORRUPT"), "{}", e.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_output() {
        let a = run_s(&["simulate", "--scale", "tiny", "--seed", "5"]).unwrap();
        let b = run_s(&["simulate", "--scale", "tiny", "--seed", "5"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threads_flag_does_not_change_output() {
        let base = [
            "inject",
            "--scale",
            "tiny",
            "--target",
            "cloud:0",
            "--ms",
            "120",
            "--at-hour",
            "26",
            "--hours",
            "1",
        ];
        let with_threads = |n: &str| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--threads", n]);
            run_s(&argv).unwrap()
        };
        let one = with_threads("1");
        assert!(one.contains("blame fractions"), "{one}");
        assert_eq!(one, with_threads("4"), "sharded run must match legacy");
    }
}
