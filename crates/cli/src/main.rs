//! `blameit` binary entry point: parse argv, dispatch, print.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match blameit_cli::run(&argv) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
