//! # blameit-cli — command-line front end
//!
//! The `blameit` binary exposes the reproduction to a terminal user:
//!
//! ```text
//! blameit topo     [--scale S] [--seed N]                 # topology inventory
//! blameit simulate [--scale S] [--seed N] [--days D]      # telemetry summary
//! blameit analyze  [--scale S] [--seed N] [--days D] [--warmup W]
//!                                                         # run the engine, print alerts
//! blameit inject   --target cloud:<loc>|middle:<asn>|client:<asn>
//!                  [--ms X] [--at-hour H] [--hours D] …   # incident investigation
//! blameit probe    --loc <n> [--p24 A.B.C.0/24] [--at-secs T]
//!                                                         # one simulated traceroute
//! blameit analyze  --state-dir DIR [--resume 1]           # durable run / crash recovery
//! blameit fsck     <dir>                                  # validate a state directory
//! ```
//!
//! Every command is deterministic in `--seed`. The library half of the
//! crate holds the command implementations so they are unit-testable;
//! `main.rs` only dispatches.

pub mod commands;

pub use commands::{run, CliError};
