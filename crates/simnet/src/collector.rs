//! RTT collector streams and dataset summaries.
//!
//! Mirrors the production pipeline of §6.1: cloud locations emit RTT
//! streams that are aggregated centrally. [`QuartetStream`] walks a
//! time range bucket by bucket, yielding each bucket's quartets — the
//! input BlameIt's periodic analysis job consumes. [`DatasetSummary`]
//! produces Table-2-style corpus statistics.

use crate::measure::{QuartetObs, RttRecord};
use crate::time::{TimeBucket, TimeRange};
use crate::world::World;
use blameit_topology::rng::DetRng;
use blameit_topology::CloudLocId;
use std::collections::HashSet;

/// Key domain separating shard RNG streams from every other simulator
/// stream.
const SHARD_STREAM_KEY: u64 = 0x5AAD;

/// A deterministic RNG stream for one shard of one bucket's analysis.
///
/// Keyed on `(world seed, bucket, shard index)` — never on thread
/// identity or scheduling order — so a consumer that fans a bucket out
/// over N workers draws exactly the same randomness per shard no matter
/// how many OS threads back the pool or how they interleave.
pub fn shard_rng(world: &World, bucket: TimeBucket, shard: usize) -> DetRng {
    DetRng::from_keys(
        world.config().seed,
        &[SHARD_STREAM_KEY, bucket.0 as u64, shard as u64],
    )
}

/// One [`shard_rng`] stream per shard, `0..nshards`.
pub fn shard_rngs(world: &World, bucket: TimeBucket, nshards: usize) -> Vec<DetRng> {
    (0..nshards).map(|s| shard_rng(world, bucket, s)).collect()
}

/// Partitions a bucket's quartets into at most `nshards` shards keyed
/// by cloud location: every quartet of a location lands on the same
/// shard (location-level aggregates never straddle shards), locations
/// spread round-robin in sorted order, and quartets keep their input
/// order within a shard. Purely a function of the quartet list, so the
/// partition is identical across runs and thread counts.
pub fn partition_quartets(quartets: &[QuartetObs], nshards: usize) -> Vec<Vec<QuartetObs>> {
    let mut locs: Vec<CloudLocId> = quartets.iter().map(|q| q.loc).collect();
    locs.sort_unstable();
    locs.dedup();
    let n = nshards.clamp(1, locs.len().max(1));
    let mut shards: Vec<Vec<QuartetObs>> = vec![Vec::new(); n];
    for q in quartets {
        let slot = locs.binary_search(&q.loc).expect("loc collected above") % n;
        shards[slot].push(*q);
    }
    shards
}

/// Streaming iterator over the quartets of consecutive buckets.
///
/// Memory stays bounded by one bucket's worth of quartets; a month-long
/// range never materializes at once.
pub struct QuartetStream<'w> {
    world: &'w World,
    buckets: Box<dyn Iterator<Item = TimeBucket> + 'w>,
}

impl<'w> QuartetStream<'w> {
    /// Streams all buckets of `range`.
    pub fn new(world: &'w World, range: TimeRange) -> Self {
        QuartetStream {
            world,
            buckets: Box::new(range.buckets()),
        }
    }
}

impl Iterator for QuartetStream<'_> {
    type Item = (TimeBucket, Vec<QuartetObs>);

    fn next(&mut self) -> Option<Self::Item> {
        let b = self.buckets.next()?;
        let mut span = blameit_obs::span!("blameit::collector", "quartet_bucket", bucket = b.0);
        let quartets = self.world.quartets_in(b);
        span.record("quartets", quartets.len());
        Some((b, quartets))
    }
}

/// Per-location RTT record stream — the paper's "RTT Collector" at one
/// edge site (Fig. 7): every TCP-handshake RTT the location records,
/// bucket by bucket, sample level. Heavier than [`QuartetStream`]'s
/// pre-aggregated fast path; use it when individual samples matter
/// (e.g. the §2.1 split-half KS validation).
pub struct LocationRecordStream<'w> {
    world: &'w World,
    loc: CloudLocId,
    buckets: Box<dyn Iterator<Item = TimeBucket> + 'w>,
}

impl<'w> LocationRecordStream<'w> {
    /// Streams every record the location collects over `range`.
    pub fn new(world: &'w World, loc: CloudLocId, range: TimeRange) -> Self {
        LocationRecordStream {
            world,
            loc,
            buckets: Box::new(range.buckets()),
        }
    }
}

impl Iterator for LocationRecordStream<'_> {
    type Item = (TimeBucket, Vec<RttRecord>);

    fn next(&mut self) -> Option<Self::Item> {
        let b = self.buckets.next()?;
        let mut records = Vec::new();
        for c in &self.world.topology().clients {
            if c.primary_loc == self.loc || c.secondary_loc == Some(self.loc) {
                records.extend(self.world.rtt_records(self.loc, c, b));
            }
        }
        records.sort_by_key(|r| (r.at, r.p24));
        Some((b, records))
    }
}

/// Corpus statistics in the shape of the paper's Table 2.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DatasetSummary {
    /// Total RTT measurements (sum of quartet sample counts).
    pub rtt_measurements: u64,
    /// Distinct client /24s observed.
    pub client_p24s: usize,
    /// Distinct BGP-announced prefixes observed.
    pub bgp_prefixes: usize,
    /// Distinct client ASes observed.
    pub client_ases: usize,
    /// Distinct client metros observed.
    pub client_metros: usize,
    /// Distinct middle BGP paths traversed.
    pub bgp_paths: usize,
    /// Cloud locations serving traffic.
    pub cloud_locations: usize,
    /// Quartets observed.
    pub quartets: u64,
    /// Buckets covered.
    pub buckets: u32,
}

impl DatasetSummary {
    /// Scans `range` and accumulates the summary. This walks every
    /// bucket; use short ranges or sampled summaries for large worlds.
    pub fn collect(world: &World, range: TimeRange) -> DatasetSummary {
        let _span = blameit_obs::span!(
            "blameit::collector",
            "dataset_summary",
            buckets = range.num_buckets(),
        );
        let mut s = DatasetSummary::default();
        let mut p24s = HashSet::new();
        let mut prefixes = HashSet::new();
        let mut ases = HashSet::new();
        let mut metros = HashSet::new();
        let mut paths = HashSet::new();
        let mut locs = HashSet::new();
        for (_, quartets) in QuartetStream::new(world, range) {
            s.buckets += 1;
            for q in quartets {
                s.quartets += 1;
                s.rtt_measurements += q.n as u64;
                let c = world.topology().client(q.p24).expect("known client");
                p24s.insert(q.p24);
                prefixes.insert(world.topology().announced_prefix(c).prefix);
                ases.insert(c.origin);
                metros.insert(c.metro);
                locs.insert(q.loc);
                let route = world.route_at(q.loc, c, q.bucket.mid());
                paths.insert(route.path_id);
            }
        }
        s.client_p24s = p24s.len();
        s.bgp_prefixes = prefixes.len();
        s.client_ases = ases.len();
        s.client_metros = metros.len();
        s.bgp_paths = paths.len();
        s.cloud_locations = locs.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn stream_covers_range() {
        let w = World::new(WorldConfig::tiny(1, 3));
        let r = TimeRange::new(crate::time::SimTime(0), crate::time::SimTime(3 * 300));
        let chunks: Vec<_> = QuartetStream::new(&w, r).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].0, TimeBucket(0));
        assert_eq!(chunks[2].0, TimeBucket(2));
    }

    #[test]
    fn summary_counts_consistent() {
        let w = World::new(WorldConfig::tiny(1, 5));
        // Two hours of data.
        let r = TimeRange::new(crate::time::SimTime(0), crate::time::SimTime(2 * 3600));
        let s = DatasetSummary::collect(&w, r);
        assert_eq!(s.buckets, 24);
        assert!(s.quartets > 0);
        assert!(
            s.rtt_measurements >= s.quartets,
            "each quartet has ≥1 sample"
        );
        assert!(s.client_p24s > 0);
        assert!(s.client_p24s <= w.topology().clients.len());
        assert!(s.bgp_prefixes <= w.topology().prefixes.len());
        assert!(s.client_metros <= w.topology().metros.len());
        assert!(s.cloud_locations <= w.topology().cloud_locations.len());
        assert!(s.bgp_paths > 0);
    }

    #[test]
    fn location_stream_matches_quartets() {
        let w = World::new(WorldConfig::tiny(1, 21));
        let loc = w.topology().cloud_locations[0].id;
        let r = TimeRange::new(
            crate::time::SimTime(150 * 300),
            crate::time::SimTime(152 * 300),
        );
        for (bucket, records) in LocationRecordStream::new(&w, loc, r) {
            // Record counts agree with the quartet fast path.
            let quartet_total: u32 = w
                .quartets_in(bucket)
                .iter()
                .filter(|q| q.loc == loc)
                .map(|q| q.n)
                .sum();
            assert_eq!(records.len() as u32, quartet_total, "{bucket}");
            // All records belong to this location and bucket.
            for rec in &records {
                assert_eq!(rec.loc, loc);
                assert_eq!(rec.at.bucket(), bucket);
            }
            // Sorted by time.
            for w2 in records.windows(2) {
                assert!(w2[0].at <= w2[1].at);
            }
        }
    }

    #[test]
    fn shard_rngs_deterministic_and_distinct() {
        let w = World::new(WorldConfig::tiny(1, 13));
        let b = TimeBucket(42);
        let draw = |mut r: DetRng| -> Vec<u64> { (0..4).map(|_| r.next_u64()).collect() };
        // Same (world, bucket, shard) → same stream, regardless of how
        // many shards were requested alongside it.
        let a = shard_rngs(&w, b, 4);
        let c = shard_rngs(&w, b, 8);
        for (i, rng) in a.into_iter().enumerate() {
            assert_eq!(draw(rng), draw(c[i].clone()), "shard {i}");
        }
        // Different shard / bucket / seed → different streams.
        let base = draw(shard_rng(&w, b, 0));
        assert_ne!(base, draw(shard_rng(&w, b, 1)));
        assert_ne!(base, draw(shard_rng(&w, TimeBucket(43), 0)));
        let w2 = World::new(WorldConfig::tiny(1, 14));
        assert_ne!(base, draw(shard_rng(&w2, b, 0)));
    }

    #[test]
    fn partition_keeps_locations_whole_and_order_stable() {
        let w = World::new(WorldConfig::tiny(2, 7));
        let quartets = w.quartets_in(TimeBucket(150));
        assert!(!quartets.is_empty());
        for nshards in [1, 2, 4, 64] {
            let shards = partition_quartets(&quartets, nshards);
            // Nothing lost, nothing duplicated.
            let total: usize = shards.iter().map(Vec::len).sum();
            assert_eq!(total, quartets.len(), "nshards={nshards}");
            // A location appears on exactly one shard.
            let mut seen = HashSet::new();
            for shard in &shards {
                let locs: HashSet<_> = shard.iter().map(|q| q.loc).collect();
                for loc in locs {
                    assert!(seen.insert(loc), "loc {loc:?} straddles shards");
                }
            }
            // Within a shard, input order is preserved.
            for shard in &shards {
                let mut cursor = 0;
                for q in shard {
                    let pos = quartets[cursor..]
                        .iter()
                        .position(|o| o == q)
                        .expect("shard item comes from the input");
                    cursor += pos + 1;
                }
            }
        }
        // Requesting more shards than locations degrades gracefully.
        let locs: HashSet<_> = quartets.iter().map(|q| q.loc).collect();
        assert!(partition_quartets(&quartets, 1000).len() <= locs.len());
    }

    #[test]
    fn summary_deterministic() {
        let w = World::new(WorldConfig::tiny(1, 8));
        let r = TimeRange::new(crate::time::SimTime(0), crate::time::SimTime(3600));
        assert_eq!(
            DatasetSummary::collect(&w, r),
            DatasetSummary::collect(&w, r)
        );
    }
}
