//! Simulation time.
//!
//! BlameIt's unit of temporal aggregation is the **5-minute bucket**
//! (§2.1: quartets are keyed by 5-minute windows; incident persistence
//! is counted in consecutive 5-minute buckets, §2.3). [`SimTime`] is a
//! second count from the simulation epoch; [`TimeBucket`] is the
//! 5-minute bucket containing it. The epoch is defined to fall on a
//! Monday at 00:00 UTC so weekday/weekend logic is deterministic.

use std::fmt;
use std::ops::{Add, Sub};

/// Seconds per 5-minute aggregation bucket.
pub const BUCKET_SECS: u64 = 300;
/// Buckets per day.
pub const BUCKETS_PER_DAY: u32 = (86_400 / BUCKET_SECS) as u32;
/// Buckets per hour.
pub const BUCKETS_PER_HOUR: u32 = (3_600 / BUCKET_SECS) as u32;

/// An instant: whole seconds since the simulation epoch (a Monday,
/// 00:00 UTC).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole days + seconds within the day.
    pub fn from_days(days: u64) -> SimTime {
        SimTime(days * 86_400)
    }

    /// Builds from hours since the epoch.
    pub fn from_hours(hours: u64) -> SimTime {
        SimTime(hours * 3_600)
    }

    /// Seconds since the epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// The 5-minute bucket containing this instant.
    pub fn bucket(self) -> TimeBucket {
        TimeBucket((self.0 / BUCKET_SECS) as u32)
    }

    /// Day number since the epoch (day 0 is a Monday).
    pub fn day(self) -> u32 {
        (self.0 / 86_400) as u32
    }

    /// UTC hour of day, 0–23.
    pub fn hour_utc(self) -> u32 {
        ((self.0 % 86_400) / 3_600) as u32
    }

    /// Fractional UTC hour of day, `[0, 24)`.
    pub fn hour_utc_f(self) -> f64 {
        (self.0 % 86_400) as f64 / 3_600.0
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(self) -> u32 {
        self.day() % 7
    }

    /// True on Saturday/Sunday.
    pub fn is_weekend(self) -> bool {
        self.weekday() >= 5
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl Sub<u64> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_sub(rhs))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            self.hour_utc(),
            (self.0 % 3_600) / 60,
            self.0 % 60
        )
    }
}

/// A 5-minute aggregation bucket (index since the epoch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TimeBucket(pub u32);

impl TimeBucket {
    /// Start instant of the bucket.
    pub fn start(self) -> SimTime {
        SimTime(self.0 as u64 * BUCKET_SECS)
    }

    /// Midpoint of the bucket (used as the representative instant when
    /// evaluating time-varying models for the whole bucket).
    pub fn mid(self) -> SimTime {
        SimTime(self.0 as u64 * BUCKET_SECS + BUCKET_SECS / 2)
    }

    /// Exclusive end instant.
    pub fn end(self) -> SimTime {
        SimTime((self.0 as u64 + 1) * BUCKET_SECS)
    }

    /// Day number of the bucket's start.
    pub fn day(self) -> u32 {
        self.0 / BUCKETS_PER_DAY
    }

    /// UTC hour of the bucket's start.
    pub fn hour_utc(self) -> u32 {
        (self.0 % BUCKETS_PER_DAY) / BUCKETS_PER_HOUR
    }

    /// Bucket index within its day, `0..288`.
    pub fn slot_in_day(self) -> u32 {
        self.0 % BUCKETS_PER_DAY
    }

    /// The bucket `n` buckets later.
    pub fn plus(self, n: u32) -> TimeBucket {
        TimeBucket(self.0 + n)
    }

    /// The bucket `n` buckets earlier (saturating at the epoch).
    pub fn minus(self, n: u32) -> TimeBucket {
        TimeBucket(self.0.saturating_sub(n))
    }

    /// The same slot on the previous day, if any.
    pub fn same_slot_prev_day(self) -> Option<TimeBucket> {
        self.0.checked_sub(BUCKETS_PER_DAY).map(TimeBucket)
    }
}

impl fmt::Debug for TimeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bucket{}({})", self.0, self.start())
    }
}

impl fmt::Display for TimeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bucket{}", self.0)
    }
}

/// A half-open time range `[start, end)` with bucket iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl TimeRange {
    /// Builds a range.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> TimeRange {
        assert!(end >= start, "range end before start");
        TimeRange { start, end }
    }

    /// The first `days` days from the epoch.
    pub fn days(days: u64) -> TimeRange {
        TimeRange::new(SimTime::ZERO, SimTime::from_days(days))
    }

    /// Duration in seconds.
    pub fn secs(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True if `t` falls inside the range.
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Iterates the buckets whose start lies in the range.
    pub fn buckets(self) -> impl Iterator<Item = TimeBucket> {
        let first = self.start.0.div_ceil(BUCKET_SECS) as u32;
        let last = (self.end.0 / BUCKET_SECS) as u32; // exclusive
        (first..last).map(TimeBucket)
    }

    /// Number of whole buckets in the range.
    pub fn num_buckets(self) -> u32 {
        let first = self.start.0.div_ceil(BUCKET_SECS) as u32;
        let last = (self.end.0 / BUCKET_SECS) as u32;
        last.saturating_sub(first)
    }
}

/// Local solar hour at a longitude: UTC hour shifted by ~1 h per 15°.
/// Good enough for diurnal modeling without a timezone database.
pub fn local_hour(t: SimTime, lon_deg: f64) -> f64 {
    let h = t.hour_utc_f() + lon_deg / 15.0;
    h.rem_euclid(24.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_arithmetic() {
        let t = SimTime(7 * 300 + 12);
        assert_eq!(t.bucket(), TimeBucket(7));
        assert_eq!(TimeBucket(7).start(), SimTime(2100));
        assert_eq!(TimeBucket(7).end(), SimTime(2400));
        assert!(TimeBucket(7).mid() > TimeBucket(7).start());
        assert!(TimeBucket(7).mid() < TimeBucket(7).end());
    }

    #[test]
    fn day_and_weekday() {
        assert_eq!(SimTime::ZERO.weekday(), 0); // Monday
        assert!(!SimTime::ZERO.is_weekend());
        assert_eq!(SimTime::from_days(5).weekday(), 5); // Saturday
        assert!(SimTime::from_days(5).is_weekend());
        assert!(SimTime::from_days(6).is_weekend());
        assert!(!SimTime::from_days(7).is_weekend());
        assert_eq!(SimTime::from_days(3).day(), 3);
    }

    #[test]
    fn hours() {
        let t = SimTime::from_hours(26); // day 1, 02:00
        assert_eq!(t.day(), 1);
        assert_eq!(t.hour_utc(), 2);
        assert!((t.hour_utc_f() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_slots() {
        assert_eq!(BUCKETS_PER_DAY, 288);
        assert_eq!(BUCKETS_PER_HOUR, 12);
        let b = TimeBucket(288 + 13);
        assert_eq!(b.day(), 1);
        assert_eq!(b.hour_utc(), 1);
        assert_eq!(b.slot_in_day(), 13);
        assert_eq!(b.same_slot_prev_day(), Some(TimeBucket(13)));
        assert_eq!(TimeBucket(10).same_slot_prev_day(), None);
    }

    #[test]
    fn bucket_plus_minus() {
        assert_eq!(TimeBucket(5).plus(3), TimeBucket(8));
        assert_eq!(TimeBucket(5).minus(3), TimeBucket(2));
        assert_eq!(TimeBucket(2).minus(5), TimeBucket(0));
    }

    #[test]
    fn range_buckets() {
        let r = TimeRange::days(1);
        assert_eq!(r.num_buckets(), 288);
        let v: Vec<_> = r.buckets().collect();
        assert_eq!(v.len(), 288);
        assert_eq!(v[0], TimeBucket(0));
        assert_eq!(v[287], TimeBucket(287));
        // Unaligned range rounds inward.
        let r2 = TimeRange::new(SimTime(10), SimTime(910));
        let v2: Vec<_> = r2.buckets().collect();
        assert_eq!(v2, vec![TimeBucket(1), TimeBucket(2)]);
    }

    #[test]
    fn range_contains() {
        let r = TimeRange::new(SimTime(100), SimTime(200));
        assert!(r.contains(SimTime(100)));
        assert!(r.contains(SimTime(199)));
        assert!(!r.contains(SimTime(200)));
        assert!(!r.contains(SimTime(99)));
        assert_eq!(r.secs(), 100);
    }

    #[test]
    #[should_panic(expected = "range end before start")]
    fn bad_range_panics() {
        TimeRange::new(SimTime(10), SimTime(5));
    }

    #[test]
    fn local_hour_wraps() {
        let noon_utc = SimTime::from_hours(12);
        assert!((local_hour(noon_utc, 0.0) - 12.0).abs() < 1e-9);
        // Tokyo (+139.7°E) is ~9.3 h ahead.
        let h = local_hour(noon_utc, 139.7);
        assert!((21.0..22.0).contains(&h), "{h}");
        // West coast (-122°) wraps below zero.
        let h2 = local_hour(noon_utc, -122.0);
        assert!((3.0..5.0).contains(&h2), "{h2}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(90_061).to_string(), "d1+01:01:01");
        assert_eq!(TimeBucket(3).to_string(), "bucket3");
    }
}
