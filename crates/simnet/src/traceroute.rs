//! Simulated traceroutes.
//!
//! BlameIt's active phase issues `tracert` from cloud edge servers to
//! client IPs and compares per-AS latency contributions before and
//! during an incident (§5.2). The simulator reproduces what such a
//! traceroute would observe over the currently-live route: one hop per
//! AS (the last responding router inside that AS), with the cumulative
//! RTT at that hop, fault inflations applied to every hop at or beyond
//! the faulty segment, per-hop noise, and occasionally unresponsive
//! hops (filtered ICMP).

use crate::fault::Segment;
use crate::time::SimTime;
use blameit_topology::{Asn, CloudLocId, MetroId, Prefix24};

/// One AS-level hop of a traceroute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracerouteHop {
    /// The AS this hop's router belongs to.
    pub asn: Asn,
    /// Metro of the responding router.
    pub metro: MetroId,
    /// Measured RTT to this hop in milliseconds; meaningless when
    /// `responded` is false.
    pub rtt_ms: f64,
    /// False if the router did not answer (ICMP filtered/rate-limited).
    pub responded: bool,
    /// Segment this hop belongs to (cloud AS, middle, or client AS).
    pub segment: Segment,
}

/// A completed traceroute from a cloud location toward a client /24.
#[derive(Clone, Debug, PartialEq)]
pub struct Traceroute {
    /// Probing location.
    pub loc: CloudLocId,
    /// Target client block.
    pub p24: Prefix24,
    /// When the probe ran.
    pub at: SimTime,
    /// AS-level hops, cloud first, client last.
    pub hops: Vec<TracerouteHop>,
}

impl Traceroute {
    /// Per-AS latency *contributions*: for each responding hop, its RTT
    /// minus the RTT of the previous responding hop (the first hop
    /// contributes its full RTT). This is exactly the quantity the
    /// paper differences against the background baseline to find the
    /// culprit AS (§5.2's example: m1's contribution rose from
    /// (6−4)=2 ms to (60−4)=56 ms).
    pub fn as_contributions(&self) -> Vec<(Asn, f64)> {
        let mut out = Vec::with_capacity(self.hops.len());
        let mut prev = 0.0;
        for h in &self.hops {
            if !h.responded {
                continue;
            }
            out.push((h.asn, h.rtt_ms - prev));
            prev = h.rtt_ms;
        }
        out
    }

    /// RTT at the final responding hop (end-to-end), if any.
    pub fn end_to_end_ms(&self) -> Option<f64> {
        self.hops
            .iter()
            .rev()
            .find(|h| h.responded)
            .map(|h| h.rtt_ms)
    }

    /// The ordered list of ASes observed (responding hops only).
    pub fn as_path(&self) -> Vec<Asn> {
        self.hops
            .iter()
            .filter(|h| h.responded)
            .map(|h| h.asn)
            .collect()
    }
}

/// Traceroute observation noise parameters.
#[derive(Clone, Copy, Debug)]
pub struct TracerouteNoise {
    /// Per-hop additive RTT noise σ (ms).
    pub hop_sigma_ms: f64,
    /// Probability a middle hop does not respond.
    pub non_response_prob: f64,
}

impl Default for TracerouteNoise {
    fn default() -> Self {
        TracerouteNoise {
            hop_sigma_ms: 0.4,
            non_response_prob: 0.03,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(hops: Vec<(u32, f64, bool)>) -> Traceroute {
        Traceroute {
            loc: CloudLocId(0),
            p24: Prefix24::from_block(1),
            at: SimTime(0),
            hops: hops
                .into_iter()
                .map(|(a, rtt, ok)| TracerouteHop {
                    asn: Asn(a),
                    metro: MetroId(0),
                    rtt_ms: rtt,
                    responded: ok,
                    segment: Segment::Middle,
                })
                .collect(),
        }
    }

    #[test]
    fn contributions_are_hop_deltas() {
        // The paper's India example: 4, 6, 8, 9 ms hops.
        let t = tr(vec![
            (1, 4.0, true),
            (2, 6.0, true),
            (3, 8.0, true),
            (4, 9.0, true),
        ]);
        let c = t.as_contributions();
        assert_eq!(c.len(), 4);
        assert!((c[0].1 - 4.0).abs() < 1e-9);
        assert!((c[1].1 - 2.0).abs() < 1e-9);
        assert!((c[2].1 - 2.0).abs() < 1e-9);
        assert!((c[3].1 - 1.0).abs() < 1e-9);
        assert_eq!(t.end_to_end_ms(), Some(9.0));
    }

    #[test]
    fn unresponsive_hop_folds_into_next() {
        let t = tr(vec![(1, 4.0, true), (2, 0.0, false), (3, 8.0, true)]);
        let c = t.as_contributions();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].0, Asn(1));
        // AS3's contribution absorbs the silent AS2.
        assert!((c[1].1 - 4.0).abs() < 1e-9);
        assert_eq!(t.as_path(), vec![Asn(1), Asn(3)]);
    }

    #[test]
    fn all_unresponsive_yields_nothing() {
        let t = tr(vec![(1, 0.0, false), (2, 0.0, false)]);
        assert!(t.as_contributions().is_empty());
        assert_eq!(t.end_to_end_ms(), None);
        assert!(t.as_path().is_empty());
    }
}
