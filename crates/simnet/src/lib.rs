//! # blameit-simnet — deterministic WAN telemetry simulator
//!
//! The telemetry substrate for the BlameIt reproduction (Jin et al.,
//! SIGCOMM 2019). The paper consumes Azure production data: trillions
//! of TCP-handshake RTTs, traceroutes from edge routers, and an IBGP
//! churn feed. This crate synthesizes all three over the synthetic
//! Internet of [`blameit_topology`], with **explicit ground truth**:
//! every latency degradation traces back to a scheduled [`fault::Fault`],
//! so localization accuracy is exactly measurable.
//!
//! Modules:
//! * [`time`] — seconds-since-epoch instants and the 5-minute buckets
//!   BlameIt aggregates over.
//! * [`activity`] — diurnal, class-dependent client activity (drives
//!   Fig. 3's night-vs-day effects and §2.4's impact skew).
//! * [`latency`] — per-segment RTT model (cloud / middle / client) with
//!   noise and evening congestion.
//! * [`fault`] — fault targets, long-tailed durations (Fig. 4a), and
//!   schedule generation with region-dependent middle-fault rates.
//! * [`churn`] — BGP route flips per (location, prefix), calibrated to
//!   the paper's two-thirds-stable-per-day observation (§5.4).
//! * [`chaos`] — seeded measurement-plane fault plans (probe timeouts,
//!   truncated traceroutes, late/duplicated churn, dropped batches) for
//!   the chaos test suite and the `ChaosBackend` decorator.
//! * [`crash`] — seeded process-kill plans for the persistence layer's
//!   kill-point crash harness (torn journal records, half-written
//!   snapshots).
//! * [`measure`] — RTT records and quartet observations.
//! * [`surge`] — seeded ingest-surge plans that replay a world at a
//!   multiple of its natural volume, for daemon overload testing.
//! * [`traceroute`] — simulated per-AS-hop traceroutes (§5.2).
//! * [`collector`] — bucket-by-bucket quartet streams and Table-2-style
//!   corpus summaries.
//! * [`world`] — the [`world::World`] facade tying it all together,
//!   including ground-truth culprit queries.
//!
//! Determinism: all randomness is counter-based
//! ([`blameit_topology::rng::DetRng`], re-exported as [`rng`]), keyed
//! by `(seed, entity, time)`. Any quartet, traceroute, or fault can be
//! re-derived in isolation, identically, on any platform.

pub mod activity;
pub mod chaos;
pub mod churn;
pub mod collector;
pub mod crash;
pub mod fault;
pub mod latency;
pub mod measure;
pub mod surge;
pub mod time;
pub mod traceroute;
pub mod world;

/// Re-export of the deterministic RNG used throughout the simulator.
pub use blameit_topology::rng;

pub use activity::ActivityModel;
pub use chaos::{ChurnFault, FaultPlan, ProbeFault};
pub use churn::ChurnModel;
pub use collector::{
    partition_quartets, shard_rng, shard_rngs, DatasetSummary, LocationRecordStream, QuartetStream,
};
pub use crash::{CrashPlan, CrashPoint};
pub use fault::{Fault, FaultId, FaultRates, FaultSchedule, FaultTarget, Segment};
pub use latency::{LatencyModel, SegRtt};
pub use measure::{QuartetObs, RttRecord};
pub use surge::{SurgePlan, SurgeWindow};
pub use time::{SimTime, TimeBucket, TimeRange, BUCKETS_PER_DAY, BUCKET_SECS};
pub use traceroute::{Traceroute, TracerouteHop, TracerouteNoise};
pub use world::{Culprit, GroundTruth, World, WorldConfig};
