//! Measurement records: what the cloud's telemetry pipeline sees.
//!
//! Azure records the TCP handshake RTT of every client connection at
//! the serving edge (§2.1). [`RttRecord`] is one such measurement;
//! [`QuartetObs`] is the pre-aggregated form (the simulator's fast
//! path) carrying exactly the statistics BlameIt's Algorithm 1
//! consumes: the sample count and the mean RTT of a ⟨/24, location,
//! device class, 5-minute bucket⟩ quartet.

use crate::time::{SimTime, TimeBucket};
use blameit_topology::{CloudLocId, Prefix24};

/// One TCP-handshake RTT measurement recorded at a cloud location.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RttRecord {
    /// Serving cloud location.
    pub loc: CloudLocId,
    /// Client /24.
    pub p24: Prefix24,
    /// True for cellular clients.
    pub mobile: bool,
    /// Connection time.
    pub at: SimTime,
    /// Handshake RTT in milliseconds.
    pub rtt_ms: f64,
}

/// Aggregated measurements for one quartet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuartetObs {
    /// Serving cloud location.
    pub loc: CloudLocId,
    /// Client /24.
    pub p24: Prefix24,
    /// True for cellular clients.
    pub mobile: bool,
    /// The 5-minute bucket.
    pub bucket: TimeBucket,
    /// Number of RTT samples aggregated.
    pub n: u32,
    /// Mean RTT across the samples, in milliseconds.
    pub mean_rtt_ms: f64,
}

impl QuartetObs {
    /// Aggregates raw records into a quartet observation. Returns
    /// `None` for an empty slice. All records must share the same
    /// (loc, p24, mobile) key and fall in the same bucket.
    ///
    /// # Panics
    /// Panics (in debug builds) if the records disagree on the key.
    pub fn from_records(records: &[RttRecord]) -> Option<QuartetObs> {
        let first = records.first()?;
        let bucket = first.at.bucket();
        debug_assert!(records.iter().all(|r| r.loc == first.loc
            && r.p24 == first.p24
            && r.mobile == first.mobile
            && r.at.bucket() == bucket));
        let sum: f64 = records.iter().map(|r| r.rtt_ms).sum();
        Some(QuartetObs {
            loc: first.loc,
            p24: first.p24,
            mobile: first.mobile,
            bucket,
            n: records.len() as u32,
            mean_rtt_ms: sum / records.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rtt: f64, secs: u64) -> RttRecord {
        RttRecord {
            loc: CloudLocId(1),
            p24: Prefix24::from_block(10),
            mobile: false,
            at: SimTime(secs),
            rtt_ms: rtt,
        }
    }

    #[test]
    fn aggregate_mean() {
        let recs = vec![rec(10.0, 5), rec(20.0, 100), rec(30.0, 299)];
        let q = QuartetObs::from_records(&recs).unwrap();
        assert_eq!(q.n, 3);
        assert!((q.mean_rtt_ms - 20.0).abs() < 1e-12);
        assert_eq!(q.bucket, TimeBucket(0));
        assert_eq!(q.loc, CloudLocId(1));
    }

    #[test]
    fn empty_gives_none() {
        assert!(QuartetObs::from_records(&[]).is_none());
    }
}
