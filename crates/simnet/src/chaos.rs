//! Measurement-plane fault plans.
//!
//! The [`fault`](crate::fault) module degrades the *network* — the
//! ground truth BlameIt is trying to localize. This module degrades the
//! *measurement plane itself*: traceroutes that time out or come back
//! truncated, IBGP churn notifications that arrive late or twice,
//! quartet batches the collector loses, route-table lookups that miss.
//! Diagnosis systems must keep working when their own telemetry
//! misbehaves, and a [`FaultPlan`] is the seeded, deterministic
//! schedule of exactly that misbehavior.
//!
//! Every decision is a pure function of `(plan seed, fault kind,
//! entity ids, time)` via [`DetRng::from_keys`] — never of call order
//! or thread identity — so a chaos run is byte-reproducible at any
//! thread count, which is what lets the engine's determinism contract
//! extend to chaos runs (`tests/chaos_determinism.rs`).

use crate::time::{SimTime, TimeBucket};
use blameit_topology::bgp::BgpChurnEvent;
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, Prefix24};

// Domain-separation tags: each fault family draws from its own keyed
// stream so, e.g., raising the probe-timeout rate never perturbs which
// churn events get delayed.
const TAG_PROBE: u64 = 0xC4A0_0001;
const TAG_BATCH: u64 = 0xC4A0_0002;
const TAG_ROUTE: u64 = 0xC4A0_0003;
const TAG_CHURN: u64 = 0xC4A0_0004;

/// What happens to one traceroute issued at a given `(loc, p24, at)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeFault {
    /// Delivered untouched.
    None,
    /// The probe is lost: the caller sees no answer at all.
    Timeout,
    /// Only a prefix of the hops comes back (ICMP filtered past some
    /// point); `keep_fraction` of the hop list survives, at least one
    /// hop and never the full path.
    Truncate {
        /// Fraction of hops retained, in (0, 1).
        keep_fraction: f64,
    },
    /// The answer arrives, but late: its timestamp is pushed forward.
    Slow {
        /// Extra seconds before the result is usable.
        by_secs: u64,
    },
}

/// What happens to one IBGP churn notification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnFault {
    /// Delivered once, on time.
    Deliver,
    /// Delivered twice (session bounce replays the update).
    Duplicate,
    /// Delivered once, this many seconds late.
    Delay(u64),
}

/// A seeded schedule of measurement-plane faults.
///
/// All rates are probabilities in `[0, 1]`, applied independently per
/// entity; fields are public so tests can dial one knob in isolation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision (independent of the world seed).
    pub seed: u64,
    /// Probability a traceroute times out entirely.
    pub probe_timeout: f64,
    /// Probability a traceroute comes back truncated.
    pub probe_truncate: f64,
    /// Probability a traceroute result is delayed.
    pub probe_slow: f64,
    /// Delay applied to slow probes, seconds.
    pub slow_by_secs: u64,
    /// Probability a whole quartet bucket is dropped by the collector.
    pub drop_quartet_batch: f64,
    /// Probability a route-table lookup misses.
    pub drop_route_info: f64,
    /// Probability a churn event is delivered twice.
    pub churn_duplicate: f64,
    /// Probability a churn event is delivered late.
    pub churn_delay: f64,
    /// Lateness applied to delayed churn events, seconds.
    pub churn_delay_secs: u64,
}

impl FaultPlan {
    /// The all-zero plan: a `ChaosBackend` carrying it is transparent.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            probe_timeout: 0.0,
            probe_truncate: 0.0,
            probe_slow: 0.0,
            slow_by_secs: 0,
            drop_quartet_batch: 0.0,
            drop_route_info: 0.0,
            churn_duplicate: 0.0,
            churn_delay: 0.0,
            churn_delay_secs: 0,
        }
    }

    /// Mild degradation: the kind of background loss a healthy
    /// production measurement plane lives with.
    pub fn mild(seed: u64) -> Self {
        FaultPlan {
            probe_timeout: 0.10,
            probe_truncate: 0.05,
            probe_slow: 0.05,
            slow_by_secs: 20,
            drop_quartet_batch: 0.02,
            drop_route_info: 0.02,
            churn_duplicate: 0.05,
            churn_delay: 0.10,
            churn_delay_secs: 600,
            ..FaultPlan::none(seed)
        }
    }

    /// Heavy degradation: a measurement plane having a bad day. The
    /// 30% probe-timeout rate is the issue's acceptance bound.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            probe_timeout: 0.30,
            probe_truncate: 0.15,
            probe_slow: 0.10,
            slow_by_secs: 120,
            drop_quartet_batch: 0.10,
            drop_route_info: 0.10,
            churn_duplicate: 0.15,
            churn_delay: 0.30,
            churn_delay_secs: 1_800,
            ..FaultPlan::none(seed)
        }
    }

    /// Probe-plane-only storm: half the traceroutes die, a quarter of
    /// the rest truncate, but passive telemetry is intact.
    pub fn probe_storm(seed: u64) -> Self {
        FaultPlan {
            probe_timeout: 0.50,
            probe_truncate: 0.25,
            ..FaultPlan::none(seed)
        }
    }

    /// A plan that only times out probes, at the given rate — the knob
    /// the `chaos` bench sweeps.
    pub fn probe_timeouts(rate: f64, seed: u64) -> Self {
        FaultPlan {
            probe_timeout: rate,
            ..FaultPlan::none(seed)
        }
    }

    /// Parses a named plan (`none`, `mild`, `heavy`, `probe-storm`).
    pub fn parse(name: &str, seed: u64) -> Result<FaultPlan, String> {
        match name {
            "none" => Ok(FaultPlan::none(seed)),
            "mild" => Ok(FaultPlan::mild(seed)),
            "heavy" => Ok(FaultPlan::heavy(seed)),
            "probe-storm" => Ok(FaultPlan::probe_storm(seed)),
            other => Err(format!(
                "unknown fault plan '{other}' (expected none|mild|heavy|probe-storm)"
            )),
        }
    }

    /// True if every rate is zero (the plan injects nothing).
    pub fn is_noop(&self) -> bool {
        self.probe_timeout == 0.0
            && self.probe_truncate == 0.0
            && self.probe_slow == 0.0
            && self.drop_quartet_batch == 0.0
            && self.drop_route_info == 0.0
            && self.churn_duplicate == 0.0
            && self.churn_delay == 0.0
    }

    /// True if the plan touches the churn feed at all.
    pub fn has_churn_faults(&self) -> bool {
        self.churn_duplicate > 0.0 || self.churn_delay > 0.0
    }

    /// Worst-case lateness of any churn event under this plan — how far
    /// back a consumer must widen its query window to see delayed
    /// events whose effective delivery time falls inside it.
    pub fn max_churn_delay_secs(&self) -> u64 {
        if self.churn_delay > 0.0 {
            self.churn_delay_secs
        } else {
            0
        }
    }

    /// The fate of a traceroute issued at `(loc, p24, at)`. Fault
    /// classes are checked in a fixed order (timeout, truncate, slow)
    /// from one keyed stream, so the decision is a pure function of
    /// the arguments.
    pub fn probe_fault(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> ProbeFault {
        let mut rng = DetRng::from_keys(
            self.seed,
            &[TAG_PROBE, loc.0 as u64, p24.block() as u64, at.secs()],
        );
        if rng.chance(self.probe_timeout) {
            return ProbeFault::Timeout;
        }
        if rng.chance(self.probe_truncate) {
            return ProbeFault::Truncate {
                keep_fraction: rng.range_f64(0.25, 0.75),
            };
        }
        if rng.chance(self.probe_slow) {
            return ProbeFault::Slow {
                by_secs: self.slow_by_secs,
            };
        }
        ProbeFault::None
    }

    /// Whether the collector loses this whole quartet bucket.
    pub fn drop_quartet_batch(&self, bucket: TimeBucket) -> bool {
        let mut rng = DetRng::from_keys(self.seed, &[TAG_BATCH, u64::from(bucket.0)]);
        rng.chance(self.drop_quartet_batch)
    }

    /// Whether the route-table lookup for `(loc, p24)` at `at` misses.
    pub fn drop_route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> bool {
        let mut rng = DetRng::from_keys(
            self.seed,
            &[TAG_ROUTE, loc.0 as u64, p24.block() as u64, at.secs()],
        );
        rng.chance(self.drop_route_info)
    }

    /// The fate of one churn notification. Keyed on the event's own
    /// identity, so the answer is the same no matter which query window
    /// surfaces it — the property that makes delayed events deliver
    /// exactly once across consecutive windows.
    pub fn churn_fault(&self, e: &BgpChurnEvent) -> ChurnFault {
        let mut rng = DetRng::from_keys(
            self.seed,
            &[
                TAG_CHURN,
                e.at_secs,
                e.loc.0 as u64,
                e.prefix.base() as u64,
                e.prefix.len() as u64,
            ],
        );
        if rng.chance(self.churn_duplicate) {
            return ChurnFault::Duplicate;
        }
        if rng.chance(self.churn_delay) {
            return ChurnFault::Delay(self.churn_delay_secs);
        }
        ChurnFault::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_args(i: u64) -> (CloudLocId, Prefix24, SimTime) {
        (
            CloudLocId((i % 5) as u16),
            Prefix24::from_block((1000 + i) as u32),
            SimTime(300 * i),
        )
    }

    #[test]
    fn decisions_are_deterministic_per_entity() {
        let plan = FaultPlan::heavy(7);
        for i in 0..200 {
            let (loc, p24, at) = probe_args(i);
            assert_eq!(
                plan.probe_fault(loc, p24, at),
                plan.probe_fault(loc, p24, at)
            );
            assert_eq!(
                plan.drop_quartet_batch(TimeBucket(i as u32)),
                plan.drop_quartet_batch(TimeBucket(i as u32))
            );
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::none(3);
        assert!(plan.is_noop());
        assert!(!plan.has_churn_faults());
        assert_eq!(plan.max_churn_delay_secs(), 0);
        for i in 0..200 {
            let (loc, p24, at) = probe_args(i);
            assert_eq!(plan.probe_fault(loc, p24, at), ProbeFault::None);
            assert!(!plan.drop_quartet_batch(TimeBucket(i as u32)));
            assert!(!plan.drop_route_info(loc, p24, at));
        }
    }

    #[test]
    fn unit_rates_always_fire() {
        let plan = FaultPlan {
            probe_timeout: 1.0,
            drop_quartet_batch: 1.0,
            drop_route_info: 1.0,
            ..FaultPlan::none(9)
        };
        assert!(!plan.is_noop());
        for i in 0..50 {
            let (loc, p24, at) = probe_args(i);
            assert_eq!(plan.probe_fault(loc, p24, at), ProbeFault::Timeout);
            assert!(plan.drop_quartet_batch(TimeBucket(i as u32)));
            assert!(plan.drop_route_info(loc, p24, at));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::probe_timeouts(0.3, 11);
        let n = 2_000;
        let hits = (0..n)
            .filter(|&i| {
                let (loc, p24, at) = probe_args(i);
                plan.probe_fault(loc, p24, at) == ProbeFault::Timeout
            })
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed timeout rate {rate}");
    }

    #[test]
    fn truncate_fraction_in_open_interval() {
        let plan = FaultPlan {
            probe_truncate: 1.0,
            ..FaultPlan::none(5)
        };
        for i in 0..100 {
            let (loc, p24, at) = probe_args(i);
            match plan.probe_fault(loc, p24, at) {
                ProbeFault::Truncate { keep_fraction } => {
                    assert!((0.25..0.75).contains(&keep_fraction));
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn churn_fate_keyed_on_event_identity() {
        use blameit_topology::{IpPrefix, PathId};
        let plan = FaultPlan::heavy(13);
        let mk = |at_secs: u64, base: u32| BgpChurnEvent {
            at_secs,
            loc: CloudLocId(1),
            prefix: IpPrefix::new(base, 22),
            old_path: PathId(0),
            new_path: PathId(1),
        };
        for i in 0..100u64 {
            let e = mk(i * 60, (i as u32) << 10);
            assert_eq!(plan.churn_fault(&e), plan.churn_fault(&e));
            // Path ids are *not* part of the key: the same flip seen
            // through different table snapshots gets the same fate.
            let mut e2 = e;
            e2.old_path = PathId(7);
            assert_eq!(plan.churn_fault(&e), plan.churn_fault(&e2));
        }
    }

    #[test]
    fn parse_named_plans() {
        assert!(FaultPlan::parse("none", 1).unwrap().is_noop());
        assert_eq!(FaultPlan::parse("mild", 2).unwrap(), FaultPlan::mild(2));
        assert_eq!(FaultPlan::parse("heavy", 3).unwrap(), FaultPlan::heavy(3));
        assert_eq!(
            FaultPlan::parse("probe-storm", 4).unwrap(),
            FaultPlan::probe_storm(4)
        );
        assert!(FaultPlan::parse("catastrophic", 5).is_err());
    }
}
