//! The per-segment latency model.
//!
//! A TCP handshake RTT decomposes into the paper's three segments
//! (§3.1): **cloud** (server + the cloud AS's own network), **middle**
//! (the BGP-path ASes), and **client** (the client ISP plus the last
//! mile). The model computes each component from the topology's route
//! geometry plus class-dependent last-mile delay, and adds a
//! time-varying evening-congestion term for home broadband — the
//! mechanism behind the paper's "nights are worse, and BlameIt blames
//! the client ISP at night" observation (§2.2).

use crate::time::{local_hour, SimTime};
use blameit_topology::bgp::RouteOption;
use blameit_topology::gen::ClientBlock;
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, Topology};

/// An RTT split into the three coarse segments (milliseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegRtt {
    /// Cloud segment: server processing + cloud AS network.
    pub cloud_ms: f64,
    /// Middle segment: all ASes between cloud and client AS.
    pub middle_ms: f64,
    /// Client segment: client AS + last mile.
    pub client_ms: f64,
}

impl SegRtt {
    /// Total RTT.
    pub fn total(&self) -> f64 {
        self.cloud_ms + self.middle_ms + self.client_ms
    }

    /// Component for one segment.
    pub fn get(&self, seg: crate::fault::Segment) -> f64 {
        match seg {
            crate::fault::Segment::Cloud => self.cloud_ms,
            crate::fault::Segment::Middle => self.middle_ms,
            crate::fault::Segment::Client => self.client_ms,
        }
    }
}

/// Tunable latency parameters.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Per-sample multiplicative log-normal noise σ.
    pub noise_sigma: f64,
    /// Probability a single sample is a heavy outlier (retransmission,
    /// scheduling hiccup).
    pub spike_prob: f64,
    /// Magnitude scale of a spike, in multiples of the baseline RTT.
    pub spike_scale: f64,
    /// Scale of home-broadband evening congestion (ms, multiplied by a
    /// per-(block, day) heavy-tailed severity).
    pub evening_congestion_ms: f64,
    /// Probability that a path carries a day-long internal reroute
    /// ("drift") inside one of its middle ASes on a given day.
    pub path_drift_prob: f64,
    /// Drift magnitude range (ms, added round-trip).
    pub path_drift_ms: (f64, f64),
    /// Seed for the model's deterministic per-block draws.
    pub seed: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            noise_sigma: 0.06,
            spike_prob: 0.008,
            spike_scale: 3.0,
            evening_congestion_ms: 7.0,
            path_drift_prob: 0.35,
            path_drift_ms: (4.0, 22.0),
            seed: 0x1A7E_11C9,
        }
    }
}

impl LatencyModel {
    /// Deterministic last-mile one-way-ish delay for a block (ms,
    /// already counted as its full round-trip contribution): broadband
    /// ≈ 4–14 ms, enterprise ≈ 1–6 ms, cellular ≈ 18–50 ms — cellular
    /// clients are why the paper's thresholds are device-type-specific
    /// (§2.1).
    pub fn last_mile_ms(&self, c: &ClientBlock) -> f64 {
        let mut rng = DetRng::from_keys(self.seed, &[0x1A57, c.p24.block() as u64]);
        if c.mobile {
            rng.range_f64(18.0, 50.0)
        } else if c.enterprise {
            rng.range_f64(1.0, 6.0)
        } else {
            rng.range_f64(4.0, 14.0)
        }
    }

    /// Evening-congestion addition to the client segment at instant
    /// `t` (0 outside evening hours; 0 for enterprise blocks). The
    /// severity is heavy-tailed per (block, day): most evenings are
    /// mildly worse, some are much worse — enough to push a fraction of
    /// home-ISP quartets past the badness threshold at night (Fig. 3).
    pub fn evening_congestion(&self, topo: &Topology, c: &ClientBlock, t: SimTime) -> f64 {
        if c.enterprise {
            return 0.0;
        }
        let lon = topo.metro(c.metro).location.lon;
        let lh = local_hour(t, lon);
        // Ramp 18→20h, full 20→23h, ramp down to 24h.
        let window = if (18.0..20.0).contains(&lh) {
            (lh - 18.0) / 2.0
        } else if (20.0..23.0).contains(&lh) {
            1.0
        } else if (23.0..24.0).contains(&lh) {
            24.0 - lh
        } else {
            0.0
        };
        if window == 0.0 {
            return 0.0;
        }
        let mut rng = DetRng::from_keys(self.seed, &[0xC016, c.p24.block() as u64, t.day() as u64]);
        // Only a subset of last miles actually congest on a given
        // evening; a universal bump would make *every* quartet of a
        // location cross its median at night, which would read as a
        // cloud-wide shift to Algorithm 1 (and does not match reality).
        if !rng.chance(0.25) {
            return 0.0;
        }
        let severity = rng.lognormal(0.3, 0.9); // heavy-tailed severity
        let scale = if c.mobile { 0.6 } else { 1.0 };
        self.evening_congestion_ms * severity * scale * window
    }

    /// Day-long internal reroute inside one middle AS of a route:
    /// real backbones shift traffic across their own links daily
    /// without any BGP event, which is what makes *stale* traceroute
    /// baselines decay (Fig. 13's accuracy-vs-frequency trade-off).
    /// Deterministic per (path, day); returns the drifted AS and the
    /// added round-trip milliseconds.
    pub fn path_drift(
        &self,
        route: &RouteOption,
        t: SimTime,
    ) -> Option<(blameit_topology::Asn, f64)> {
        if route.as_hops.len() <= 2 {
            return None; // no middle AS to drift
        }
        let mut rng = DetRng::from_keys(
            self.seed,
            &[0xD81F7, route.path_id.0 as u64, t.day() as u64],
        );
        if !rng.chance(self.path_drift_prob) {
            return None;
        }
        let middle = &route.as_hops[1..route.as_hops.len() - 1];
        let pick = middle[rng.index(middle.len())].asn;
        let ms = rng.range_f64(self.path_drift_ms.0, self.path_drift_ms.1);
        Some((pick, ms))
    }

    /// The fault-free segmented RTT for a (location, client) pair over
    /// a concrete route at instant `t`.
    pub fn baseline(
        &self,
        topo: &Topology,
        loc: CloudLocId,
        c: &ClientBlock,
        route: &RouteOption,
        t: SimTime,
    ) -> SegRtt {
        let cl = topo.cloud_location(loc);
        // First hop is the cloud AS: its cumulative one-way latency is
        // the cloud's network contribution on this path.
        let cloud_exit = route.as_hops.first().map_or(0.0, |h| h.cum_oneway_ms);
        let middle_oneway = route.middle_oneway_ms();
        let client_oneway = route.total_oneway_ms - cloud_exit - middle_oneway;
        let drift_ms = self.path_drift(route, t).map_or(0.0, |(_, ms)| ms);
        SegRtt {
            cloud_ms: cl.base_cloud_ms + 2.0 * cloud_exit,
            middle_ms: 2.0 * middle_oneway + drift_ms,
            client_ms: 2.0 * client_oneway
                + self.last_mile_ms(c)
                + self.evening_congestion(topo, c, t),
        }
    }

    /// Draws one RTT sample around a (possibly fault-inflated) mean.
    pub fn sample_rtt(&self, mean_ms: f64, rng: &mut DetRng) -> f64 {
        let mut v = mean_ms * rng.lognormal(0.0, self.noise_sigma);
        if rng.chance(self.spike_prob) {
            v += mean_ms * self.spike_scale * rng.f64();
        }
        v.max(0.1)
    }

    /// The mean of `n` samples, without drawing them individually: the
    /// sample mean of i.i.d. log-normal noise concentrates as
    /// `1 + N(0, σ/√n)`, and the spike term adds its expectation. Used
    /// by the fast quartet path; statistically consistent with
    /// averaging [`LatencyModel::sample_rtt`] draws.
    pub fn quartet_mean_rtt(&self, mean_ms: f64, n: u32, rng: &mut DetRng) -> f64 {
        assert!(n > 0, "quartet with zero samples");
        let noise = 1.0 + rng.normal() * self.noise_sigma / (n as f64).sqrt();
        let spike_mean = self.spike_prob * self.spike_scale * 0.5;
        (mean_ms * (noise + spike_mean)).max(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Segment;
    use blameit_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny(3))
    }

    #[test]
    fn segrtt_total_and_get() {
        let s = SegRtt {
            cloud_ms: 3.0,
            middle_ms: 10.0,
            client_ms: 7.0,
        };
        assert!((s.total() - 20.0).abs() < 1e-12);
        assert_eq!(s.get(Segment::Cloud), 3.0);
        assert_eq!(s.get(Segment::Middle), 10.0);
        assert_eq!(s.get(Segment::Client), 7.0);
    }

    #[test]
    fn last_mile_ranges_by_class() {
        let t = topo();
        let m = LatencyModel::default();
        for c in &t.clients {
            let lm = m.last_mile_ms(c);
            if c.mobile {
                assert!((18.0..50.0).contains(&lm), "mobile {lm}");
            } else if c.enterprise {
                assert!((1.0..6.0).contains(&lm), "enterprise {lm}");
            } else {
                assert!((4.0..14.0).contains(&lm), "home {lm}");
            }
            // Deterministic.
            assert_eq!(lm, m.last_mile_ms(c));
        }
    }

    #[test]
    fn baseline_positive_and_consistent_with_route() {
        let t = topo();
        let m = LatencyModel::default();
        for c in t.clients.iter().take(40) {
            let ro = t.routes_for(c.primary_loc, c);
            let seg = m.baseline(
                &t,
                c.primary_loc,
                c,
                &ro.options[0],
                SimTime::from_hours(10),
            );
            assert!(seg.cloud_ms > 0.0);
            assert!(seg.middle_ms >= 0.0);
            assert!(seg.client_ms > 0.0);
            // RTT must be at least twice the one-way route latency.
            assert!(seg.total() >= 2.0 * ro.options[0].total_oneway_ms - 1e-9);
        }
    }

    #[test]
    fn evening_congestion_only_in_evening() {
        let t = topo();
        let m = LatencyModel::default();
        let c = t
            .clients
            .iter()
            .find(|c| !c.enterprise && !c.mobile)
            .unwrap();
        let lon = t.metro(c.metro).location.lon;
        // Find a UTC time whose local hour is ~21 and one at ~10.
        let mut evening = None;
        let mut morning = None;
        for h in 0..24 {
            let tt = SimTime::from_hours(h);
            let lh = local_hour(tt, lon);
            if (20.5..22.5).contains(&lh) {
                evening = Some(tt);
            }
            if (9.5..11.5).contains(&lh) {
                morning = Some(tt);
            }
        }
        let (evening, morning) = (evening.unwrap(), morning.unwrap());
        // Congestion is gated per (block, day): some home block must
        // show it this evening, and nobody shows it mid-morning.
        let congested = t
            .clients
            .iter()
            .filter(|c| !c.enterprise && !c.mobile)
            .any(|c| m.evening_congestion(&t, c, evening) > 0.0);
        assert!(congested, "no block congested this evening");
        assert_eq!(m.evening_congestion(&t, c, morning), 0.0);
    }

    #[test]
    fn enterprise_has_no_evening_congestion() {
        let t = topo();
        let m = LatencyModel::default();
        if let Some(c) = t.clients.iter().find(|c| c.enterprise) {
            for h in 0..24 {
                assert_eq!(m.evening_congestion(&t, c, SimTime::from_hours(h)), 0.0);
            }
        }
    }

    #[test]
    fn sample_rtt_statistics() {
        let m = LatencyModel::default();
        let mut rng = DetRng::new(77);
        let n = 50_000;
        let mean_target = 40.0;
        let sum: f64 = (0..n).map(|_| m.sample_rtt(mean_target, &mut rng)).sum();
        let got = sum / n as f64;
        // Mean within a few percent (spikes push it slightly up).
        assert!((38.0..44.0).contains(&got), "{got}");
    }

    #[test]
    fn quartet_mean_agrees_with_sample_mean() {
        let m = LatencyModel::default();
        let mean = 55.0;
        let n = 30u32;
        // Average the fast path over many draws vs averaging samples.
        let mut fast_sum = 0.0;
        let mut slow_sum = 0.0;
        for i in 0..2000u64 {
            let mut r1 = DetRng::from_keys(1, &[i]);
            let mut r2 = DetRng::from_keys(2, &[i]);
            fast_sum += m.quartet_mean_rtt(mean, n, &mut r1);
            let s: f64 = (0..n).map(|_| m.sample_rtt(mean, &mut r2)).sum();
            slow_sum += s / n as f64;
        }
        let fast = fast_sum / 2000.0;
        let slow = slow_sum / 2000.0;
        assert!(
            (fast - slow).abs() / slow < 0.02,
            "fast {fast} vs slow {slow}"
        );
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn quartet_mean_rejects_zero() {
        let m = LatencyModel::default();
        let mut rng = DetRng::new(1);
        m.quartet_mean_rtt(10.0, 0, &mut rng);
    }
}
