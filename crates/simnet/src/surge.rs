//! Seeded ingest-surge plans for overload testing.
//!
//! The daemon's admission controller is exercised by replaying a world
//! at a multiple of its natural telemetry volume. A [`SurgePlan`] is
//! the deterministic schedule of that amplification: inside each
//! [`SurgeWindow`] every RTT record is duplicated `multiplier - 1`
//! extra times, with a small seeded RTT jitter on the copies so they
//! are not byte-identical samples (real surges are many *distinct*
//! clients, not one packet echoed).
//!
//! Like everything in this crate, amplification is a pure function of
//! `(plan seed, record identity, copy index)` — never of call order or
//! thread identity — so a surged run is byte-reproducible and two
//! differently-sharded feeders produce the same stream.

use crate::measure::RttRecord;
use crate::time::TimeBucket;
use blameit_topology::rng::DetRng;

/// Domain-separation tag so surge jitter never shares a stream with
/// chaos or world randomness.
const TAG_SURGE: u64 = 0xC4A0_0005;

/// One contiguous window of amplified ingest volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SurgeWindow {
    /// First surged bucket (inclusive).
    pub start: TimeBucket,
    /// Last surged bucket (inclusive).
    pub end: TimeBucket,
    /// Total volume multiplier inside the window; `1` means no-op,
    /// `10` means every record appears ten times.
    pub multiplier: u32,
}

impl SurgeWindow {
    /// Whether `bucket` falls inside this window.
    pub fn contains(&self, bucket: TimeBucket) -> bool {
        self.start.0 <= bucket.0 && bucket.0 <= self.end.0
    }
}

/// A seeded schedule of ingest surges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SurgePlan {
    /// Surge windows; later windows win where they overlap.
    pub windows: Vec<SurgeWindow>,
    /// Seed for the per-copy RTT jitter (independent of world seed).
    pub seed: u64,
}

impl SurgePlan {
    /// A plan with a single window.
    pub fn single(start: TimeBucket, end: TimeBucket, multiplier: u32, seed: u64) -> Self {
        SurgePlan {
            windows: vec![SurgeWindow {
                start,
                end,
                multiplier,
            }],
            seed,
        }
    }

    /// The volume multiplier in effect at `bucket` (≥ 1).
    pub fn multiplier_at(&self, bucket: TimeBucket) -> u32 {
        self.windows
            .iter()
            .rev()
            .find(|w| w.contains(bucket))
            .map(|w| w.multiplier.max(1))
            .unwrap_or(1)
    }

    /// Amplifies one bucket's records: the originals untouched and in
    /// order, followed by `multiplier - 1` jittered copies of each, in
    /// `(record index, copy index)` order. Jitter is keyed purely by
    /// `(seed, record identity, copy)`, so the output is independent
    /// of how the caller batched the stream.
    pub fn amplify(&self, bucket: TimeBucket, records: &[RttRecord]) -> Vec<RttRecord> {
        let m = self.multiplier_at(bucket);
        let mut out = Vec::with_capacity(records.len() * m as usize);
        out.extend_from_slice(records);
        for r in records {
            for copy in 1..m {
                let mut rng = DetRng::from_keys(
                    self.seed,
                    &[
                        TAG_SURGE,
                        u64::from(r.loc.0),
                        u64::from(r.p24.block()),
                        u64::from(r.mobile),
                        r.at.0,
                        u64::from(copy),
                    ],
                );
                let mut dup = *r;
                // ±10% jitter: distinct samples, same latency regime,
                // so surge copies never flip a quartet's verdict band.
                dup.rtt_ms *= rng.range_f64(0.9, 1.1);
                out.push(dup);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use blameit_topology::{CloudLocId, Prefix24};

    fn rec(loc: u16, block: u32, at: u64, rtt: f64) -> RttRecord {
        RttRecord {
            loc: CloudLocId(loc),
            p24: Prefix24::from_block(block),
            mobile: false,
            at: SimTime(at),
            rtt_ms: rtt,
        }
    }

    #[test]
    fn outside_window_is_identity() {
        let plan = SurgePlan::single(TimeBucket(10), TimeBucket(12), 10, 7);
        let recs = [rec(0, 1, 100, 40.0), rec(1, 2, 101, 55.0)];
        assert_eq!(plan.multiplier_at(TimeBucket(9)), 1);
        assert_eq!(plan.amplify(TimeBucket(9), &recs), recs.to_vec());
    }

    #[test]
    fn inside_window_multiplies_volume_with_bounded_jitter() {
        let plan = SurgePlan::single(TimeBucket(10), TimeBucket(12), 10, 7);
        let recs = [rec(0, 1, 3000, 40.0), rec(1, 2, 3001, 55.0)];
        let out = plan.amplify(TimeBucket(10), &recs);
        assert_eq!(out.len(), 20);
        // Originals first, untouched.
        assert_eq!(&out[..2], &recs[..]);
        for d in &out[2..] {
            let base = if d.loc == CloudLocId(0) { 40.0 } else { 55.0 };
            assert!((d.rtt_ms / base - 1.0).abs() <= 0.1 + 1e-12);
            assert!(d.at == SimTime(3000) || d.at == SimTime(3001));
        }
    }

    #[test]
    fn amplification_is_deterministic_and_batching_independent() {
        let plan = SurgePlan::single(TimeBucket(0), TimeBucket(100), 4, 99);
        let recs: Vec<RttRecord> = (0..8)
            .map(|i| rec(i % 3, i as u32, 500 + u64::from(i), 30.0 + f64::from(i)))
            .collect();
        let whole = plan.amplify(TimeBucket(1), &recs);
        assert_eq!(whole, plan.amplify(TimeBucket(1), &recs));
        // Splitting the stream and amplifying the halves yields the
        // same multiset of copies (same per-record jitter).
        let mut split = plan.amplify(TimeBucket(1), &recs[..4]);
        split.extend(plan.amplify(TimeBucket(1), &recs[4..]));
        let key = |r: &RttRecord| (r.loc.0, r.p24.block(), r.at.0, r.rtt_ms.to_bits());
        let mut a: Vec<_> = whole.iter().map(key).collect();
        let mut b: Vec<_> = split.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn later_windows_win_overlaps() {
        let plan = SurgePlan {
            windows: vec![
                SurgeWindow {
                    start: TimeBucket(0),
                    end: TimeBucket(10),
                    multiplier: 2,
                },
                SurgeWindow {
                    start: TimeBucket(5),
                    end: TimeBucket(10),
                    multiplier: 6,
                },
            ],
            seed: 1,
        };
        assert_eq!(plan.multiplier_at(TimeBucket(4)), 2);
        assert_eq!(plan.multiplier_at(TimeBucket(7)), 6);
        assert_eq!(plan.multiplier_at(TimeBucket(11)), 1);
    }
}
