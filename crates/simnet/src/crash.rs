//! Process-crash plans for the persistence layer's kill-point harness.
//!
//! The [`chaos`](crate::chaos) module degrades the *measurement plane*;
//! this module kills the *process itself*, at the named points of the
//! engine's durable-tick protocol (journal append, snapshot write). A
//! [`CrashPlan`] is the seeded, deterministic schedule of those kills:
//! the persistence layer consults it at every kill point and, when it
//! fires, leaves the on-disk state exactly as a real crash would —
//! a torn journal record, a half-written snapshot temp file — then
//! aborts the tick. `tests/crash_recovery.rs` proves recovery from
//! every point resumes byte-identically.
//!
//! Like [`FaultPlan`](crate::chaos::FaultPlan), every decision is a
//! pure function of `(plan seed, kill point, tick index)` via
//! [`DetRng::from_keys`] — never of call order or thread identity — so
//! a crash schedule is reproducible at any thread count.

use blameit_topology::rng::DetRng;

// Domain-separation tags, continuing the chaos module's series.
const TAG_CRASH: u64 = 0xC4A0_0005;
const TAG_TEAR: u64 = 0xC4A0_0006;

/// A named point in the durable-tick protocol where the process can be
/// killed. Ordered as the protocol reaches them within one tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Mid-append of the tick's journal record: a torn (prefix-only)
    /// record reaches disk, no fsync completes.
    MidJournal,
    /// Immediately after the journal record is fully written and
    /// fsync'd, before any snapshot consideration.
    PostJournal,
    /// A snapshot is due and about to be encoded; nothing of it reaches
    /// disk.
    PreSnapshot,
    /// Mid-write of the snapshot temp file: a prefix of the encoded
    /// bytes reaches disk, the atomic rename never happens.
    MidSnapshotWrite,
}

impl CrashPoint {
    /// Every kill point, protocol order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::MidJournal,
        CrashPoint::PostJournal,
        CrashPoint::PreSnapshot,
        CrashPoint::MidSnapshotWrite,
    ];

    /// Stable label (reports, metrics).
    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::MidJournal => "mid-journal",
            CrashPoint::PostJournal => "post-journal",
            CrashPoint::PreSnapshot => "pre-snapshot",
            CrashPoint::MidSnapshotWrite => "mid-snapshot-write",
        }
    }

    /// Stable id used as a key in the plan's RNG streams.
    fn id(self) -> u64 {
        match self {
            CrashPoint::MidJournal => 0,
            CrashPoint::PostJournal => 1,
            CrashPoint::PreSnapshot => 2,
            CrashPoint::MidSnapshotWrite => 3,
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A seeded schedule of process kills.
///
/// Two modes compose: a `forced` kill fires exactly once at a chosen
/// `(tick, point)` — what the recovery test matrix sweeps — and
/// `kill_rate` fires probabilistically at any point a tick reaches,
/// keyed per `(seed, point, tick)` so the schedule is a pure function
/// of identity, like every other plan in the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashPlan {
    /// Seed for every kill decision.
    pub seed: u64,
    /// Probability of dying at any reached `(tick, point)`.
    pub kill_rate: f64,
    /// Deterministic kill: fire at exactly this `(tick index, point)`.
    pub forced: Option<(u64, CrashPoint)>,
}

impl CrashPlan {
    /// A plan that never fires.
    pub fn none(seed: u64) -> Self {
        CrashPlan {
            seed,
            kill_rate: 0.0,
            forced: None,
        }
    }

    /// A plan that kills exactly once, at `(tick, point)`.
    pub fn kill_at(tick: u64, point: CrashPoint, seed: u64) -> Self {
        CrashPlan {
            seed,
            kill_rate: 0.0,
            forced: Some((tick, point)),
        }
    }

    /// A plan that kills with probability `rate` at every reached
    /// point.
    pub fn random(rate: f64, seed: u64) -> Self {
        CrashPlan {
            seed,
            kill_rate: rate,
            forced: None,
        }
    }

    /// Whether the process dies at this `(tick, point)`.
    pub fn fires(&self, tick: u64, point: CrashPoint) -> bool {
        if let Some((t, p)) = self.forced {
            if t == tick && p == point {
                return true;
            }
        }
        if self.kill_rate <= 0.0 {
            return false;
        }
        let mut rng = DetRng::from_keys(self.seed, &[TAG_CRASH, point.id(), tick]);
        rng.chance(self.kill_rate)
    }

    /// How much of the in-flight write survives a mid-write kill, as a
    /// fraction in `(0.05, 0.95)` — keyed on the tick so different
    /// crashes tear at different offsets.
    pub fn tear_fraction(&self, tick: u64, point: CrashPoint) -> f64 {
        let mut rng = DetRng::from_keys(self.seed, &[TAG_TEAR, point.id(), tick]);
        rng.range_f64(0.05, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let plan = CrashPlan::none(7);
        for tick in 0..100 {
            for p in CrashPoint::ALL {
                assert!(!plan.fires(tick, p));
            }
        }
    }

    #[test]
    fn forced_fires_exactly_once() {
        let plan = CrashPlan::kill_at(3, CrashPoint::MidSnapshotWrite, 7);
        let mut hits = 0;
        for tick in 0..10 {
            for p in CrashPoint::ALL {
                if plan.fires(tick, p) {
                    assert_eq!((tick, p), (3, CrashPoint::MidSnapshotWrite));
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn random_is_deterministic_and_roughly_rated() {
        let plan = CrashPlan::random(0.25, 11);
        let count = (0..2_000)
            .filter(|&t| plan.fires(t, CrashPoint::PostJournal))
            .count();
        let rate = count as f64 / 2_000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed kill rate {rate}");
        for t in 0..50 {
            for p in CrashPoint::ALL {
                assert_eq!(plan.fires(t, p), plan.fires(t, p));
            }
        }
    }

    #[test]
    fn tear_fraction_in_open_interval() {
        let plan = CrashPlan::random(1.0, 5);
        for t in 0..100 {
            for p in [CrashPoint::MidJournal, CrashPoint::MidSnapshotWrite] {
                let f = plan.tear_fraction(t, p);
                assert!((0.05..0.95).contains(&f), "{f}");
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CrashPoint::MidJournal.to_string(), "mid-journal");
        assert_eq!(CrashPoint::ALL.len(), 4);
    }
}
