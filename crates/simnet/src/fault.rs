//! Fault injection: the simulator's ground truth.
//!
//! Every latency degradation in the synthetic world is caused by a
//! scheduled [`Fault`] targeting one network segment — mirroring the
//! paper's Insight-1 that "typically, only one of the cloud, middle, or
//! client network segments causes the inflation" (§4.1). The
//! [`FaultSchedule`] generator draws fault durations from a long-tailed
//! mixture calibrated to §2.3 (over 60% of issues last ≤ 5 minutes,
//! ~8% last over 2 hours) and schedules more middle-segment faults in
//! regions with immature transit (§6.2: India, China, Brazil).
//!
//! Because faults are explicit objects, evaluation code can always ask
//! the simulator *which AS really was at fault* — the role played by
//! Azure's manual incident investigations in the paper (§6.3).

use crate::time::{SimTime, TimeRange};
use blameit_topology::rng::DetRng;
use blameit_topology::{Asn, CloudLocId, PathId, Prefix24, Region, Topology};
use std::fmt;

/// The coarse path segment a fault (or a blame) lands on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Segment {
    /// The cloud provider's own network/servers.
    Cloud,
    /// Any AS between the cloud and the client AS.
    Middle,
    /// The client's ISP (or the client prefix itself).
    Client,
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Segment::Cloud => "cloud",
            Segment::Middle => "middle",
            Segment::Client => "client",
        })
    }
}

/// What a fault afflicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTarget {
    /// The cloud location itself: server overload, internal routing
    /// trouble (§6.3 cases 1 and 3). Inflates *all* connections served
    /// by the location.
    CloudLocation(CloudLocId),
    /// A middle AS. With `via_path: Some(p)`, only traffic on that
    /// exact BGP path is affected — the localized-issue case §3.1
    /// insists on ("a problem along certain paths but not all").
    MiddleAs {
        /// The faulty transit/backbone AS.
        asn: Asn,
        /// Optional scope: only this middle path is affected.
        via_path: Option<PathId>,
    },
    /// A middle AS fault afflicting only the *reverse* (client→cloud)
    /// direction. Internet routing is asymmetric (§5.1 cites He et al.); a
    /// reverse-path fault inflates the handshake RTT but is invisible
    /// to the per-hop structure of a forward traceroute — the
    /// motivation for the paper's proposed client-coordinated reverse
    /// traceroutes.
    MiddleAsReverse {
        /// The faulty AS on the reverse path.
        asn: Asn,
    },
    /// A client ISP (e.g. the Italian ISP maintenance, §6.3 case 5).
    ClientAs(Asn),
    /// A single client /24 (very local last-mile trouble).
    ClientPrefix(Prefix24),
}

impl FaultTarget {
    /// The segment this target belongs to.
    pub fn segment(self) -> Segment {
        match self {
            FaultTarget::CloudLocation(_) => Segment::Cloud,
            FaultTarget::MiddleAs { .. } | FaultTarget::MiddleAsReverse { .. } => Segment::Middle,
            FaultTarget::ClientAs(_) | FaultTarget::ClientPrefix(_) => Segment::Client,
        }
    }
}

/// Identifier of a fault within a schedule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FaultId(pub u32);

/// A scheduled latency fault.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Identifier.
    pub id: FaultId,
    /// What is afflicted.
    pub target: FaultTarget,
    /// Start instant.
    pub start: SimTime,
    /// Duration in seconds.
    pub duration_secs: u64,
    /// Round-trip milliseconds added to affected connections while
    /// active.
    pub added_ms: f64,
}

impl Fault {
    /// Exclusive end instant.
    pub fn end(&self) -> SimTime {
        self.start + self.duration_secs
    }

    /// True if active at instant `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end()
    }
}

/// Per-category daily fault counts for the generator, before regional
/// scaling.
#[derive(Clone, Copy, Debug)]
pub struct FaultRates {
    /// Cloud-location faults per location per day.
    pub cloud_per_loc_day: f64,
    /// Middle-AS faults per middle AS per day (scaled up by transit
    /// immaturity of the AS's region).
    pub middle_per_as_day: f64,
    /// Client-AS faults per access AS per day.
    pub client_as_per_day: f64,
    /// Per-/24 faults per 1000 client blocks per day.
    pub client_prefix_per_k_day: f64,
    /// Fraction of middle faults that are path-scoped rather than
    /// AS-wide.
    pub middle_path_scoped_frac: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            cloud_per_loc_day: 0.05,
            middle_per_as_day: 1.5,
            client_as_per_day: 0.4,
            client_prefix_per_k_day: 20.0,
            middle_path_scoped_frac: 0.8,
        }
    }
}

/// Draws one incident duration from the calibrated long-tailed mixture:
/// with probability 0.72 an exponential of mean 150 s (min 60 s), else
/// a Pareto(xm = 300 s, α = 0.4) capped at 20 h. This lands near the
/// paper's Fig. 4a: ≈60% of incidents ≤ 5 min, ≈8% ≥ 2 h.
pub fn sample_duration_secs(rng: &mut DetRng) -> u64 {
    if rng.chance(0.72) {
        rng.exponential(150.0).max(60.0) as u64
    } else {
        rng.pareto(300.0, 0.4).min(72_000.0) as u64
    }
}

/// The full set of faults for a simulation run, indexed for fast
/// "active at t" queries.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// All faults, sorted by start time.
    faults: Vec<Fault>,
    /// Longest duration in the schedule (bounds the active-scan window).
    max_duration: u64,
    /// Per-hour index: `hour_index[h]` lists (by position in `faults`)
    /// every fault overlapping hour `h`. Telemetry generation queries
    /// active faults billions of times across a month; scanning a
    /// start-time window costs ~100× more than this lookup.
    hour_index: Vec<Vec<u32>>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Builds from an explicit fault list (ids are reassigned in start
    /// order).
    pub fn from_faults(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| (f.start, f.duration_secs));
        for (i, f) in faults.iter_mut().enumerate() {
            f.id = FaultId(i as u32);
        }
        let max_duration = faults.iter().map(|f| f.duration_secs).max().unwrap_or(0);
        let max_end_hour = faults
            .iter()
            .map(|f| f.end().secs() / 3_600 + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut hour_index = vec![Vec::new(); max_end_hour];
        for (i, f) in faults.iter().enumerate() {
            let first = (f.start.secs() / 3_600) as usize;
            let last = (f.end().secs() / 3_600) as usize;
            let last = last.min(max_end_hour.saturating_sub(1));
            for slot in hour_index[first..=last].iter_mut() {
                slot.push(i as u32);
            }
        }
        FaultSchedule {
            faults,
            max_duration,
            hour_index,
        }
    }

    /// Generates a schedule for `range` over `topo` with the given
    /// rates, deterministically in `seed`. Extra hand-placed faults
    /// (scenario incidents) can be appended via [`FaultSchedule::merged_with`].
    pub fn generate(topo: &Topology, range: TimeRange, rates: &FaultRates, seed: u64) -> Self {
        let mut faults = Vec::new();
        let days = range.secs() as f64 / 86_400.0;

        // Cloud-location faults. Durations are capped at 3 hours: the
        // paper observes cloud issues "generally last for lesser
        // durations than middle or client segment issues, possibly
        // explained by Azure dedicating a team to fix them at the
        // earliest" (Fig. 10).
        for loc in &topo.cloud_locations {
            let mut rng = DetRng::from_keys(seed, &[0xFA_01, loc.id.0 as u64]);
            let n = rng.poisson(rates.cloud_per_loc_day * days);
            for _ in 0..n {
                let start = range.start + rng.below(range.secs());
                faults.push(Fault {
                    id: FaultId(0),
                    target: FaultTarget::CloudLocation(loc.id),
                    start,
                    duration_secs: sample_duration_secs(&mut rng).min(3 * 3_600),
                    added_ms: rng.lognormal(45f64.ln(), 0.5).clamp(15.0, 200.0),
                });
            }
        }

        // Middle-AS faults, region-scaled: immature transit breaks more.
        for a in &topo.ases {
            if !a.role.is_middle() {
                continue;
            }
            let mut rng = DetRng::from_keys(seed, &[0xFA_02, a.asn.0 as u64]);
            // Home region of the AS: mode of its PoP metros' regions.
            let region = as_home_region(topo, a.asn);
            let scale = match region {
                Some(r) => 0.4 + 2.2 * (1.0 - r.transit_maturity()),
                None => 1.0, // global tier-1
            };
            let n = rng.poisson(rates.middle_per_as_day * scale * days);
            for _ in 0..n {
                let start = range.start + rng.below(range.secs());
                let via_path = if rng.chance(rates.middle_path_scoped_frac) {
                    pick_path_containing(topo, a.asn, &mut rng)
                } else {
                    None
                };
                faults.push(Fault {
                    id: FaultId(0),
                    target: FaultTarget::MiddleAs {
                        asn: a.asn,
                        via_path,
                    },
                    start,
                    duration_secs: sample_duration_secs(&mut rng),
                    added_ms: rng.lognormal(35f64.ln(), 0.6).clamp(10.0, 300.0),
                });
            }
        }

        // Client-AS faults.
        for a in &topo.ases {
            if !a.role.is_access() {
                continue;
            }
            let mut rng = DetRng::from_keys(seed, &[0xFA_03, a.asn.0 as u64]);
            let n = rng.poisson(rates.client_as_per_day * days);
            for _ in 0..n {
                let start = range.start + rng.below(range.secs());
                faults.push(Fault {
                    id: FaultId(0),
                    target: FaultTarget::ClientAs(a.asn),
                    start,
                    duration_secs: sample_duration_secs(&mut rng),
                    added_ms: rng.lognormal(45f64.ln(), 0.7).clamp(15.0, 400.0),
                });
            }
        }

        // Per-/24 faults (lots of tiny, fleeting last-mile issues).
        {
            let mut rng = DetRng::from_keys(seed, &[0xFA_04]);
            let n = rng
                .poisson(rates.client_prefix_per_k_day * topo.clients.len() as f64 / 1000.0 * days);
            for _ in 0..n {
                let c = &topo.clients[rng.index(topo.clients.len())];
                let start = range.start + rng.below(range.secs());
                faults.push(Fault {
                    id: FaultId(0),
                    target: FaultTarget::ClientPrefix(c.p24),
                    start,
                    duration_secs: sample_duration_secs(&mut rng),
                    added_ms: rng.lognormal(50f64.ln(), 0.7).clamp(15.0, 400.0),
                });
            }
        }

        FaultSchedule::from_faults(faults)
    }

    /// Returns a new schedule with `extra` faults merged in.
    pub fn merged_with(&self, extra: Vec<Fault>) -> FaultSchedule {
        let mut all = self.faults.clone();
        all.extend(extra);
        FaultSchedule::from_faults(all)
    }

    /// All faults, sorted by start.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// A fault by id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn fault(&self, id: FaultId) -> &Fault {
        &self.faults[id.0 as usize]
    }

    /// Faults active at instant `t`.
    pub fn active_at(&self, t: SimTime) -> impl Iterator<Item = &Fault> {
        let hour = (t.secs() / 3_600) as usize;
        let slot: &[u32] = self
            .hour_index
            .get(hour)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        slot.iter()
            .map(|i| &self.faults[*i as usize])
            .filter(move |f| f.active_at(t))
    }

    /// The longest fault duration in the schedule (seconds).
    pub fn max_duration_secs(&self) -> u64 {
        self.max_duration
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The region where an AS has most of its PoPs (None for well-spread
/// global backbones).
pub fn as_home_region(topo: &Topology, asn: Asn) -> Option<Region> {
    let mut counts = [0usize; Region::ALL.len()];
    let mut total = 0usize;
    for pop in topo.graph.pops_of(asn) {
        counts[topo.metro(pop.metro).region.index()] += 1;
        total += 1;
    }
    if total == 0 {
        return None;
    }
    let (best_idx, best) = counts.iter().enumerate().max_by_key(|(_, c)| **c).unwrap();
    // "Home" only if a strict majority of PoPs are there.
    if *best * 2 > total {
        Some(Region::ALL[best_idx])
    } else {
        None
    }
}

/// Picks an interned path containing `asn` (for path-scoped faults), or
/// `None` if the AS appears on no path.
fn pick_path_containing(topo: &Topology, asn: Asn, rng: &mut DetRng) -> Option<PathId> {
    let candidates: Vec<PathId> = topo
        .paths
        .iter()
        .filter(|(_, p)| p.middle.contains(&asn))
        .map(|(id, _)| id)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(*rng.pick(&candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny(11))
    }

    #[test]
    fn fault_activity_window() {
        let f = Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(CloudLocId(0)),
            start: SimTime(1000),
            duration_secs: 600,
            added_ms: 50.0,
        };
        assert!(!f.active_at(SimTime(999)));
        assert!(f.active_at(SimTime(1000)));
        assert!(f.active_at(SimTime(1599)));
        assert!(!f.active_at(SimTime(1600)));
        assert_eq!(f.end(), SimTime(1600));
    }

    #[test]
    fn duration_mixture_matches_fig4a_shape() {
        let mut rng = DetRng::new(42);
        let n = 50_000;
        let durations: Vec<u64> = (0..n).map(|_| sample_duration_secs(&mut rng)).collect();
        let le_5min = durations.iter().filter(|&&d| d <= 300).count() as f64 / n as f64;
        let ge_2h = durations.iter().filter(|&&d| d >= 7200).count() as f64 / n as f64;
        assert!((0.52..0.72).contains(&le_5min), "≤5min fraction {le_5min}");
        assert!((0.04..0.13).contains(&ge_2h), "≥2h fraction {ge_2h}");
        assert!(durations.iter().all(|&d| (60..=72_000).contains(&d)));
    }

    #[test]
    fn schedule_sorted_and_ids_dense() {
        let t = topo();
        let s = FaultSchedule::generate(&t, TimeRange::days(3), &FaultRates::default(), 7);
        assert!(!s.is_empty());
        for w in s.faults().windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for (i, f) in s.faults().iter().enumerate() {
            assert_eq!(f.id, FaultId(i as u32));
        }
    }

    #[test]
    fn active_at_matches_linear_scan() {
        let t = topo();
        let s = FaultSchedule::generate(&t, TimeRange::days(2), &FaultRates::default(), 9);
        for probe in [0u64, 3_600, 40_000, 90_000, 170_000] {
            let t0 = SimTime(probe);
            let fast: Vec<FaultId> = s.active_at(t0).map(|f| f.id).collect();
            let slow: Vec<FaultId> = s
                .faults()
                .iter()
                .filter(|f| f.active_at(t0))
                .map(|f| f.id)
                .collect();
            assert_eq!(fast, slow, "at {t0}");
        }
    }

    #[test]
    fn generation_deterministic() {
        let t = topo();
        let a = FaultSchedule::generate(&t, TimeRange::days(2), &FaultRates::default(), 5);
        let b = FaultSchedule::generate(&t, TimeRange::days(2), &FaultRates::default(), 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.faults().iter().zip(b.faults()) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.target, y.target);
        }
        let c = FaultSchedule::generate(&t, TimeRange::days(2), &FaultRates::default(), 6);
        assert!(
            a.len() != c.len()
                || a.faults()
                    .iter()
                    .zip(c.faults())
                    .any(|(x, y)| x.start != y.start)
        );
    }

    #[test]
    fn immature_regions_get_more_middle_faults() {
        let t = Topology::with_seed(21);
        let s = FaultSchedule::generate(&t, TimeRange::days(14), &FaultRates::default(), 13);
        let mut counts: std::collections::HashMap<Asn, usize> = std::collections::HashMap::new();
        for f in s.faults() {
            if let FaultTarget::MiddleAs { asn, .. } = f.target {
                *counts.entry(asn).or_default() += 1;
            }
        }
        // Compare the per-AS fault rate of clearly-immature transit
        // regions (maturity < 0.6) against clearly-mature ones (> 0.85).
        let rate = |pred: &dyn Fn(f64) -> bool| -> f64 {
            let ases: Vec<Asn> = t
                .ases
                .iter()
                .filter(|a| a.role == blameit_topology::AsRole::Transit)
                .filter(|a| {
                    as_home_region(&t, a.asn)
                        .map(|r| pred(r.transit_maturity()))
                        .unwrap_or(false)
                })
                .map(|a| a.asn)
                .collect();
            let total: usize = ases
                .iter()
                .map(|a| counts.get(a).copied().unwrap_or(0))
                .sum();
            total as f64 / ases.len() as f64
        };
        let immature = rate(&|m| m < 0.6);
        let mature = rate(&|m| m > 0.85);
        assert!(
            immature > 1.5 * mature,
            "immature {immature} vs mature {mature}"
        );
    }

    #[test]
    fn merged_with_reindexes() {
        let t = topo();
        let s = FaultSchedule::generate(&t, TimeRange::days(1), &FaultRates::default(), 3);
        let extra = Fault {
            id: FaultId(9999),
            target: FaultTarget::CloudLocation(CloudLocId(0)),
            start: SimTime(50),
            duration_secs: 100,
            added_ms: 80.0,
        };
        let merged = s.merged_with(vec![extra]);
        assert_eq!(merged.len(), s.len() + 1);
        for (i, f) in merged.faults().iter().enumerate() {
            assert_eq!(f.id, FaultId(i as u32));
        }
        assert!(merged
            .active_at(SimTime(60))
            .any(|f| matches!(f.target, FaultTarget::CloudLocation(CloudLocId(0)))));
    }

    #[test]
    fn target_segments() {
        assert_eq!(
            FaultTarget::CloudLocation(CloudLocId(0)).segment(),
            Segment::Cloud
        );
        assert_eq!(
            FaultTarget::MiddleAs {
                asn: Asn(1),
                via_path: None
            }
            .segment(),
            Segment::Middle
        );
        assert_eq!(FaultTarget::ClientAs(Asn(1)).segment(), Segment::Client);
        assert_eq!(
            FaultTarget::ClientPrefix(Prefix24::from_block(1)).segment(),
            Segment::Client
        );
    }

    #[test]
    fn home_region_of_regional_transit() {
        let t = topo();
        // Every transit AS in the tiny topology covers exactly one region.
        for a in &t.ases {
            if a.role == blameit_topology::AsRole::Transit {
                assert!(as_home_region(&t, a.asn).is_some(), "{}", a.name);
            }
        }
    }
}
