//! The `World`: topology + models + faults + churn, with ground truth.
//!
//! A [`World`] is one fully-specified simulation run. It answers every
//! question the reproduction needs:
//!
//! * what telemetry did the cloud record? — [`World::quartet`],
//!   [`World::quartets_in`], [`World::rtt_records`];
//! * what would a traceroute have seen? — [`World::traceroute`];
//! * what did the IBGP listener report? — [`World::churn_events`];
//! * and, crucially, *what was actually wrong* — [`World::ground_truth`],
//!   playing the role of the paper's manual incident investigations
//!   (§6.3) when scoring BlameIt's localization.
//!
//! Everything is deterministic in the config seed and addressable in
//! isolation: asking for one quartet does not require simulating any
//! other.

use crate::activity::ActivityModel;
use crate::churn::ChurnModel;
use crate::fault::{Fault, FaultId, FaultRates, FaultSchedule, FaultTarget, Segment};
use crate::latency::{LatencyModel, SegRtt};
use crate::measure::{QuartetObs, RttRecord};
use crate::time::{SimTime, TimeBucket, TimeRange};
use crate::traceroute::{Traceroute, TracerouteHop, TracerouteNoise};
use blameit_topology::bgp::{BgpChurnEvent, RouteOption};
use blameit_topology::gen::ClientBlock;
use blameit_topology::rng::DetRng;
use blameit_topology::{Asn, CloudLocId, Prefix24, Topology, TopologyConfig};

/// Full configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Topology generation parameters.
    pub topology: TopologyConfig,
    /// Simulated time span (faults and churn are generated for it).
    pub range: TimeRange,
    /// Fault arrival rates.
    pub fault_rates: FaultRates,
    /// Client activity parameters.
    pub activity: ActivityModel,
    /// Latency model parameters.
    pub latency: LatencyModel,
    /// Traceroute observation noise.
    pub traceroute_noise: TracerouteNoise,
    /// BGP churn events per route per day (0.4 ≈ paper's stability).
    pub churn_rate_per_day: f64,
    /// Master seed for faults, churn, and telemetry noise.
    pub seed: u64,
}

impl WorldConfig {
    /// A default-scale world covering `days` days with the given seed.
    pub fn new(days: u64, seed: u64) -> Self {
        let latency = LatencyModel {
            seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1A7E,
            ..LatencyModel::default()
        };
        WorldConfig {
            topology: TopologyConfig {
                seed: seed ^ 0x7090,
                ..TopologyConfig::default()
            },
            range: TimeRange::days(days),
            fault_rates: FaultRates::default(),
            activity: ActivityModel::default(),
            latency,
            traceroute_noise: TracerouteNoise::default(),
            churn_rate_per_day: 0.4,
            seed,
        }
    }

    /// A reduced-scale world for fast tests.
    pub fn tiny(days: u64, seed: u64) -> Self {
        WorldConfig {
            topology: TopologyConfig::tiny(seed ^ 0x7090),
            ..WorldConfig::new(days, seed)
        }
    }
}

/// Who was really to blame for an inflated path, per the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Culprit {
    /// The coarse segment at fault.
    pub segment: Segment,
    /// The specific AS at fault (cloud AS for cloud faults, the faulty
    /// middle AS, or the client's origin AS).
    pub asn: Asn,
    /// The scheduled fault behind it, if any (`None` when evening
    /// congestion alone is responsible).
    pub fault: Option<FaultId>,
}

/// Ground-truth decomposition of one (location, client, instant).
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Fault-free segmented RTT (client segment *excludes* evening
    /// congestion; that is reported as inflation below).
    pub baseline: SegRtt,
    /// Cloud-segment inflation (ms) and its fault.
    pub cloud_infl_ms: f64,
    /// Per-middle-AS inflation (ms) with the responsible fault.
    pub middle_infl: Vec<(Asn, f64, FaultId)>,
    /// Client-segment inflation from scheduled faults (ms).
    pub client_fault_infl_ms: f64,
    /// Client-segment inflation from evening congestion (ms).
    pub congestion_ms: f64,
    /// The dominant cause, if total inflation is material (≥ 5 ms).
    pub culprit: Option<Culprit>,
    /// Fraction of the total inflation contributed by the dominant
    /// single cause (1.0 when there is exactly one cause) — the
    /// quantity behind the paper's Insight-1 (§4.1).
    pub dominant_fraction: f64,
}

impl GroundTruth {
    /// Total inflation across all causes (ms).
    pub fn total_inflation_ms(&self) -> f64 {
        self.cloud_infl_ms
            + self.middle_infl.iter().map(|m| m.1).sum::<f64>()
            + self.client_fault_infl_ms
            + self.congestion_ms
    }

    /// The RTT the telemetry would center on.
    pub fn inflated_total_ms(&self) -> f64 {
        self.baseline.total() + self.total_inflation_ms()
    }
}

/// A fully-specified simulation run.
#[derive(Clone, Debug)]
pub struct World {
    topo: Topology,
    cfg: WorldConfig,
    faults: FaultSchedule,
    churn: ChurnModel,
}

impl World {
    /// Generates a world from a config (topology, faults, churn).
    pub fn new(cfg: WorldConfig) -> World {
        let topo = Topology::generate(cfg.topology.clone());
        let faults = FaultSchedule::generate(&topo, cfg.range, &cfg.fault_rates, cfg.seed ^ 0xFA);
        let churn = if cfg.churn_rate_per_day > 0.0 {
            ChurnModel::generate(&topo, cfg.range, cfg.churn_rate_per_day, cfg.seed ^ 0xC4)
        } else {
            ChurnModel::none()
        };
        World {
            topo,
            cfg,
            faults,
            churn,
        }
    }

    /// Builds a world with an explicit fault schedule (scenario runs).
    pub fn with_faults(cfg: WorldConfig, faults: FaultSchedule) -> World {
        let topo = Topology::generate(cfg.topology.clone());
        let churn = if cfg.churn_rate_per_day > 0.0 {
            ChurnModel::generate(&topo, cfg.range, cfg.churn_rate_per_day, cfg.seed ^ 0xC4)
        } else {
            ChurnModel::none()
        };
        World {
            topo,
            cfg,
            faults,
            churn,
        }
    }

    /// Adds extra hand-placed faults to an existing world.
    pub fn add_faults(&mut self, extra: Vec<Fault>) {
        self.faults = self.faults.merged_with(extra);
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// The fault schedule (ground truth).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// The churn model.
    pub fn churn(&self) -> &ChurnModel {
        &self.churn
    }

    /// The live route for a client block toward a location at `t`.
    pub fn route_at(&self, loc: CloudLocId, c: &ClientBlock, t: SimTime) -> &RouteOption {
        self.churn.route_at(&self.topo, loc, c.prefix_idx, t)
    }

    /// The *reverse* (client→cloud) route at `t`, read in cloud→client
    /// orientation for comparability. Internet paths are asymmetric
    /// (§5.1): with probability ~40% per (route, day) the reverse
    /// direction takes a different option of the same route set.
    pub fn reverse_route_at(&self, loc: CloudLocId, c: &ClientBlock, t: SimTime) -> &RouteOption {
        let p = &self.topo.prefixes[c.prefix_idx as usize];
        let ro = self.topo.bgp.lookup(loc, p.prefix).expect("bound");
        let forward = self.route_at(loc, c, t);
        if ro.options.len() < 2 {
            return forward;
        }
        let mut rng = DetRng::from_keys(
            self.cfg.seed,
            &[0x4E5E, loc.0 as u64, c.prefix_idx as u64, t.day() as u64],
        );
        if rng.chance(0.6) {
            forward
        } else {
            // A different option than the forward one, deterministically.
            let fwd_idx = ro
                .options
                .iter()
                .position(|o| std::ptr::eq(o, forward))
                .unwrap_or(0);
            let alt = (fwd_idx + 1 + rng.index(ro.options.len() - 1)) % ro.options.len();
            &ro.options[alt]
        }
    }

    /// IBGP-listener events in a range.
    pub fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent> {
        self.churn.events_in(&self.topo, range)
    }

    /// Ground truth for (location, client, instant): baseline segments,
    /// all active inflations, and the dominant culprit.
    pub fn ground_truth(&self, loc: CloudLocId, c: &ClientBlock, t: SimTime) -> GroundTruth {
        let route = self.route_at(loc, c, t);
        let base_with_cong = self.cfg.latency.baseline(&self.topo, loc, c, route, t);
        let congestion_ms = self.cfg.latency.evening_congestion(&self.topo, c, t);
        let baseline = SegRtt {
            client_ms: base_with_cong.client_ms - congestion_ms,
            ..base_with_cong
        };

        let mut cloud_infl_ms = 0.0;
        let mut cloud_fault = None;
        let mut middle_infl: Vec<(Asn, f64, FaultId)> = Vec::new();
        let mut client_fault_infl_ms = 0.0;
        let mut client_fault = None;
        for f in self.faults.active_at(t) {
            match f.target {
                FaultTarget::CloudLocation(l) if l == loc => {
                    cloud_infl_ms += f.added_ms;
                    cloud_fault = Some(f.id);
                }
                FaultTarget::MiddleAs { asn, via_path } => {
                    let middle = &self.topo.paths.get(route.path_id).middle;
                    if middle.contains(&asn) && via_path.is_none_or(|p| p == route.path_id) {
                        middle_infl.push((asn, f.added_ms, f.id));
                    }
                }
                FaultTarget::MiddleAsReverse { asn } => {
                    let rev = self.reverse_route_at(loc, c, t);
                    if self.topo.paths.get(rev.path_id).middle.contains(&asn) {
                        middle_infl.push((asn, f.added_ms, f.id));
                    }
                }
                FaultTarget::ClientAs(a) if a == c.origin => {
                    client_fault_infl_ms += f.added_ms;
                    client_fault = Some(f.id);
                }
                FaultTarget::ClientPrefix(p) if p == c.p24 => {
                    client_fault_infl_ms += f.added_ms;
                    client_fault = Some(f.id);
                }
                _ => {}
            }
        }

        // Dominant single cause.
        let mut candidates: Vec<(Segment, Asn, f64, Option<FaultId>)> = Vec::new();
        if cloud_infl_ms > 0.0 {
            candidates.push((
                Segment::Cloud,
                self.topo.cloud_asn,
                cloud_infl_ms,
                cloud_fault,
            ));
        }
        for (asn, ms, fid) in &middle_infl {
            candidates.push((Segment::Middle, *asn, *ms, Some(*fid)));
        }
        let client_total = client_fault_infl_ms + congestion_ms;
        if client_total > 0.0 {
            candidates.push((Segment::Client, c.origin, client_total, client_fault));
        }
        let total: f64 =
            cloud_infl_ms + middle_infl.iter().map(|m| m.1).sum::<f64>() + client_total;
        let (culprit, dominant_fraction) =
            match candidates.iter().max_by(|a, b| a.2.total_cmp(&b.2)) {
                Some((seg, asn, ms, fid)) if total >= 5.0 => (
                    Some(Culprit {
                        segment: *seg,
                        asn: *asn,
                        fault: *fid,
                    }),
                    ms / total,
                ),
                Some((_, _, ms, _)) => (None, ms / total),
                None => (None, 1.0),
            };

        GroundTruth {
            baseline,
            cloud_infl_ms,
            middle_infl,
            client_fault_infl_ms,
            congestion_ms,
            culprit,
            dominant_fraction,
        }
    }

    /// Whether (and how heavily) a client talks to a location:
    /// `None` if it never does, `Some(secondary)` otherwise.
    fn connection_kind(&self, loc: CloudLocId, c: &ClientBlock) -> Option<bool> {
        if c.primary_loc == loc {
            Some(false)
        } else if c.secondary_loc == Some(loc) {
            Some(true)
        } else {
            None
        }
    }

    /// The quartet observation for (location, client, bucket), or
    /// `None` if the client does not use that location or recorded no
    /// connections in the bucket.
    pub fn quartet(
        &self,
        loc: CloudLocId,
        c: &ClientBlock,
        bucket: TimeBucket,
    ) -> Option<QuartetObs> {
        let secondary = self.connection_kind(loc, c)?;
        let t = bucket.mid();
        let mut act_rng = DetRng::from_keys(
            self.cfg.seed,
            &[0xAC71, loc.0 as u64, c.p24.block() as u64, bucket.0 as u64],
        );
        let n = self
            .cfg
            .activity
            .sample_connections(&self.topo, c, t, secondary, &mut act_rng);
        if n == 0 {
            return None;
        }
        let gt = self.ground_truth(loc, c, t);
        let mean = gt.inflated_total_ms();
        let mut rtt_rng = DetRng::from_keys(
            self.cfg.seed,
            &[0x0B5E, loc.0 as u64, c.p24.block() as u64, bucket.0 as u64],
        );
        let mean_rtt_ms = self.cfg.latency.quartet_mean_rtt(mean, n, &mut rtt_rng);
        Some(QuartetObs {
            loc,
            p24: c.p24,
            mobile: c.mobile,
            bucket,
            n,
            mean_rtt_ms,
        })
    }

    /// All quartets recorded in a bucket, across every location
    /// (primary connections plus dual-homed secondaries), in
    /// deterministic client order.
    pub fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs> {
        let mut out = Vec::new();
        for c in &self.topo.clients {
            if let Some(q) = self.quartet(c.primary_loc, c, bucket) {
                out.push(q);
            }
            if let Some(sec) = c.secondary_loc {
                if let Some(q) = self.quartet(sec, c, bucket) {
                    out.push(q);
                }
            }
        }
        out
    }

    /// Sample-level RTT records for one quartet (slow path; same
    /// connection count as [`World::quartet`], individual noise draws).
    pub fn rtt_records(
        &self,
        loc: CloudLocId,
        c: &ClientBlock,
        bucket: TimeBucket,
    ) -> Vec<RttRecord> {
        let Some(secondary) = self.connection_kind(loc, c) else {
            return Vec::new();
        };
        let t = bucket.mid();
        let mut act_rng = DetRng::from_keys(
            self.cfg.seed,
            &[0xAC71, loc.0 as u64, c.p24.block() as u64, bucket.0 as u64],
        );
        let n = self
            .cfg
            .activity
            .sample_connections(&self.topo, c, t, secondary, &mut act_rng);
        if n == 0 {
            return Vec::new();
        }
        let gt = self.ground_truth(loc, c, t);
        let mean = gt.inflated_total_ms();
        let mut rng = DetRng::from_keys(
            self.cfg.seed,
            &[0x5A31, loc.0 as u64, c.p24.block() as u64, bucket.0 as u64],
        );
        (0..n)
            .map(|i| RttRecord {
                loc,
                p24: c.p24,
                mobile: c.mobile,
                at: SimTime(bucket.start().secs() + (i as u64 * 300) / n as u64),
                rtt_ms: self.cfg.latency.sample_rtt(mean, &mut rng),
            })
            .collect()
    }

    /// Issues a traceroute from a location toward a client /24 at `t`.
    /// Returns `None` for an unknown /24. **This is the expensive
    /// operation BlameIt budgets** — callers are expected to count
    /// invocations (see the probe accounting in the evaluation crates).
    pub fn traceroute(&self, loc: CloudLocId, p24: Prefix24, t: SimTime) -> Option<Traceroute> {
        let c = self.topo.client(p24)?;
        let route = self.route_at(loc, c, t);
        let gt = self.ground_truth(loc, c, t);
        let noise = self.cfg.traceroute_noise;
        let mut rng = DetRng::from_keys(
            self.cfg.seed,
            &[0x7FAC, loc.0 as u64, p24.block() as u64, t.secs()],
        );

        // Reverse-direction middle inflations hit every hop's RTT (the
        // echo reply crosses the reverse path regardless of which
        // forward hop answered) — which is exactly why forward-only
        // probing cannot localize them (§5.1).
        let rev_route = self.reverse_route_at(loc, c, t);
        let rev_middle = &self.topo.paths.get(rev_route.path_id).middle;
        let mut reverse_infl = 0.0;
        for f in self.faults.active_at(t) {
            if let FaultTarget::MiddleAsReverse { asn } = f.target {
                if rev_middle.contains(&asn) {
                    reverse_infl += f.added_ms;
                }
            }
        }
        // Pre-compute where each middle inflation starts applying.
        let drift = self.cfg.latency.path_drift(route, t);
        let n_hops = route.as_hops.len();
        let mut hops = Vec::with_capacity(n_hops);
        for (i, h) in route.as_hops.iter().enumerate() {
            let mut rtt = 2.0 * h.cum_oneway_ms + 1.0; // +1 ms server stack
                                                       // Cloud faults delay every probe the server sends.
            rtt += gt.cloud_infl_ms;
            // Reverse-path faults delay every reply.
            rtt += reverse_infl;
            // Forward middle faults delay this hop if the faulty AS is
            // at or before it on the path.
            for (fasn, ms, fid) in &gt.middle_infl {
                let is_reverse = matches!(
                    self.faults.fault(*fid).target,
                    FaultTarget::MiddleAsReverse { .. }
                );
                if !is_reverse && route.as_hops[..=i].iter().any(|x| x.asn == *fasn) {
                    rtt += ms;
                }
            }
            // Day-long internal drift applies from its AS onward, same
            // as a middle fault would (it lives in the same hops).
            if let Some((dasn, dms)) = drift {
                if route.as_hops[..=i].iter().any(|x| x.asn == dasn) {
                    rtt += dms;
                }
            }
            let is_last = i == n_hops - 1;
            if is_last {
                // Final hop sits past the last mile, inside the client
                // network.
                rtt +=
                    self.cfg.latency.last_mile_ms(c) + gt.client_fault_infl_ms + gt.congestion_ms;
            }
            rtt += rng.normal() * noise.hop_sigma_ms;
            let responded = i == 0 || is_last || !rng.chance(noise.non_response_prob);
            hops.push(TracerouteHop {
                asn: h.asn,
                metro: h.metro,
                rtt_ms: rtt.max(0.1),
                responded,
                segment: if i == 0 {
                    Segment::Cloud
                } else if is_last {
                    Segment::Client
                } else {
                    Segment::Middle
                },
            });
        }
        Some(Traceroute {
            loc,
            p24,
            at: t,
            hops,
        })
    }

    /// A client-coordinated **reverse** traceroute (client → cloud),
    /// the §5.1 extension: "Azure already has many users with rich
    /// clients that can be coordinated to issue traceroutes to measure
    /// the client-to-cloud paths." Hops run client-first; reverse-path
    /// middle faults inflate hops at/after the faulty AS, so a
    /// reverse diff *can* localize what the forward probe cannot.
    pub fn reverse_traceroute(
        &self,
        loc: CloudLocId,
        p24: Prefix24,
        t: SimTime,
    ) -> Option<Traceroute> {
        let c = self.topo.client(p24)?;
        let route = self.reverse_route_at(loc, c, t).clone();
        let gt = self.ground_truth(loc, c, t);
        let noise = self.cfg.traceroute_noise;
        let mut rng = DetRng::from_keys(
            self.cfg.seed,
            &[0x4EFA, loc.0 as u64, p24.block() as u64, t.secs()],
        );
        let total = route.total_oneway_ms;
        let n_hops = route.as_hops.len();
        // Client-first hop order; cumulative one-way from the client =
        // total − (cum from cloud at the PREVIOUS hop).
        let mut hops = Vec::with_capacity(n_hops);
        for (j, h) in route.as_hops.iter().enumerate().rev() {
            let from_client = if j == 0 {
                total
            } else {
                total - route.as_hops[j - 1].cum_oneway_ms
            };
            let mut rtt = 2.0 * from_client + self.cfg.latency.last_mile_ms(c);
            // Reverse middle faults apply once the probe has crossed
            // the faulty AS (client side first).
            for f in self.faults.active_at(t) {
                if let FaultTarget::MiddleAsReverse { asn } = f.target {
                    if route.as_hops[j..].iter().any(|x| x.asn == asn) {
                        rtt += f.added_ms;
                    }
                }
            }
            // Forward faults and client faults inflate every reply.
            rtt += gt
                .middle_infl
                .iter()
                .filter(|(_, _, fid)| {
                    !matches!(
                        self.faults.fault(*fid).target,
                        FaultTarget::MiddleAsReverse { .. }
                    )
                })
                .map(|(_, ms, _)| ms)
                .sum::<f64>();
            rtt += gt.client_fault_infl_ms + gt.congestion_ms;
            if j == 0 {
                // Final hop reaches the cloud location itself.
                rtt += gt.cloud_infl_ms + self.topo.cloud_location(loc).base_cloud_ms;
            }
            rtt += rng.normal() * noise.hop_sigma_ms;
            let is_first = j == n_hops - 1;
            let is_last = j == 0;
            let responded = is_first || is_last || !rng.chance(noise.non_response_prob);
            hops.push(TracerouteHop {
                asn: h.asn,
                metro: h.metro,
                rtt_ms: rtt.max(0.1),
                responded,
                segment: if is_last {
                    Segment::Cloud
                } else if is_first {
                    Segment::Client
                } else {
                    Segment::Middle
                },
            });
        }
        Some(Traceroute {
            loc,
            p24,
            at: t,
            hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world(days: u64, seed: u64) -> World {
        World::new(WorldConfig::tiny(days, seed))
    }

    #[test]
    fn quartets_deterministic_and_isolated() {
        let w = tiny_world(1, 42);
        let b = TimeBucket(100);
        let all = w.quartets_in(b);
        assert!(!all.is_empty());
        // Re-deriving a single quartet matches the batch result.
        for q in all.iter().take(20) {
            let c = w.topology().client(q.p24).unwrap();
            let again = w.quartet(q.loc, c, b).unwrap();
            assert_eq!(&again, q);
        }
    }

    #[test]
    fn quartet_none_for_unrelated_location() {
        let w = tiny_world(1, 42);
        let c = &w.topology().clients[0];
        let other = w
            .topology()
            .cloud_locations
            .iter()
            .find(|l| l.id != c.primary_loc && Some(l.id) != c.secondary_loc)
            .unwrap();
        assert!(w.quartet(other.id, c, TimeBucket(10)).is_none());
    }

    #[test]
    fn rtt_records_consistent_with_quartet() {
        let w = tiny_world(1, 7);
        let b = TimeBucket(130);
        let mut checked = 0;
        for c in &w.topology().clients {
            if let Some(q) = w.quartet(c.primary_loc, c, b) {
                let recs = w.rtt_records(c.primary_loc, c, b);
                assert_eq!(recs.len() as u32, q.n);
                // Same underlying mean; independent noise draws (and a
                // spike can dominate a small sample), so only compare
                // well-populated quartets, within a loose band.
                if q.n >= 20 {
                    let mean: f64 = recs.iter().map(|r| r.rtt_ms).sum::<f64>() / recs.len() as f64;
                    let rel = (mean - q.mean_rtt_ms).abs() / q.mean_rtt_ms;
                    assert!(rel < 0.25, "rel diff {rel} (n={})", q.n);
                    checked += 1;
                }
                if checked > 30 {
                    break;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn cloud_fault_shows_in_ground_truth_and_rtt() {
        let mut w = tiny_world(1, 9);
        let loc = w.topology().cloud_locations[0].id;
        w.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start: SimTime(0),
            duration_secs: 86_400,
            added_ms: 100.0,
        }]);
        let c = w
            .topology()
            .clients
            .iter()
            .find(|c| c.primary_loc == loc)
            .expect("location serves someone")
            .clone();
        let gt = w.ground_truth(loc, &c, SimTime(1000));
        assert!(gt.cloud_infl_ms >= 100.0);
        let culprit = gt.culprit.expect("100 ms is material");
        assert_eq!(culprit.segment, Segment::Cloud);
        assert_eq!(culprit.asn, w.topology().cloud_asn);
    }

    #[test]
    fn middle_fault_scoped_to_path() {
        let w = tiny_world(1, 21);
        // Find a client whose primary route has a middle AS.
        let (c, asn) = w
            .topology()
            .clients
            .iter()
            .find_map(|c| {
                let r = w.route_at(c.primary_loc, c, SimTime(0));
                let mid = &w.topology().paths.get(r.path_id).middle;
                mid.first().map(|a| (c.clone(), *a))
            })
            .expect("some path has a middle AS");
        let route = w.route_at(c.primary_loc, &c, SimTime(0)).clone();
        let mut w2 = w.clone();
        w2.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: Some(route.path_id),
            },
            start: SimTime(0),
            duration_secs: 86_400,
            added_ms: 80.0,
        }]);
        let gt = w2.ground_truth(c.primary_loc, &c, SimTime(600));
        assert!(
            gt.middle_infl
                .iter()
                .any(|(a, ms, _)| *a == asn && *ms >= 80.0),
            "scoped middle fault must hit its own path"
        );
        // A client on a different path via a different middle is spared.
        let other = w2
            .topology()
            .clients
            .iter()
            .find(|o| {
                let r = w2.route_at(o.primary_loc, o, SimTime(600));
                r.path_id != route.path_id
            })
            .unwrap();
        let gt2 = w2.ground_truth(other.primary_loc, other, SimTime(600));
        assert!(gt2
            .middle_infl
            .iter()
            .all(|(_, _, fid)| *fid != FaultId(0) || gt2.middle_infl.is_empty()));
    }

    #[test]
    fn traceroute_reflects_middle_fault() {
        let w = tiny_world(1, 33);
        let (c, asn) = w
            .topology()
            .clients
            .iter()
            .find_map(|c| {
                let r = w.route_at(c.primary_loc, c, SimTime(0));
                let mid = &w.topology().paths.get(r.path_id).middle;
                mid.first().map(|a| (c.clone(), *a))
            })
            .unwrap();
        let before = w.traceroute(c.primary_loc, c.p24, SimTime(600)).unwrap();
        let mut w2 = w.clone();
        w2.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: None,
            },
            start: SimTime(0),
            duration_secs: 86_400,
            added_ms: 60.0,
        }]);
        let after = w2.traceroute(c.primary_loc, c.p24, SimTime(600)).unwrap();
        // Contribution of the faulty AS rises by ~60 ms.
        let contr = |t: &Traceroute| -> f64 {
            t.as_contributions()
                .iter()
                .filter(|(a, _)| *a == asn)
                .map(|(_, ms)| *ms)
                .sum()
        };
        let delta = contr(&after) - contr(&before);
        assert!(
            (delta - 60.0).abs() < 10.0,
            "expected ~60 ms rise at {asn}, got {delta}"
        );
        // End-to-end inflates too.
        assert!(after.end_to_end_ms().unwrap() > before.end_to_end_ms().unwrap() + 40.0);
    }

    #[test]
    fn traceroute_unknown_prefix_is_none() {
        let w = tiny_world(1, 1);
        assert!(w
            .traceroute(CloudLocId(0), Prefix24::from_block(0xFFFFFF), SimTime(0))
            .is_none());
    }

    #[test]
    fn ground_truth_congestion_counts_toward_client() {
        let w = tiny_world(1, 13);
        // Scan for a home-broadband client in its local evening with
        // material congestion.
        let mut found = false;
        'outer: for c in w
            .topology()
            .clients
            .iter()
            .filter(|c| !c.mobile && !c.enterprise)
        {
            for h in 0..24u64 {
                let t = SimTime::from_hours(h);
                let gt = w.ground_truth(c.primary_loc, c, t);
                if gt.congestion_ms > 5.0
                    && gt.cloud_infl_ms == 0.0
                    && gt.middle_infl.is_empty()
                    && gt.client_fault_infl_ms == 0.0
                {
                    if let Some(culprit) = gt.culprit {
                        assert_eq!(culprit.segment, Segment::Client);
                        assert_eq!(culprit.asn, c.origin);
                        assert_eq!(culprit.fault, None);
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no congested evening quartet found");
    }

    #[test]
    fn world_generation_deterministic() {
        let a = tiny_world(2, 5);
        let b = tiny_world(2, 5);
        assert_eq!(a.faults().len(), b.faults().len());
        let qa = a.quartets_in(TimeBucket(50));
        let qb = b.quartets_in(TimeBucket(50));
        assert_eq!(qa, qb);
    }
}
