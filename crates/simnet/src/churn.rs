//! BGP route churn over time.
//!
//! The generator gives every (location, announced prefix) a primary
//! route and alternates ([`blameit_topology::bgp::RouteOptions`]);
//! this module decides *which* option is live at each instant. Change
//! points arrive as a Poisson process per route, tuned so that about
//! two-thirds of routes see no churn in a day — the stability the
//! paper measured from Azure's IBGP feed ("nearly two-thirds of the
//! BGP paths at the routers do not see any churn in an entire day",
//! §5.4). Every change point is also exported as a
//! [`BgpChurnEvent`], the simulated IBGP-listener feed that triggers
//! background traceroutes.

use crate::time::{SimTime, TimeRange};
use blameit_topology::bgp::{BgpChurnEvent, RouteOption};
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, Topology};
use std::collections::HashMap;

/// Churn state for a whole simulation run.
#[derive(Clone, Debug)]
pub struct ChurnModel {
    /// Change instants per (location, prefix index), sorted ascending.
    /// Routes with a single option or no events are absent.
    events: HashMap<(CloudLocId, u32), Vec<SimTime>>,
    /// All events flattened and time-sorted: `(at, loc, prefix_idx,
    /// flip ordinal)`. The analysis engine asks for "events since the
    /// last tick" thousands of times per run; slicing this index is
    /// O(log n + answer) instead of a full-map scan.
    timeline: Vec<(SimTime, CloudLocId, u32, u32)>,
    /// Expected change points per route per day.
    rate_per_day: f64,
}

impl ChurnModel {
    /// Generates churn for all (location, prefix) routes over `range`.
    /// `rate_per_day = 0.4` reproduces the paper's two-thirds-stable
    /// observation (`P[Poisson(0.4) = 0] ≈ 0.67`).
    pub fn generate(topo: &Topology, range: TimeRange, rate_per_day: f64, seed: u64) -> Self {
        let mut events = HashMap::new();
        let days = range.secs() as f64 / 86_400.0;
        for (pi, p) in topo.prefixes.iter().enumerate() {
            for loc in &topo.cloud_locations {
                let ro = topo.bgp.lookup(loc.id, p.prefix).expect("bound");
                if ro.options.len() < 2 {
                    continue; // nowhere to churn to
                }
                let mut rng = DetRng::from_keys(seed, &[0xC4_42, loc.id.0 as u64, pi as u64]);
                let n = rng.poisson(rate_per_day * days);
                if n == 0 {
                    continue;
                }
                let mut times: Vec<SimTime> = (0..n)
                    .map(|_| range.start + rng.below(range.secs()))
                    .collect();
                times.sort();
                times.dedup();
                events.insert((loc.id, pi as u32), times);
            }
        }
        let mut timeline: Vec<(SimTime, CloudLocId, u32, u32)> = events
            .iter()
            .flat_map(|((loc, pi), times)| {
                times
                    .iter()
                    .enumerate()
                    .map(move |(k, t)| (*t, *loc, *pi, k as u32))
            })
            .collect();
        timeline.sort();
        ChurnModel {
            events,
            timeline,
            rate_per_day,
        }
    }

    /// A churn-free model (for controlled experiments).
    pub fn none() -> Self {
        ChurnModel {
            events: HashMap::new(),
            timeline: Vec::new(),
            rate_per_day: 0.0,
        }
    }

    /// The configured rate.
    pub fn rate_per_day(&self) -> f64 {
        self.rate_per_day
    }

    /// Index of the live route option for (loc, prefix index) at `t`:
    /// the number of change points at or before `t`, cycling through
    /// the available options.
    pub fn option_index(
        &self,
        loc: CloudLocId,
        prefix_idx: u32,
        n_options: usize,
        t: SimTime,
    ) -> usize {
        if n_options <= 1 {
            return 0;
        }
        match self.events.get(&(loc, prefix_idx)) {
            None => 0,
            Some(times) => {
                let flips = times.partition_point(|x| *x <= t);
                flips % n_options
            }
        }
    }

    /// The live route option at `t`.
    pub fn route_at<'a>(
        &self,
        topo: &'a Topology,
        loc: CloudLocId,
        prefix_idx: u32,
        t: SimTime,
    ) -> &'a RouteOption {
        let p = &topo.prefixes[prefix_idx as usize];
        let ro = topo.bgp.lookup(loc, p.prefix).expect("bound");
        let i = self.option_index(loc, prefix_idx, ro.options.len(), t);
        &ro.options[i]
    }

    /// All churn events in `range`, as the IBGP listener would report
    /// them, sorted by time (ties broken by location and prefix).
    pub fn events_in(&self, topo: &Topology, range: TimeRange) -> Vec<BgpChurnEvent> {
        let lo = self
            .timeline
            .partition_point(|(t, _, _, _)| *t < range.start);
        let hi = self.timeline.partition_point(|(t, _, _, _)| *t < range.end);
        let mut out: Vec<BgpChurnEvent> = self.timeline[lo..hi]
            .iter()
            .map(|(t, loc, pi, k)| {
                let p = &topo.prefixes[*pi as usize];
                let ro = topo.bgp.lookup(*loc, p.prefix).expect("bound");
                let n = ro.options.len();
                let old = *k as usize % n;
                let new = (*k as usize + 1) % n;
                BgpChurnEvent {
                    at_secs: t.secs(),
                    loc: *loc,
                    prefix: p.prefix,
                    old_path: ro.options[old].path_id,
                    new_path: ro.options[new].path_id,
                }
            })
            .collect();
        out.sort_by_key(|e| (e.at_secs, e.loc, e.prefix));
        out
    }

    /// Number of routes with at least one change point.
    pub fn churning_routes(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::generate(TopologyConfig::tiny(5))
    }

    #[test]
    fn none_model_is_static() {
        let t = topo();
        let m = ChurnModel::none();
        for c in t.clients.iter().take(10) {
            let a = m.route_at(&t, c.primary_loc, c.prefix_idx, SimTime(0));
            let b = m.route_at(&t, c.primary_loc, c.prefix_idx, SimTime(86_400 * 30));
            assert_eq!(a.path_id, b.path_id);
        }
        assert_eq!(m.churning_routes(), 0);
    }

    #[test]
    fn two_thirds_of_routes_stable_per_day() {
        let t = Topology::with_seed(31);
        let m = ChurnModel::generate(&t, TimeRange::days(1), 0.4, 77);
        // Count (loc, prefix) routes with ≥2 options (churn-capable).
        let mut capable = 0usize;
        for p in &t.prefixes {
            for loc in &t.cloud_locations {
                if t.bgp.lookup(loc.id, p.prefix).unwrap().options.len() >= 2 {
                    capable += 1;
                }
            }
        }
        let stable_frac = 1.0 - m.churning_routes() as f64 / capable as f64;
        assert!(
            (0.58..0.78).contains(&stable_frac),
            "stable fraction {stable_frac}"
        );
    }

    #[test]
    fn option_index_steps_at_events() {
        let t = topo();
        let m = ChurnModel::generate(&t, TimeRange::days(7), 1.0, 3);
        // Find a route with events.
        let ((loc, pi), times) = m
            .events
            .iter()
            .next()
            .expect("7 days at rate 1/day must churn something");
        let p = &t.prefixes[*pi as usize];
        let n = t.bgp.lookup(*loc, p.prefix).unwrap().options.len();
        let before = m.option_index(*loc, *pi, n, times[0] - 1);
        let after = m.option_index(*loc, *pi, n, times[0]);
        assert_eq!(before, 0);
        assert_eq!(after, 1 % n);
    }

    #[test]
    fn events_sorted_and_in_range() {
        let t = topo();
        let m = ChurnModel::generate(&t, TimeRange::days(7), 1.0, 9);
        let r = TimeRange::new(SimTime::from_days(2), SimTime::from_days(4));
        let evs = m.events_in(&t, r);
        for w in evs.windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
        for e in &evs {
            assert!(r.contains(SimTime(e.at_secs)));
            // old/new path ids may coincide when two route options share
            // the same AS sequence over different PoPs; the IBGP
            // listener still reports the change.
        }
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let a = ChurnModel::generate(&t, TimeRange::days(3), 0.5, 11);
        let b = ChurnModel::generate(&t, TimeRange::days(3), 0.5, 11);
        assert_eq!(a.churning_routes(), b.churning_routes());
        assert_eq!(
            a.events_in(&t, TimeRange::days(3)),
            b.events_in(&t, TimeRange::days(3))
        );
    }
}
