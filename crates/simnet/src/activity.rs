//! Client activity: who connects, when, and how much.
//!
//! Drives two effects the paper measures: the diurnal badness pattern of
//! Fig. 3 (nights are *worse* because off-work connections come from
//! home ISPs rather than well-provisioned enterprise networks, §2.2)
//! and the impact skew of §2.4 (the affected-client count of an issue
//! depends on how many clients were active during it).

use crate::time::{local_hour, SimTime};
use blameit_topology::gen::ClientBlock;
use blameit_topology::rng::DetRng;
use blameit_topology::Topology;

/// Tunable activity parameters.
#[derive(Clone, Copy, Debug)]
pub struct ActivityModel {
    /// Expected TCP connections per active client per 5-minute bucket
    /// at the diurnal peak.
    pub conns_per_client_bucket: f64,
    /// Fraction of a block's primary-location volume that also flows to
    /// its secondary location (if it has one).
    pub secondary_volume_frac: f64,
}

impl Default for ActivityModel {
    fn default() -> Self {
        ActivityModel {
            conns_per_client_bucket: 0.6,
            secondary_volume_frac: 0.25,
        }
    }
}

impl ActivityModel {
    /// Relative activity level in `[0, 1]` for a client class at a
    /// local solar hour.
    ///
    /// * Enterprise blocks peak during working hours and go nearly
    ///   silent on weekends.
    /// * Home broadband peaks in the evening.
    /// * Mobile is flatter with an evening lean.
    pub fn diurnal_factor(lh: f64, weekend: bool, enterprise: bool, mobile: bool) -> f64 {
        if enterprise {
            let base = if (8.0..18.0).contains(&lh) { 1.0 } else { 0.08 };
            return if weekend { base * 0.12 } else { base };
        }
        if mobile {
            let base: f64 = match lh {
                h if (0.0..6.0).contains(&h) => 0.22,
                h if (6.0..9.0).contains(&h) => 0.6,
                h if (9.0..17.0).contains(&h) => 0.75,
                h if (17.0..23.0).contains(&h) => 0.95,
                _ => 0.45,
            };
            return if weekend {
                (base * 1.15).min(1.0)
            } else {
                base
            };
        }
        // Home broadband.
        let base: f64 = match lh {
            h if (0.0..6.0).contains(&h) => 0.12,
            h if (6.0..9.0).contains(&h) => 0.35,
            h if (9.0..17.0).contains(&h) => 0.4,
            h if (17.0..19.0).contains(&h) => 0.75,
            h if (19.0..23.0).contains(&h) => 1.0,
            _ => 0.5,
        };
        if weekend {
            (base + 0.25).min(1.0)
        } else {
            base
        }
    }

    /// Expected connections from a block to its *primary* location in
    /// the bucket containing `t`.
    pub fn expected_connections(&self, topo: &Topology, c: &ClientBlock, t: SimTime) -> f64 {
        let lon = topo.metro(c.metro).location.lon;
        let lh = local_hour(t, lon);
        let f = Self::diurnal_factor(lh, t.is_weekend(), c.enterprise, c.mobile);
        c.population as f64 * f * self.conns_per_client_bucket
    }

    /// Samples the connection count to a location: Poisson around the
    /// expectation (scaled down for the secondary location).
    pub fn sample_connections(
        &self,
        topo: &Topology,
        c: &ClientBlock,
        t: SimTime,
        secondary: bool,
        rng: &mut DetRng,
    ) -> u32 {
        let mut mean = self.expected_connections(topo, c, t);
        if secondary {
            mean *= self.secondary_volume_frac;
        }
        rng.poisson(mean).min(100_000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_topology::TopologyConfig;

    #[test]
    fn enterprise_peaks_in_work_hours() {
        let work = ActivityModel::diurnal_factor(11.0, false, true, false);
        let night = ActivityModel::diurnal_factor(2.0, false, true, false);
        let weekend = ActivityModel::diurnal_factor(11.0, true, true, false);
        assert!(work > 5.0 * night);
        assert!(work > 5.0 * weekend);
    }

    #[test]
    fn home_peaks_in_evening() {
        let evening = ActivityModel::diurnal_factor(20.0, false, false, false);
        let work = ActivityModel::diurnal_factor(11.0, false, false, false);
        let night = ActivityModel::diurnal_factor(3.0, false, false, false);
        assert!(evening > work);
        assert!(work > night);
        assert!((0.0..=1.0).contains(&evening));
    }

    #[test]
    fn weekend_shifts_home_up_enterprise_down() {
        let home_wd = ActivityModel::diurnal_factor(14.0, false, false, false);
        let home_we = ActivityModel::diurnal_factor(14.0, true, false, false);
        assert!(home_we > home_wd);
        let ent_wd = ActivityModel::diurnal_factor(14.0, false, true, false);
        let ent_we = ActivityModel::diurnal_factor(14.0, true, true, false);
        assert!(ent_we < ent_wd);
    }

    #[test]
    fn factors_bounded() {
        for lh in 0..24 {
            for (weekend, ent, mob) in [
                (false, false, false),
                (true, false, false),
                (false, true, false),
                (true, true, false),
                (false, false, true),
                (true, false, true),
            ] {
                let f = ActivityModel::diurnal_factor(lh as f64 + 0.5, weekend, ent, mob);
                assert!((0.0..=1.0).contains(&f), "lh={lh} f={f}");
            }
        }
    }

    #[test]
    fn expected_connections_scale_with_population() {
        let topo = blameit_topology::Topology::generate(TopologyConfig::tiny(2));
        let m = ActivityModel::default();
        let c = &topo.clients[0];
        let mut big = c.clone();
        big.population = c.population * 10;
        let t = SimTime::from_hours(20);
        let base = m.expected_connections(&topo, c, t);
        let more = m.expected_connections(&topo, &big, t);
        assert!((more / base - 10.0).abs() < 1e-9);
    }

    #[test]
    fn secondary_volume_reduced() {
        let topo = blameit_topology::Topology::generate(TopologyConfig::tiny(2));
        let m = ActivityModel::default();
        // Pick a populous block so Poisson noise doesn't swamp the signal.
        let c = topo.clients.iter().max_by_key(|c| c.population).unwrap();
        let t = SimTime::from_hours(20);
        let mut sum_p = 0u64;
        let mut sum_s = 0u64;
        for i in 0..200 {
            let mut r1 = DetRng::from_keys(1, &[i]);
            let mut r2 = DetRng::from_keys(2, &[i]);
            sum_p += m.sample_connections(&topo, c, t, false, &mut r1) as u64;
            sum_s += m.sample_connections(&topo, c, t, true, &mut r2) as u64;
        }
        assert!(sum_s * 2 < sum_p, "secondary {sum_s} vs primary {sum_p}");
    }
}
