//! Property-based tests for the telemetry simulator.

use blameit_simnet::time::{local_hour, BUCKETS_PER_DAY, BUCKET_SECS};
use blameit_simnet::{
    Fault, FaultId, FaultSchedule, FaultTarget, SimTime, TimeBucket, TimeRange,
};
use blameit_topology::{Asn, CloudLocId};
use proptest::prelude::*;

proptest! {
    /// Bucket arithmetic: every instant falls in exactly its bucket.
    #[test]
    fn bucket_contains_instant(secs in 0u64..10_000_000) {
        let t = SimTime(secs);
        let b = t.bucket();
        prop_assert!(b.start() <= t);
        prop_assert!(t < b.end());
        prop_assert_eq!(b.end().secs() - b.start().secs(), BUCKET_SECS);
        prop_assert_eq!(b.slot_in_day(), b.0 % BUCKETS_PER_DAY);
        prop_assert_eq!(b.day(), t.day());
    }

    /// Range bucket iteration is contiguous and inside the range.
    #[test]
    fn range_buckets_contiguous(start in 0u64..1_000_000, len in 0u64..200_000) {
        let r = TimeRange::new(SimTime(start), SimTime(start + len));
        let buckets: Vec<TimeBucket> = r.buckets().collect();
        prop_assert_eq!(buckets.len() as u32, r.num_buckets());
        for w in buckets.windows(2) {
            prop_assert_eq!(w[1].0, w[0].0 + 1);
        }
        for b in &buckets {
            prop_assert!(r.contains(b.start()));
        }
    }

    /// Local solar hour stays in [0, 24) for any longitude.
    #[test]
    fn local_hour_bounded(secs in 0u64..10_000_000, lon in -180.0f64..180.0) {
        let h = local_hour(SimTime(secs), lon);
        prop_assert!((0.0..24.0).contains(&h), "{h}");
    }

    /// FaultSchedule::active_at equals a linear scan, for arbitrary
    /// fault sets and probe instants.
    #[test]
    fn active_at_equals_linear_scan(
        faults in proptest::collection::vec(
            (0u64..100_000, 60u64..50_000, 10.0f64..100.0),
            0..40
        ),
        probes in proptest::collection::vec(0u64..200_000, 1..20)
    ) {
        let fault_objs: Vec<Fault> = faults
            .iter()
            .map(|(start, dur, ms)| Fault {
                id: FaultId(0),
                target: FaultTarget::CloudLocation(CloudLocId(0)),
                start: SimTime(*start),
                duration_secs: *dur,
                added_ms: *ms,
            })
            .collect();
        let schedule = FaultSchedule::from_faults(fault_objs);
        for p in probes {
            let t = SimTime(p);
            let fast: Vec<FaultId> = schedule.active_at(t).map(|f| f.id).collect();
            let slow: Vec<FaultId> = schedule
                .faults()
                .iter()
                .filter(|f| f.active_at(t))
                .map(|f| f.id)
                .collect();
            prop_assert_eq!(fast, slow);
        }
    }

    /// Schedules are sorted and ids are dense after from_faults,
    /// regardless of input order.
    #[test]
    fn from_faults_normalizes(mut starts in proptest::collection::vec(0u64..100_000, 1..50)) {
        starts.reverse();
        let faults: Vec<Fault> = starts
            .iter()
            .map(|s| Fault {
                id: FaultId(9999),
                target: FaultTarget::MiddleAs { asn: Asn(1), via_path: None },
                start: SimTime(*s),
                duration_secs: 60,
                added_ms: 10.0,
            })
            .collect();
        let schedule = FaultSchedule::from_faults(faults);
        for (i, f) in schedule.faults().iter().enumerate() {
            prop_assert_eq!(f.id, FaultId(i as u32));
            if i > 0 {
                prop_assert!(schedule.faults()[i - 1].start <= f.start);
            }
        }
    }
}
