//! Property-based tests for the telemetry simulator, driven by the
//! in-repo seeded harness in `blameit_topology::testkit`.

use blameit_simnet::time::{local_hour, BUCKETS_PER_DAY, BUCKET_SECS};
use blameit_simnet::{Fault, FaultId, FaultSchedule, FaultTarget, SimTime, TimeBucket, TimeRange};
use blameit_topology::testkit::check;
use blameit_topology::{Asn, CloudLocId};

/// Bucket arithmetic: every instant falls in exactly its bucket.
#[test]
fn bucket_contains_instant() {
    check("bucket_contains_instant", 256, |rng| {
        let secs = rng.below(10_000_000);
        let t = SimTime(secs);
        let b = t.bucket();
        assert!(b.start() <= t);
        assert!(t < b.end());
        assert_eq!(b.end().secs() - b.start().secs(), BUCKET_SECS);
        assert_eq!(b.slot_in_day(), b.0 % BUCKETS_PER_DAY);
        assert_eq!(b.day(), t.day());
    });
}

/// Range bucket iteration is contiguous and inside the range.
#[test]
fn range_buckets_contiguous() {
    check("range_buckets_contiguous", 128, |rng| {
        let start = rng.below(1_000_000);
        let len = rng.below(200_000);
        let r = TimeRange::new(SimTime(start), SimTime(start + len));
        let buckets: Vec<TimeBucket> = r.buckets().collect();
        assert_eq!(buckets.len() as u32, r.num_buckets());
        for w in buckets.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
        for b in &buckets {
            assert!(r.contains(b.start()));
        }
    });
}

/// Local solar hour stays in [0, 24) for any longitude.
#[test]
fn local_hour_bounded() {
    check("local_hour_bounded", 256, |rng| {
        let secs = rng.below(10_000_000);
        let lon = rng.range_f64(-180.0, 180.0);
        let h = local_hour(SimTime(secs), lon);
        assert!((0.0..24.0).contains(&h), "{h}");
    });
}

/// FaultSchedule::active_at equals a linear scan, for arbitrary fault
/// sets and probe instants.
#[test]
fn active_at_equals_linear_scan() {
    check("active_at_equals_linear_scan", 64, |rng| {
        let nfaults = rng.below(40) as usize;
        let fault_objs: Vec<Fault> = (0..nfaults)
            .map(|_| Fault {
                id: FaultId(0),
                target: FaultTarget::CloudLocation(CloudLocId(0)),
                start: SimTime(rng.below(100_000)),
                duration_secs: rng.range_u64(60, 49_999),
                added_ms: rng.range_f64(10.0, 100.0),
            })
            .collect();
        let schedule = FaultSchedule::from_faults(fault_objs);
        let nprobes = rng.range_u64(1, 19) as usize;
        for _ in 0..nprobes {
            let t = SimTime(rng.below(200_000));
            let fast: Vec<FaultId> = schedule.active_at(t).map(|f| f.id).collect();
            let slow: Vec<FaultId> = schedule
                .faults()
                .iter()
                .filter(|f| f.active_at(t))
                .map(|f| f.id)
                .collect();
            assert_eq!(fast, slow);
        }
    });
}

/// Schedules are sorted and ids are dense after from_faults, regardless
/// of input order.
#[test]
fn from_faults_normalizes() {
    check("from_faults_normalizes", 128, |rng| {
        let n = rng.range_u64(1, 49) as usize;
        let mut starts: Vec<u64> = (0..n).map(|_| rng.below(100_000)).collect();
        starts.reverse();
        let faults: Vec<Fault> = starts
            .iter()
            .map(|s| Fault {
                id: FaultId(9999),
                target: FaultTarget::MiddleAs {
                    asn: Asn(1),
                    via_path: None,
                },
                start: SimTime(*s),
                duration_secs: 60,
                added_ms: 10.0,
            })
            .collect();
        let schedule = FaultSchedule::from_faults(faults);
        for (i, f) in schedule.faults().iter().enumerate() {
            assert_eq!(f.id, FaultId(i as u32));
            if i > 0 {
                assert!(schedule.faults()[i - 1].start <= f.start);
            }
        }
    });
}
