//! Tests for the §5.1 extension: reverse routing, reverse-direction
//! faults, and client-coordinated reverse traceroutes.

use blameit_simnet::{Fault, FaultId, FaultRates, FaultTarget, SimTime, World, WorldConfig};

fn quiet_world(seed: u64) -> World {
    let mut cfg = WorldConfig::tiny(2, seed);
    cfg.fault_rates = FaultRates {
        cloud_per_loc_day: 0.0,
        middle_per_as_day: 0.0,
        client_as_per_day: 0.0,
        client_prefix_per_k_day: 0.0,
        middle_path_scoped_frac: 0.0,
    };
    cfg.churn_rate_per_day = 0.0;
    World::new(cfg)
}

#[test]
fn reverse_route_is_deterministic_and_sometimes_differs() {
    let w = quiet_world(3);
    let t = SimTime::from_hours(10);
    let mut asymmetric = 0;
    let mut total = 0;
    for c in &w.topology().clients {
        let f = w.route_at(c.primary_loc, c, t);
        let r1 = w.reverse_route_at(c.primary_loc, c, t);
        let r2 = w.reverse_route_at(c.primary_loc, c, t);
        assert_eq!(
            r1.path_id, r2.path_id,
            "reverse choice must be deterministic"
        );
        total += 1;
        if r1.path_id != f.path_id || r1.total_oneway_ms != f.total_oneway_ms {
            asymmetric += 1;
        }
    }
    let frac = asymmetric as f64 / total as f64;
    assert!(
        (0.1..0.6).contains(&frac),
        "~40% of multi-option routes should be asymmetric; got {frac}"
    );
}

#[test]
fn reverse_fault_inflates_rtt_but_not_forward_hop_structure() {
    let w0 = quiet_world(5);
    // A client whose reverse path has a middle AS.
    let t = SimTime::from_hours(30);
    let (c, asn) = w0
        .topology()
        .clients
        .iter()
        .find_map(|c| {
            let rev = w0.reverse_route_at(c.primary_loc, c, t);
            w0.topology()
                .paths
                .get(rev.path_id)
                .middle
                .first()
                .map(|a| (c.clone(), *a))
        })
        .expect("some reverse path has a middle AS");

    let mut w = w0.clone();
    w.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::MiddleAsReverse { asn },
        start: SimTime::from_hours(28),
        duration_secs: 8 * 3_600,
        added_ms: 75.0,
    }]);

    // Ground truth sees the inflation as a middle issue.
    let gt = w.ground_truth(c.primary_loc, &c, t);
    assert!(
        gt.middle_infl
            .iter()
            .any(|(a, ms, _)| *a == asn && *ms >= 75.0),
        "reverse fault must inflate the handshake RTT"
    );

    // The forward traceroute inflates uniformly: every responding hop
    // rose by ~the fault, so per-AS deltas beyond the first hop are
    // small.
    let before = w0.traceroute(c.primary_loc, c.p24, t).unwrap();
    let after = w.traceroute(c.primary_loc, c.p24, t).unwrap();
    let d_first = after.hops[0].rtt_ms - before.hops[0].rtt_ms;
    let d_last = after.end_to_end_ms().unwrap() - before.end_to_end_ms().unwrap();
    assert!(
        d_first > 60.0,
        "first hop already carries the reply delay: {d_first}"
    );
    assert!(
        (d_last - d_first).abs() < 15.0,
        "shift is uniform: {d_first} vs {d_last}"
    );

    // The reverse traceroute localizes it: the faulty AS's contribution
    // rises by ~the fault.
    let rev_before = w0.reverse_traceroute(c.primary_loc, c.p24, t).unwrap();
    let rev_after = w.reverse_traceroute(c.primary_loc, c.p24, t).unwrap();
    let contrib = |tr: &blameit_simnet::Traceroute| -> f64 {
        tr.as_contributions()
            .iter()
            .filter(|(a, _)| *a == asn)
            .map(|(_, ms)| *ms)
            .sum()
    };
    let delta = contrib(&rev_after) - contrib(&rev_before);
    assert!(
        (delta - 75.0).abs() < 20.0,
        "reverse probe pins the faulty AS: delta {delta}"
    );
}

#[test]
fn reverse_traceroute_runs_client_first() {
    let w = quiet_world(7);
    let c = &w.topology().clients[0];
    let t = SimTime::from_hours(12);
    let tr = w.reverse_traceroute(c.primary_loc, c.p24, t).unwrap();
    assert_eq!(
        tr.hops.first().unwrap().asn,
        c.origin,
        "first hop is the client AS"
    );
    assert_eq!(
        tr.hops.last().unwrap().asn,
        w.topology().cloud_asn,
        "last hop reaches the cloud"
    );
    // RTTs are positive and the endpoints responded.
    assert!(tr.hops.first().unwrap().responded);
    assert!(tr.hops.last().unwrap().responded);
    for h in &tr.hops {
        assert!(h.rtt_ms > 0.0);
    }
    // Unknown prefix → None.
    assert!(w
        .reverse_traceroute(
            c.primary_loc,
            blameit_topology::Prefix24::from_block(0xFFFFFF),
            t
        )
        .is_none());
}
