//! Whole-world invariants: the simulator's telemetry, traceroutes, and
//! ground truth must agree with each other across seeds.

use blameit_simnet::{Segment, SimTime, TimeBucket, World, WorldConfig};

fn worlds() -> impl Iterator<Item = World> {
    [11u64, 22, 33]
        .into_iter()
        .map(|s| World::new(WorldConfig::tiny(1, s)))
}

#[test]
fn quartet_means_center_on_ground_truth() {
    for w in worlds() {
        let bucket = TimeBucket(150);
        let mut rel_errors = Vec::new();
        for q in w.quartets_in(bucket) {
            let c = w.topology().client(q.p24).unwrap();
            let gt = w.ground_truth(q.loc, c, bucket.mid());
            if q.n >= 20 {
                rel_errors
                    .push((q.mean_rtt_ms - gt.inflated_total_ms()).abs() / gt.inflated_total_ms());
            }
        }
        assert!(!rel_errors.is_empty());
        let mean_err = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
        assert!(
            mean_err < 0.05,
            "quartet means must track ground truth: mean rel err {mean_err}"
        );
    }
}

#[test]
fn traceroute_end_to_end_tracks_ground_truth() {
    for w in worlds() {
        let t = SimTime::from_hours(30);
        let mut checked = 0;
        for c in w.topology().clients.iter().take(60) {
            let gt = w.ground_truth(c.primary_loc, c, t);
            let tr = w.traceroute(c.primary_loc, c.p24, t).unwrap();
            let e2e = tr.end_to_end_ms().unwrap();
            // Traceroute RTT ≈ handshake RTT (modulo the server-stack
            // and per-hop noise terms).
            let expect = gt.inflated_total_ms();
            assert!(
                (e2e - expect).abs() < 0.15 * expect + 5.0,
                "traceroute {e2e} vs ground truth {expect}"
            );
            checked += 1;
        }
        assert!(checked > 0);
    }
}

#[test]
fn ground_truth_culprit_matches_inflations() {
    for w in worlds() {
        let mut with_culprit = 0;
        for bucket in [50u32, 150, 250] {
            let bucket = TimeBucket(bucket);
            for q in w.quartets_in(bucket) {
                let c = w.topology().client(q.p24).unwrap();
                let gt = w.ground_truth(q.loc, c, bucket.mid());
                let total = gt.total_inflation_ms();
                if let Some(culprit) = gt.culprit {
                    with_culprit += 1;
                    assert!(total >= 5.0, "culprit implies material inflation");
                    assert!((0.0..=1.0 + 1e-9).contains(&gt.dominant_fraction));
                    // The culprit's own contribution is the max.
                    let client_total = gt.client_fault_infl_ms + gt.congestion_ms;
                    let max_middle = gt.middle_infl.iter().map(|m| m.1).fold(0.0f64, f64::max);
                    let winner = match culprit.segment {
                        Segment::Cloud => gt.cloud_infl_ms,
                        Segment::Middle => max_middle,
                        Segment::Client => client_total,
                    };
                    assert!(
                        winner >= gt.cloud_infl_ms.max(max_middle).max(client_total) - 1e-9,
                        "culprit segment must carry the largest inflation"
                    );
                } else {
                    assert!(total < 5.0 || gt.dominant_fraction <= 1.0);
                }
            }
        }
        assert!(
            with_culprit > 0,
            "faulty worlds must show culprits somewhere"
        );
    }
}

#[test]
fn secondary_connections_share_client_segment_faults() {
    // A client-AS fault must inflate the client's quartets at *both*
    // of its locations (the reason dual-homing doesn't make client
    // faults "ambiguous" wholesale).
    use blameit_simnet::{Fault, FaultId, FaultTarget};
    let mut w = World::new(WorldConfig::tiny(1, 44));
    let c = w
        .topology()
        .clients
        .iter()
        .find(|c| c.secondary_loc.is_some())
        .expect("a dual-homed client exists")
        .clone();
    w.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::ClientAs(c.origin),
        start: SimTime(0),
        duration_secs: 86_400,
        added_ms: 90.0,
    }]);
    let t = SimTime::from_hours(12);
    let gt_primary = w.ground_truth(c.primary_loc, &c, t);
    let gt_secondary = w.ground_truth(c.secondary_loc.unwrap(), &c, t);
    assert!(gt_primary.client_fault_infl_ms >= 90.0);
    assert!(gt_secondary.client_fault_infl_ms >= 90.0);
}

#[test]
fn cloned_world_is_identical() {
    let w = World::new(WorldConfig::tiny(1, 55));
    let w2 = w.clone();
    let b = TimeBucket(100);
    assert_eq!(w.quartets_in(b), w2.quartets_in(b));
    let c = &w.topology().clients[0];
    assert_eq!(
        w.traceroute(c.primary_loc, c.p24, SimTime(777)),
        w2.traceroute(c.primary_loc, c.p24, SimTime(777))
    );
}
