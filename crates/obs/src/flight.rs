//! Deterministic flight recorder: a bounded ring of recent tick
//! telemetry, dumpable as JSONL when something goes wrong.
//!
//! The recorder answers "what was the engine doing just before this?"
//! without keeping full traces forever: each completed tick contributes
//! one [`FlightFrame`] — the tick's canonical transcript, its stage
//! outline (names only; durations are wall clock and therefore banned),
//! and the tick's scalar metric deltas — and the ring keeps the most
//! recent `capacity` of them. Everything is keyed on **simulation
//! time**: no wall clocks, no thread identity, no iteration over
//! unordered containers, so a dump is byte-identical across thread
//! counts and across crash→recover→resume (the ring itself is part of
//! the engine snapshot).
//!
//! Dumps are requested by [`FlightTrigger`]s — degraded-verdict spikes,
//! chaos-absorption bursts, a recovery that had to fall back past torn
//! state, or an explicit operator request — and rendered by
//! [`FlightRecorder::dump_jsonl`]: one JSON object per line, trigger
//! log first, then frames oldest-first.

use crate::json::{push_json_f64, push_json_str};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity: enough recent ticks to cover a multi-hour
/// incident tail at the 15-minute tick cadence.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// Why a flight dump was requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightTrigger {
    /// A single tick produced an unusual number of degraded
    /// (`MiddleUnlocalized`) verdicts.
    DegradedSpike,
    /// A single tick's probe loop absorbed an unusual number of
    /// lost/late attempts (the chaos layer's signature).
    ChaosBurst,
    /// Crash recovery had to fall back past torn or missing state.
    RecoveryFallback,
    /// An explicit operator request (`blameit flight dump`).
    Manual,
    /// The ingest path stayed overloaded (shedding or backpressure)
    /// for several consecutive ticks — the daemon watchdog's signature.
    OverloadSustained,
}

impl FlightTrigger {
    /// Every trigger, in canonical order.
    pub const ALL: [FlightTrigger; 5] = [
        FlightTrigger::DegradedSpike,
        FlightTrigger::ChaosBurst,
        FlightTrigger::RecoveryFallback,
        FlightTrigger::Manual,
        FlightTrigger::OverloadSustained,
    ];

    /// Stable label (used in dump files, snapshots, and file names).
    pub fn label(self) -> &'static str {
        match self {
            FlightTrigger::DegradedSpike => "degraded-spike",
            FlightTrigger::ChaosBurst => "chaos-burst",
            FlightTrigger::RecoveryFallback => "recovery-fallback",
            FlightTrigger::Manual => "manual",
            FlightTrigger::OverloadSustained => "overload-sustained",
        }
    }

    /// Parses a [`label`](Self::label) back; `None` for unknown input.
    pub fn from_label(s: &str) -> Option<FlightTrigger> {
        FlightTrigger::ALL.into_iter().find(|t| t.label() == s)
    }
}

impl std::fmt::Display for FlightTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One completed tick's worth of telemetry.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightFrame {
    /// Simulation time of the tick's first bucket (seconds).
    pub sim_secs: u64,
    /// The tick's first bucket index.
    pub bucket: u32,
    /// The tick's canonical transcript (same renderer as the golden
    /// snapshot — byte-identical across thread counts).
    pub transcript: String,
    /// The span/stage outline: stage names in execution order.
    /// Durations are deliberately absent (wall clock).
    pub stages: Vec<String>,
    /// Scalar metric deltas attributable to this tick, sorted by name.
    /// Computed from the tick's own output — not by diffing a registry,
    /// which would not survive a process restart.
    pub deltas: Vec<(String, f64)>,
}

/// One trigger firing, keyed on sim time.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightDumpEvent {
    /// Simulation time the trigger fired (seconds).
    pub sim_secs: u64,
    /// What fired.
    pub trigger: FlightTrigger,
    /// Human detail ("7 degraded verdicts in one tick").
    pub detail: String,
}

#[derive(Debug, Default)]
struct Inner {
    frames: VecDeque<FlightFrame>,
    dumps: Vec<FlightDumpEvent>,
}

/// The bounded flight ring. Interior-mutable so the engine can record
/// through a shared reference; cloning deep-copies the ring (a cloned
/// engine records its own flight history).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Clone for FlightRecorder {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        FlightRecorder {
            capacity: self.capacity,
            inner: Mutex::new(Inner {
                frames: inner.frames.clone(),
                dumps: inner.dumps.clone(),
            }),
        }
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// An empty recorder keeping at most `capacity` frames (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a frame, evicting the oldest when full.
    pub fn record(&self, frame: FlightFrame) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        if inner.frames.len() == self.capacity {
            inner.frames.pop_front();
        }
        inner.frames.push_back(frame);
    }

    /// Records that a trigger fired (the dump itself is the caller's
    /// business — the recorder only keeps the log).
    pub fn trigger(&self, sim_secs: u64, trigger: FlightTrigger, detail: impl Into<String>) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        inner.dumps.push(FlightDumpEvent {
            sim_secs,
            trigger,
            detail: detail.into(),
        });
    }

    /// Snapshot of the frames, oldest first.
    pub fn frames(&self) -> Vec<FlightFrame> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        inner.frames.iter().cloned().collect()
    }

    /// Snapshot of the trigger log, in firing order.
    pub fn dump_events(&self) -> Vec<FlightDumpEvent> {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .dumps
            .clone()
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .frames
            .len()
    }

    /// True when no frame has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replaces the entire contents (snapshot restore). Frames beyond
    /// the capacity are trimmed oldest-first.
    pub fn restore(&self, frames: Vec<FlightFrame>, dumps: Vec<FlightDumpEvent>) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let skip = frames.len().saturating_sub(self.capacity);
        inner.frames = frames.into_iter().skip(skip).collect();
        inner.dumps = dumps;
    }

    /// Drops all frames and the trigger log.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        inner.frames.clear();
        inner.dumps.clear();
    }

    /// Renders the recorder as JSONL: the trigger log first (`"kind":
    /// "trigger"`), then the frames oldest-first (`"kind": "frame"`).
    /// Deterministic: content depends only on what was recorded.
    pub fn dump_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        let mut out = String::new();
        for d in &inner.dumps {
            out.push_str("{\"kind\":\"trigger\",\"sim_secs\":");
            out.push_str(&d.sim_secs.to_string());
            out.push_str(",\"trigger\":");
            push_json_str(&mut out, d.trigger.label());
            out.push_str(",\"detail\":");
            push_json_str(&mut out, &d.detail);
            out.push_str("}\n");
        }
        for f in &inner.frames {
            out.push_str("{\"kind\":\"frame\",\"sim_secs\":");
            out.push_str(&f.sim_secs.to_string());
            out.push_str(",\"bucket\":");
            out.push_str(&f.bucket.to_string());
            out.push_str(",\"stages\":[");
            for (i, s) in f.stages.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, s);
            }
            out.push_str("],\"deltas\":{");
            for (i, (name, v)) in f.deltas.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, name);
                out.push(':');
                push_json_f64(&mut out, *v);
            }
            out.push_str("},\"transcript\":");
            push_json_str(&mut out, &f.transcript);
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(sim_secs: u64) -> FlightFrame {
        FlightFrame {
            sim_secs,
            bucket: (sim_secs / 300) as u32,
            transcript: format!("tick at {sim_secs}\n"),
            stages: vec!["ingest".into(), "passive".into()],
            deltas: vec![("alerts".into(), 2.0), ("blames".into(), 5.0)],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let r = FlightRecorder::new(3);
        for t in 0..5 {
            r.record(frame(t * 900));
        }
        let frames = r.frames();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].sim_secs, 1800, "oldest two evicted");
        assert_eq!(frames[2].sim_secs, 3600);
        assert_eq!(r.capacity(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn trigger_log_accumulates_in_order() {
        let r = FlightRecorder::new(4);
        r.trigger(900, FlightTrigger::DegradedSpike, "3 degraded");
        r.trigger(1800, FlightTrigger::Manual, "operator");
        let events = r.dump_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trigger, FlightTrigger::DegradedSpike);
        assert_eq!(events[1].sim_secs, 1800);
    }

    #[test]
    fn labels_round_trip() {
        for t in FlightTrigger::ALL {
            assert_eq!(FlightTrigger::from_label(t.label()), Some(t));
            assert_eq!(t.to_string(), t.label());
        }
        assert_eq!(FlightTrigger::from_label("nope"), None);
    }

    #[test]
    fn dump_jsonl_shape() {
        let r = FlightRecorder::new(4);
        r.trigger(900, FlightTrigger::ChaosBurst, "4 absorbed");
        r.record(frame(900));
        let dump = r.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"trigger\""), "{dump}");
        assert!(lines[0].contains("\"trigger\":\"chaos-burst\""), "{dump}");
        assert!(lines[1].starts_with("{\"kind\":\"frame\""), "{dump}");
        assert!(lines[1].contains("\"sim_secs\":900"), "{dump}");
        assert!(
            lines[1].contains("\"stages\":[\"ingest\",\"passive\"]"),
            "{dump}"
        );
        assert!(lines[1].contains("\"alerts\":2"), "{dump}");
        assert!(
            lines[1].contains("\"transcript\":\"tick at 900\\n\""),
            "{dump}"
        );
    }

    #[test]
    fn restore_trims_to_capacity() {
        let r = FlightRecorder::new(2);
        r.restore(
            vec![frame(0), frame(900), frame(1800)],
            vec![FlightDumpEvent {
                sim_secs: 900,
                trigger: FlightTrigger::RecoveryFallback,
                detail: "fallback".into(),
            }],
        );
        let frames = r.frames();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].sim_secs, 900);
        assert_eq!(r.dump_events().len(), 1);
    }

    #[test]
    fn clone_is_deep() {
        let a = FlightRecorder::new(4);
        a.record(frame(900));
        let b = a.clone();
        b.record(frame(1800));
        assert_eq!(a.len(), 1, "clone must not share the ring");
        assert_eq!(b.len(), 2);
        b.clear();
        assert_eq!(b.len(), 0);
        assert_eq!(a.len(), 1);
    }
}
