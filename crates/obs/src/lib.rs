//! # blameit-obs — dependency-free observability for the BlameIt engine
//!
//! Four pillars, all built on `std` alone (the workspace builds with
//! no network access, so this crate takes zero external dependencies):
//!
//! * [`metrics`] — a process-wide (or per-engine) registry of lock-free
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s with
//!   p50/p90/p99 queries, Prometheus-style text exposition, and a JSON
//!   dump.
//! * [`trace`] — RAII [`Span`]s emitting structured events (target,
//!   name, `key=value` fields, duration, depth) to pluggable
//!   [`Subscriber`]s: an in-memory [`RingCollector`] and a
//!   [`JsonlWriter`]. [`render_tree`] turns captured events back into
//!   an indented per-tick span tree.
//! * [`profile`] — [`StageTimings`]/[`StageClock`] for the per-tick
//!   stage breakdown embedded in the engine's `TickOutput`.
//! * [`flight`] — a deterministic [`FlightRecorder`]: a bounded ring of
//!   recent tick transcripts, stage outlines, and metric deltas, keyed
//!   on sim time and dumpable as JSONL when a trigger predicate fires.
//!
//! ```
//! use blameit_obs::{span, MetricsRegistry, RingCollector, StageClock};
//!
//! let reg = MetricsRegistry::new();
//! let ring = RingCollector::new(1024);
//! blameit_obs::trace::with_subscriber(ring.clone(), || {
//!     let _tick = span!("example", "tick", n = 1u64);
//!     let mut clock = StageClock::start();
//!     reg.counter("example_items_total").add(3);
//!     clock.lap("work");
//!     let timings = clock.finish();
//!     assert!(timings.total() >= timings.stage_sum());
//! });
//! assert_eq!(ring.events().len(), 1);
//! println!("{}", reg.render_prometheus());
//! ```

pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use flight::{FlightDumpEvent, FlightFrame, FlightRecorder, FlightTrigger};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use profile::{StageClock, StageTimings};
pub use trace::{
    add_subscriber, clear_subscribers, local_subscribers, render_tree, with_subscriber,
    with_subscribers, JsonlWriter, RingCollector, Span, SpanEvent, Subscriber,
};
