//! Minimal JSON string/number formatting shared by the metrics and
//! tracing emitters. Only what the exposition formats need — this is
//! an emitter, not a parser.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in a JSON-legal form (`NaN`/`±inf` become `null`,
/// which JSON can actually represent).
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Integral values print without the exponent noise of `{:e}`.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> String {
        let mut out = String::new();
        push_json_str(&mut out, v);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(s("plain"), "\"plain\"");
        assert_eq!(s("a\"b"), "\"a\\\"b\"");
        assert_eq!(s("a\\b"), "\"a\\\\b\"");
        assert_eq!(s("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(s("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_json_legal() {
        let mut out = String::new();
        push_json_f64(&mut out, 3.0);
        assert_eq!(out, "3");
        out.clear();
        push_json_f64(&mut out, 0.5);
        assert_eq!(out, "0.5");
        out.clear();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }
}
