//! Lock-free metrics: counters, gauges, log-bucket histograms, and a
//! named registry with Prometheus-text and JSON exposition.
//!
//! Everything here is `std`-only and wait-free on the hot path:
//! recording a value is one or two atomic RMW operations, so metrics
//! can sit inside the engine's per-quartet loops without perturbing the
//! timings they measure. Rendering takes a registry lock but only
//! readers (the CLI, a scrape endpoint) pay it.

use crate::json::{push_json_f64, push_json_str};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Counters are monotonic in normal
    /// operation; this exists solely for snapshot restore, where the
    /// persisted value re-seeds a fresh process's counter.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the value (CAS loop; gauges are low-frequency).
    pub fn add(&self, d: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + d).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets.
pub const HIST_BUCKETS: usize = 96;
/// Buckets per decade (so bounds grow by 10^(1/8) ≈ 1.33×).
const BUCKETS_PER_DECADE: f64 = 8.0;
/// Lower edge of bucket 0. With 96 buckets at 8/decade the histogram
/// spans 1e-3 .. 1e9 — microseconds-to-hours when recording µs, and
/// sub-millisecond-to-weeks when recording ms. Both the RTT-ms and
/// tick-µs scales the engine records fit with headroom.
const HIST_LO: f64 = 1e-3;

/// A fixed-layout histogram with log-spaced buckets.
///
/// All histograms share one layout, so any two can [`merge`] and the
/// exposition format needs no per-histogram schema. Values below the
/// first bound clamp into bucket 0, values beyond the last into the
/// final bucket; exact `count`/`sum`/`min`/`max` are kept alongside so
/// clamping never corrupts the summary statistics.
///
/// [`merge`]: Histogram::merge_from
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    /// Sum of observed values, as f64 bits.
    sum: AtomicU64,
    /// Minimum observed, as f64 bits (+inf when empty).
    min: AtomicU64,
    /// Maximum observed, as f64 bits (-inf when empty).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// The bucket index a value lands in.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= HIST_LO {
        return 0;
    }
    let idx = ((v / HIST_LO).log10() * BUCKETS_PER_DECADE).floor() as isize;
    idx.clamp(0, HIST_BUCKETS as isize - 1) as usize
}

/// The *upper* bound of bucket `i` (inclusive, Prometheus `le` style).
pub fn bucket_upper_bound(i: usize) -> f64 {
    HIST_LO * 10f64.powf((i as f64 + 1.0) / BUCKETS_PER_DECADE)
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation. Non-finite values are dropped.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = self
            .max
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Mean observation; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.min.load(Ordering::Relaxed)))
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.max.load(Ordering::Relaxed)))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from the bucket counts:
    /// the geometric midpoint of the bucket containing the target rank,
    /// clamped to the exact observed min/max. `None` when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        // Rank of the target observation, 1-based.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..HIST_BUCKETS {
            seen += self.counts[i].load(Ordering::Relaxed);
            if seen >= rank {
                let hi = bucket_upper_bound(i);
                let lo = if i == 0 {
                    HIST_LO
                } else {
                    bucket_upper_bound(i - 1)
                };
                let mid = (lo * hi).sqrt();
                let (omin, omax) = (self.min().unwrap(), self.max().unwrap());
                return Some(mid.clamp(omin, omax));
            }
        }
        self.max()
    }

    /// p50 convenience.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// p90 convenience.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// p99 convenience.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Adds every observation of `other` into `self` (bucket-wise; all
    /// histograms share one layout so this is exact at bucket
    /// granularity).
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..HIST_BUCKETS {
            let n = other.counts[i].load(Ordering::Relaxed);
            if n > 0 {
                self.counts[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let other_sum = other.sum();
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + other_sum).to_bits())
            });
        if let Some(m) = other.min() {
            let _ = self
                .min
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                    (m < f64::from_bits(bits)).then(|| m.to_bits())
                });
        }
        if let Some(m) = other.max() {
            let _ = self
                .max
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                    (m > f64::from_bits(bits)).then(|| m.to_bits())
                });
        }
    }

    /// Snapshot of the non-empty buckets as `(upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        (0..HIST_BUCKETS)
            .filter_map(|i| {
                let n = self.counts[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect()
    }
}

/// Label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// Handles returned by [`counter`]/[`gauge`]/[`histogram`] are `Arc`s:
/// look them up once, then record through the handle with no registry
/// lock. The same `(name, labels)` always returns the same instance.
///
/// [`counter`]: MetricsRegistry::counter
/// [`gauge`]: MetricsRegistry::gauge
/// [`histogram`]: MetricsRegistry::histogram
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(String, Labels), Metric>>,
}

fn to_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn entry<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        select: impl FnOnce(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let key = (name.to_string(), to_labels(labels));
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        let m = map.entry(key).or_insert_with(make);
        select(m).unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()))
    }

    /// The counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as another kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.entry(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as another kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.entry(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram `name` (no labels).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram `name{labels}`.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as another kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.entry(
            name,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    fn snapshot(&self) -> Vec<((String, Labels), Metric)> {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Prometheus text exposition (one `# TYPE` line per metric name,
    /// histograms as cumulative `_bucket{le=…}` + `_sum` + `_count`).
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_filtered("")
    }

    /// [`render_prometheus`](Self::render_prometheus) restricted to
    /// metrics whose name starts with `prefix` (names sort under the
    /// registry's `BTreeMap`, so output order is stable).
    pub fn render_prometheus_filtered(&self, prefix: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_name = String::new();
        for ((name, labels), metric) in &snap {
            if !name.starts_with(prefix) {
                continue;
            }
            if *name != last_name {
                out.push_str(&format!("# TYPE {name} {}\n", metric.kind()));
                last_name = name.clone();
            }
            let label_str = |extra: Option<(&str, String)>| -> String {
                let mut parts: Vec<String> =
                    labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
                if let Some((k, v)) = extra {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name}{} {}\n", label_str(None), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name}{} {}\n", label_str(None), g.get()));
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (ub, n) in h.nonzero_buckets() {
                        cum += n;
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            label_str(Some(("le", format!("{ub:.6}"))))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{} {cum}\n",
                        label_str(Some(("le", "+Inf".into())))
                    ));
                    out.push_str(&format!("{name}_sum{} {}\n", label_str(None), h.sum()));
                    out.push_str(&format!("{name}_count{} {}\n", label_str(None), h.count()));
                }
            }
        }
        out
    }

    /// JSON dump: an array of metric objects with name, labels, kind,
    /// and value (counters/gauges) or summary stats + buckets
    /// (histograms).
    pub fn render_json(&self) -> String {
        self.render_json_filtered("")
    }

    /// [`render_json`](Self::render_json) restricted to metrics whose
    /// name starts with `prefix`.
    pub fn render_json_filtered(&self, prefix: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::from("[");
        let mut emitted = 0usize;
        for ((name, labels), metric) in snap.iter() {
            if !name.starts_with(prefix) {
                continue;
            }
            if emitted > 0 {
                out.push(',');
            }
            emitted += 1;
            out.push_str("{\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"kind\":");
            push_json_str(&mut out, metric.kind());
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push('}');
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(",\"value\":{}", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(",\"value\":");
                    push_json_f64(&mut out, g.get());
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(",\"count\":{}", h.count()));
                    out.push_str(",\"sum\":");
                    push_json_f64(&mut out, h.sum());
                    for (label, v) in [
                        ("p50", h.p50()),
                        ("p90", h.p90()),
                        ("p99", h.p99()),
                        ("min", h.min()),
                        ("max", h.max()),
                    ] {
                        out.push_str(&format!(",\"{label}\":"));
                        push_json_f64(&mut out, v.unwrap_or(f64::NAN));
                    }
                    out.push_str(",\"buckets\":[");
                    for (j, (ub, n)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"le\":");
                        push_json_f64(&mut out, *ub);
                        out.push_str(&format!(",\"count\":{n}}}"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-0.5);
        assert!((g.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_are_log_spaced_and_exhaustive() {
        // Bounds grow by exactly 10^(1/8) per bucket.
        let ratio = bucket_upper_bound(1) / bucket_upper_bound(0);
        assert!((ratio - 10f64.powf(1.0 / 8.0)).abs() < 1e-12);
        // A value just under a bound lands below the bound's bucket; a
        // value just over lands in it.
        for i in [0usize, 7, 40, 94] {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub * 0.999), i, "below bound {i}");
            assert_eq!(bucket_index(ub * 1.001), i + 1, "above bound {i}");
        }
        // Extremes clamp instead of panicking.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(1e300), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // dropped
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 10.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert!((h.mean().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64); // 1..=1000 ms-ish scale
        }
        let (p50, p90, p99) = (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Log-bucket estimates: within one bucket width (10^(1/8) ≈ 1.33×).
        assert!((370.0..680.0).contains(&p50), "p50 {p50}");
        assert!((670.0..1000.1).contains(&p90), "p90 {p90}");
        assert!(
            p99 <= 1000.0 + 1e-9,
            "p99 clamped to observed max, got {p99}"
        );
        assert_eq!(h.quantile(0.0).unwrap(), 1.0);
        assert_eq!(h.quantile(1.0).unwrap(), 1000.0);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
        // Merging an empty histogram is a no-op.
        let other = Histogram::new();
        other.observe(5.0);
        other.merge_from(&h);
        assert_eq!(other.count(), 1);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1.0, 10.0, 100.0] {
            a.observe(v);
        }
        for v in [0.5, 2000.0] {
            b.observe(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert!((a.sum() - 2111.5).abs() < 1e-9);
        assert_eq!(a.min(), Some(0.5));
        assert_eq!(a.max(), Some(2000.0));
        // Bucket counts merged too: total across buckets equals count.
        let bucket_total: u64 = a.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, 5);
        // Merging into an empty histogram reproduces the source.
        let c = Histogram::new();
        c.merge_from(&a);
        assert_eq!(c.count(), a.count());
        assert_eq!(c.min(), a.min());
        assert_eq!(c.p90(), a.p90());
    }

    #[test]
    fn concurrent_counter_increments() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total");
        let h = reg.histogram("lat_ms");
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe((t * 10_000 + i) as f64 % 977.0 + 1.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, 80_000, "no lost bucket increments");
    }

    #[test]
    fn registry_returns_same_instance_and_checks_kind() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("x_total", &[("seg", "cloud")]);
        let b = reg.counter_with("x_total", &[("seg", "cloud")]);
        a.inc();
        assert_eq!(b.get(), 1, "same handle");
        let other = reg.counter_with("x_total", &[("seg", "middle")]);
        assert_eq!(other.get(), 0, "different labels, different counter");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = reg.gauge_with("x_total", &[("seg", "cloud")]);
        }));
        assert!(r.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter_with("req_total", &[("seg", "cloud")]).add(3);
        reg.gauge("temp").set(1.5);
        let h = reg.histogram("rtt_ms");
        h.observe(10.0);
        h.observe(200.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{seg=\"cloud\"} 3"), "{text}");
        assert!(text.contains("# TYPE temp gauge"), "{text}");
        assert!(text.contains("temp 1.5"), "{text}");
        assert!(text.contains("# TYPE rtt_ms histogram"), "{text}");
        assert!(text.contains("rtt_ms_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("rtt_ms_count 2"), "{text}");
        // Cumulative: the +Inf bucket equals the count.
    }

    #[test]
    fn filtered_rendering_selects_by_prefix() {
        let reg = MetricsRegistry::new();
        reg.counter("blameit_a_total").inc();
        reg.counter("other_total").inc();
        let text = reg.render_prometheus_filtered("blameit_");
        assert!(text.contains("blameit_a_total"), "{text}");
        assert!(!text.contains("other_total"), "{text}");
        let j = reg.render_json_filtered("blameit_");
        assert!(
            j.contains("blameit_a_total") && !j.contains("other_total"),
            "{j}"
        );
        let none = reg.render_json_filtered("zzz");
        assert_eq!(none, "[]");
        // The empty prefix is the unfiltered render.
        assert_eq!(reg.render_prometheus_filtered(""), reg.render_prometheus());
        assert_eq!(reg.render_json_filtered(""), reg.render_json());
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").inc();
        reg.histogram("h").observe(5.0);
        let j = reg.render_json();
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\"name\":\"a_total\""), "{j}");
        assert!(j.contains("\"kind\":\"histogram\""), "{j}");
        assert!(j.contains("\"p50\":"), "{j}");
        assert_eq!(j.matches("{\"name\"").count(), 2);
    }
}
