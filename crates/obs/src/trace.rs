//! Structured span tracing with RAII scoped timers.
//!
//! A [`Span`] measures the wall time between its creation and its drop
//! and emits one [`SpanEvent`] — target, name, `key=value` fields,
//! duration, nesting depth — to every installed [`Subscriber`]. A
//! thread-local depth counter gives events enough structure to rebuild
//! the span *tree* after the fact ([`render_tree`]) without any
//! allocation while spans are open.
//!
//! Subscribers come in two scopes:
//!
//! * **global** ([`add_subscriber`]) — e.g. a JSONL writer for a whole
//!   process run;
//! * **scoped** ([`with_subscriber`]) — installed for one closure on
//!   one thread, which is what tests and the CLI use to capture a
//!   single engine run without seeing unrelated threads.
//!
//! When no subscriber is installed, creating a span is one relaxed
//! atomic load and no clock read — cheap enough to leave in hot paths.

use crate::json::{push_json_f64, push_json_str};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A typed field value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from_field {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue { FieldValue::$variant(v as $conv) }
        })*
    };
}

impl_from_field!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Module-ish origin, e.g. `"blameit::pipeline"`.
    pub target: &'static str,
    /// Span name, e.g. `"tick"` or a stage name.
    pub name: &'static str,
    /// `key=value` fields recorded on the span.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Nesting depth at creation (0 = root).
    pub depth: u16,
    /// Close-order sequence number (process-wide).
    pub seq: u64,
}

impl SpanEvent {
    /// The event as one JSON object (used for JSONL output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"target\":");
        push_json_str(&mut out, self.target);
        out.push_str(",\"name\":");
        push_json_str(&mut out, self.name);
        out.push_str(&format!(
            ",\"start_ns\":{},\"duration_ns\":{},\"depth\":{},\"seq\":{}",
            self.start_ns, self.duration_ns, self.depth, self.seq
        ));
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::I64(n) => out.push_str(&n.to_string()),
                FieldValue::F64(n) => push_json_f64(&mut out, *n),
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                FieldValue::Str(s) => push_json_str(&mut out, s),
            }
        }
        out.push_str("}}");
        out
    }
}

/// Receives completed span events.
pub trait Subscriber: Send + Sync {
    /// Called once per completed span.
    fn on_event(&self, ev: &SpanEvent);
}

static GLOBAL_SUBSCRIBERS: RwLock<Vec<Arc<dyn Subscriber>>> = RwLock::new(Vec::new());
/// Count of global subscribers, for the disabled-fast-path check.
static GLOBAL_COUNT: AtomicUsize = AtomicUsize::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_SUBSCRIBERS: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Installs a process-wide subscriber (all threads, until
/// [`clear_subscribers`]).
pub fn add_subscriber(s: Arc<dyn Subscriber>) {
    epoch(); // pin the epoch no later than the first subscriber
    GLOBAL_SUBSCRIBERS
        .write()
        .expect("subscriber list poisoned")
        .push(s);
    GLOBAL_COUNT.fetch_add(1, Ordering::Release);
}

/// Removes all process-wide subscribers.
pub fn clear_subscribers() {
    let mut subs = GLOBAL_SUBSCRIBERS
        .write()
        .expect("subscriber list poisoned");
    GLOBAL_COUNT.fetch_sub(subs.len(), Ordering::Release);
    subs.clear();
}

struct LocalGuard(usize);

impl Drop for LocalGuard {
    fn drop(&mut self) {
        LOCAL_SUBSCRIBERS.with(|l| {
            let mut subs = l.borrow_mut();
            for _ in 0..self.0 {
                subs.pop();
            }
        });
    }
}

/// Runs `f` with `s` installed as a subscriber on *this thread only*.
/// Nests; unwind-safe (the subscriber is removed even on panic).
pub fn with_subscriber<R>(s: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    with_subscribers(vec![s], f)
}

/// Snapshot of this thread's scoped subscribers, in installation order.
///
/// Scoped subscribers are thread-local, so spans opened on a worker
/// thread would otherwise be invisible to a [`with_subscriber`] capture
/// on the spawning thread. A coordinator takes this snapshot before
/// `std::thread::scope` and each worker re-installs it with
/// [`with_subscribers`].
pub fn local_subscribers() -> Vec<Arc<dyn Subscriber>> {
    LOCAL_SUBSCRIBERS.with(|l| l.borrow().clone())
}

/// Runs `f` with a whole set of scoped subscribers installed on *this
/// thread* — the worker-side counterpart of [`local_subscribers`].
/// Nests; unwind-safe (all installed subscribers are removed even on
/// panic).
pub fn with_subscribers<R>(subs: Vec<Arc<dyn Subscriber>>, f: impl FnOnce() -> R) -> R {
    epoch();
    let n = subs.len();
    LOCAL_SUBSCRIBERS.with(|l| l.borrow_mut().extend(subs));
    let _guard = LocalGuard(n);
    f()
}

/// True when any subscriber (global or this thread's scoped ones) would
/// see an event.
pub fn enabled() -> bool {
    GLOBAL_COUNT.load(Ordering::Acquire) > 0 || LOCAL_SUBSCRIBERS.with(|l| !l.borrow().is_empty())
}

fn dispatch(ev: &SpanEvent) {
    LOCAL_SUBSCRIBERS.with(|l| {
        for s in l.borrow().iter() {
            s.on_event(ev);
        }
    });
    if GLOBAL_COUNT.load(Ordering::Acquire) > 0 {
        for s in GLOBAL_SUBSCRIBERS
            .read()
            .expect("subscriber list poisoned")
            .iter()
        {
            s.on_event(ev);
        }
    }
}

/// An open span; emits its [`SpanEvent`] when dropped. Construct with
/// [`Span::new`] or the [`span!`](crate::span) macro.
///
/// When tracing is disabled the span is inert (no clock read, no
/// allocation).
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    started: Instant,
    depth: u16,
}

impl Span {
    /// Opens a span (records the clock only if tracing is enabled).
    pub fn new(target: &'static str, name: &'static str) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur.saturating_add(1));
            cur
        });
        Span {
            inner: Some(SpanInner {
                target,
                name,
                fields: Vec::new(),
                started: Instant::now(),
                depth,
            }),
        }
    }

    /// Attaches a field (builder style, for the macro).
    pub fn with_field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.record(key, value);
        self
    }

    /// Records a field on an open span (e.g. a count only known at the
    /// end of the stage).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let start_ns = inner.started.saturating_duration_since(epoch()).as_nanos() as u64;
        let ev = SpanEvent {
            target: inner.target,
            name: inner.name,
            fields: inner.fields,
            start_ns,
            duration_ns: inner.started.elapsed().as_nanos() as u64,
            depth: inner.depth,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
        };
        dispatch(&ev);
    }
}

/// Opens a [`Span`]: `span!("target", "name", key = value, …)`.
///
/// Bind the result (`let _span = span!(…);`) so it stays open for the
/// scope; `let _ = span!(…)` would drop — and close — it immediately.
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut s = $crate::trace::Span::new($target, $name);
        $(s.record(stringify!($key), $value);)*
        s
    }};
}

/// In-memory collector: a bounded ring buffer of the most recent
/// events. The standard capture sink for tests and the CLI.
pub struct RingCollector {
    cap: usize,
    buf: Mutex<VecDeque<SpanEvent>>,
}

impl RingCollector {
    /// A collector retaining the last `cap` events.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Arc<RingCollector> {
        assert!(cap > 0, "ring capacity must be positive");
        Arc::new(RingCollector {
            cap,
            buf: Mutex::new(VecDeque::new()),
        })
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.buf
            .lock()
            .expect("ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring poisoned").len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.buf.lock().expect("ring poisoned").clear();
    }
}

impl Subscriber for RingCollector {
    fn on_event(&self, ev: &SpanEvent) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// Streams each event as one JSON line to a writer (file, stderr, …).
pub struct JsonlWriter<W: Write + Send> {
    w: Mutex<W>,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Arc<JsonlWriter<W>> {
        Arc::new(JsonlWriter { w: Mutex::new(w) })
    }

    /// Consumes the sink, returning the writer (tests use this to
    /// inspect what was written).
    pub fn into_inner(self: Arc<Self>) -> Option<W> {
        Arc::into_inner(self).map(|j| j.w.into_inner().expect("jsonl poisoned"))
    }
}

impl<W: Write + Send> Subscriber for JsonlWriter<W> {
    fn on_event(&self, ev: &SpanEvent) {
        let mut w = self.w.lock().expect("jsonl poisoned");
        // Telemetry is best-effort: a full disk must not take the
        // engine down with it.
        let _ = writeln!(w, "{}", ev.to_json());
    }
}

/// Renders captured events as an indented tree, one line per span.
///
/// Events are emitted at span *close*, so a parent closes after its
/// children; reconstruction folds each run of depth-`d+1` events into
/// the next depth-`d` event.
pub fn render_tree(events: &[SpanEvent]) -> String {
    struct Node<'a> {
        ev: &'a SpanEvent,
        children: Vec<Node<'a>>,
    }

    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    let mut stack: Vec<Node> = Vec::new();
    for ev in sorted {
        let mut children = Vec::new();
        while stack
            .last()
            .is_some_and(|n| n.ev.depth == ev.depth + 1 && n.ev.start_ns >= ev.start_ns)
        {
            children.push(stack.pop().expect("peeked"));
        }
        children.reverse();
        stack.push(Node { ev, children });
    }

    fn fmt_duration(ns: u64) -> String {
        if ns >= 1_000_000_000 {
            format!("{:.2}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.2}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.1}µs", ns as f64 / 1e3)
        } else {
            format!("{ns}ns")
        }
    }

    fn render(node: &Node, indent: usize, out: &mut String) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(&format!(
            "{} ({}) {}",
            node.ev.name,
            node.ev.target,
            fmt_duration(node.ev.duration_ns)
        ));
        for (k, v) in &node.ev.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &node.children {
            render(c, indent + 1, out);
        }
    }

    let mut out = String::new();
    for root in &stack {
        render(root, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // No scoped subscriber on this thread (global ones would make
        // this test racy with neighbours, so only assert the span).
        let s = Span::new("t", "no-subscriber-span");
        assert!(s.inner.is_none() || enabled());
        drop(s);
    }

    #[test]
    fn scoped_subscriber_captures_nested_spans() {
        let ring = RingCollector::new(64);
        with_subscriber(ring.clone(), || {
            let mut outer = span!("test", "outer", n = 2u64);
            {
                let _inner = span!("test", "inner", which = "first");
            }
            {
                let _inner = span!("test", "inner", which = "second");
            }
            outer.record("late", 42u64);
        });
        let events = ring.events();
        assert_eq!(events.len(), 3);
        // Close order: both inners, then outer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[2].name, "outer");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[2].depth, 0);
        assert!(events[2]
            .fields
            .iter()
            .any(|(k, v)| *k == "late" && *v == FieldValue::U64(42)));
        assert!(events[2].duration_ns >= events[0].duration_ns);
        // After the closure, the subscriber is gone.
        assert!(ring.events().len() == 3);
    }

    #[test]
    fn ring_collector_caps_retention() {
        let ring = RingCollector::new(2);
        with_subscriber(ring.clone(), || {
            for _ in 0..5 {
                let _s = span!("test", "one");
            }
        });
        assert_eq!(ring.len(), 2, "oldest events evicted");
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_writer_emits_one_object_per_line() {
        let sink = JsonlWriter::new(Vec::<u8>::new());
        with_subscriber(sink.clone(), || {
            let _a = span!("test", "alpha", k = 1u64, s = "x");
            let _b = span!("test", "beta", ok = true);
        });
        let bytes = sink.into_inner().expect("sole owner");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"name\":\"alpha\""));
        assert!(text.contains("\"k\":1"));
        assert!(text.contains("\"s\":\"x\""));
        assert!(text.contains("\"ok\":true"));
    }

    #[test]
    fn tree_rendering_nests_children() {
        let ring = RingCollector::new(64);
        with_subscriber(ring.clone(), || {
            let _t = span!("test", "tick", bucket = 7u64);
            {
                let _a = span!("test", "ingest");
            }
            {
                let _b = span!("test", "blame");
                let _c = span!("test", "inner-most");
            }
        });
        let tree = render_tree(&ring.events());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 4, "{tree}");
        assert!(lines[0].starts_with("tick"), "{tree}");
        assert!(lines[0].contains("bucket=7"), "{tree}");
        assert!(lines[1].starts_with("  ingest"), "{tree}");
        assert!(lines[2].starts_with("  blame"), "{tree}");
        assert!(lines[3].starts_with("    inner-most"), "{tree}");
    }

    #[test]
    fn subscriber_snapshot_propagates_to_worker_threads() {
        let ring = RingCollector::new(64);
        with_subscriber(ring.clone(), || {
            let snapshot = local_subscribers();
            assert_eq!(snapshot.len(), 1);
            std::thread::scope(|scope| {
                for shard in 0..2u64 {
                    let subs = snapshot.clone();
                    scope.spawn(move || {
                        with_subscribers(subs, || {
                            let _s = span!("test", "worker", shard = shard);
                        });
                    });
                }
            });
            // Workers popped their copies; this thread's stack intact.
            assert_eq!(local_subscribers().len(), 1);
        });
        let events = ring.events();
        assert_eq!(events.len(), 2, "both worker spans captured");
        assert!(events.iter().all(|e| e.name == "worker"));
        // After the outer scope, a fresh span is not captured.
        let _after = span!("test", "uncaptured");
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn with_subscriber_unwinds_cleanly() {
        let ring = RingCollector::new(8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_subscriber(ring.clone(), || {
                let _s = span!("test", "doomed");
                panic!("boom");
            })
        }));
        assert!(r.is_err());
        // The scoped subscriber was popped despite the panic: a new
        // span on this thread is not captured.
        let _uncaptured = span!("test", "after");
        assert_eq!(ring.len(), 1, "only the doomed span was captured");
    }
}
