//! Per-tick stage profiling.
//!
//! [`StageTimings`] is a small, copy-around breakdown of where one
//! engine tick spent its time, suitable for embedding in a tick's
//! output struct. [`StageClock`] is the accumulator the engine drives:
//! `lap("stage")` charges the elapsed time since the previous lap to
//! that stage, so interleaved per-bucket work can keep adding to the
//! same named stages.

use std::time::{Duration, Instant};

/// Named stage durations for one engine tick, in pipeline order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    stages: Vec<(&'static str, Duration)>,
    total: Duration,
}

impl StageTimings {
    /// An empty profile.
    pub fn new() -> StageTimings {
        StageTimings::default()
    }

    /// Adds `d` to the named stage (creating it in insertion order on
    /// first use).
    pub fn add(&mut self, stage: &'static str, d: Duration) {
        if let Some((_, acc)) = self.stages.iter_mut().find(|(n, _)| *n == stage) {
            *acc += d;
        } else {
            self.stages.push((stage, d));
        }
    }

    /// Sets the whole-tick wall duration (measured independently of the
    /// per-stage laps; may exceed their sum by untimed overhead).
    pub fn set_total(&mut self, d: Duration) {
        self.total = d;
    }

    /// Whole-tick wall duration.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Sum of the per-stage durations (≤ [`total`](Self::total) when
    /// the total was measured around the stages).
    pub fn stage_sum(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Duration charged to `stage`, if any.
    pub fn get(&self, stage: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|(n, _)| *n == stage)
            .map(|(_, d)| *d)
    }

    /// Stages in first-use order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.stages.iter().copied()
    }

    /// Number of distinct stages recorded.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stage has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// One-line human rendering, e.g.
    /// `ingest=120µs aggregation=340µs … (total 612µs)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (name, d)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}={}", name, fmt_duration(*d)));
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("(total {})", fmt_duration(self.total)));
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Drives a [`StageTimings`] from inside a tick: each
/// [`lap`](StageClock::lap) charges time-since-last-lap to a stage.
pub struct StageClock {
    timings: StageTimings,
    tick_start: Instant,
    last: Instant,
}

impl Default for StageClock {
    fn default() -> StageClock {
        StageClock::start()
    }
}

impl StageClock {
    /// Starts the clock at the top of a tick.
    pub fn start() -> StageClock {
        let now = Instant::now();
        StageClock {
            timings: StageTimings::new(),
            tick_start: now,
            last: now,
        }
    }

    /// Charges the time since the previous lap (or since start) to
    /// `stage`, then resets the lap marker.
    pub fn lap(&mut self, stage: &'static str) {
        let now = Instant::now();
        self.timings.add(stage, now - self.last);
        self.last = now;
    }

    /// Resets the lap marker without charging anyone — use before a
    /// stage when intervening time should not count (e.g. between
    /// buckets).
    pub fn skip(&mut self) {
        self.last = Instant::now();
    }

    /// Stops the clock, stamping the whole-tick total.
    pub fn finish(mut self) -> StageTimings {
        self.timings.set_total(self.tick_start.elapsed());
        self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_by_name_in_first_use_order() {
        let mut t = StageTimings::new();
        t.add("a", Duration::from_micros(10));
        t.add("b", Duration::from_micros(5));
        t.add("a", Duration::from_micros(7));
        assert_eq!(t.get("a"), Some(Duration::from_micros(17)));
        assert_eq!(t.get("b"), Some(Duration::from_micros(5)));
        assert_eq!(t.get("c"), None);
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(t.stage_sum(), Duration::from_micros(22));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn clock_charges_laps_and_totals() {
        let mut clock = StageClock::start();
        std::thread::sleep(Duration::from_millis(2));
        clock.lap("first");
        std::thread::sleep(Duration::from_millis(1));
        clock.lap("second");
        clock.lap("second"); // near-zero lap accumulates
        let t = clock.finish();
        assert!(t.get("first").unwrap() >= Duration::from_millis(2));
        assert!(t.get("second").unwrap() >= Duration::from_millis(1));
        assert!(t.total() >= t.stage_sum(), "total wraps all laps");
    }

    #[test]
    fn skip_discards_elapsed_time() {
        let mut clock = StageClock::start();
        std::thread::sleep(Duration::from_millis(2));
        clock.skip();
        clock.lap("after-skip");
        let t = clock.finish();
        assert!(
            t.get("after-skip").unwrap() < Duration::from_millis(2),
            "skipped time must not be charged"
        );
        assert!(
            t.total() >= Duration::from_millis(2),
            "total still counts it"
        );
    }

    #[test]
    fn render_includes_stages_and_total() {
        let mut t = StageTimings::new();
        t.add("ingest", Duration::from_micros(120));
        t.add("blame", Duration::from_millis(3));
        t.set_total(Duration::from_millis(4));
        let s = t.render();
        assert!(s.contains("ingest=120.0µs"), "{s}");
        assert!(s.contains("blame=3.00ms"), "{s}");
        assert!(s.contains("(total 4.00ms)"), "{s}");

        let empty = StageTimings::new().render();
        assert_eq!(empty, "(total 0ns)");
    }
}
