//! Autonomous systems.
//!
//! The paper localizes faults at AS granularity: the *cloud* AS, the
//! *client* AS (the client's ISP), and the *middle* ASes in between
//! (§3.1). The synthetic topology assigns every AS a [`AsRole`] that
//! drives how the generator connects it and how the latency model and
//! fault injector treat it.

use std::fmt;

/// An autonomous-system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl Asn {
    /// The raw AS number.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The structural role an AS plays in the synthetic Internet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AsRole {
    /// The cloud provider itself (the paper's "cloud segment"). There is
    /// exactly one in a topology.
    Cloud,
    /// A global tier-1 backbone present in many metros worldwide.
    Tier1,
    /// A regional transit provider connecting access ISPs to tier-1s.
    Transit,
    /// A broadband access ISP serving non-mobile clients in one or two
    /// metros. Its clients use home or enterprise broadband.
    AccessBroadband,
    /// A cellular carrier serving mobile clients.
    AccessMobile,
}

impl AsRole {
    /// True for roles that terminate client prefixes (the paper's
    /// "client segment").
    pub fn is_access(self) -> bool {
        matches!(self, AsRole::AccessBroadband | AsRole::AccessMobile)
    }

    /// True for roles that can appear in the middle segment of a path.
    pub fn is_middle(self) -> bool {
        matches!(self, AsRole::Tier1 | AsRole::Transit)
    }
}

impl fmt::Display for AsRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsRole::Cloud => "cloud",
            AsRole::Tier1 => "tier1",
            AsRole::Transit => "transit",
            AsRole::AccessBroadband => "access-broadband",
            AsRole::AccessMobile => "access-mobile",
        };
        f.write_str(s)
    }
}

/// Static description of one AS in the topology.
#[derive(Clone, Debug)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Human-readable name, e.g. `"transit-eu-2"`.
    pub name: String,
    /// Structural role.
    pub role: AsRole,
    /// Per-AS processing latency added at each traversal, in
    /// milliseconds (router queueing/processing; small for tier-1s,
    /// larger for access ISPs).
    pub hop_latency_ms: f64,
}

impl AsInfo {
    /// Convenience constructor.
    pub fn new(asn: Asn, name: impl Into<String>, role: AsRole, hop_latency_ms: f64) -> Self {
        AsInfo {
            asn,
            name: name.into(),
            role,
            hop_latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display() {
        assert_eq!(Asn(8075).to_string(), "AS8075");
        assert_eq!(format!("{:?}", Asn(1)), "AS1");
    }

    #[test]
    fn role_predicates() {
        assert!(AsRole::AccessBroadband.is_access());
        assert!(AsRole::AccessMobile.is_access());
        assert!(!AsRole::Cloud.is_access());
        assert!(AsRole::Tier1.is_middle());
        assert!(AsRole::Transit.is_middle());
        assert!(!AsRole::AccessBroadband.is_middle());
        assert!(!AsRole::Cloud.is_middle());
    }

    #[test]
    fn asinfo_constructor() {
        let info = AsInfo::new(Asn(64512), "transit-na-1", AsRole::Transit, 1.5);
        assert_eq!(info.asn, Asn(64512));
        assert_eq!(info.name, "transit-na-1");
        assert_eq!(info.role, AsRole::Transit);
        assert!((info.hop_latency_ms - 1.5).abs() < 1e-12);
    }
}
