//! BGP routing: tables, paths, atoms, and churn.
//!
//! BlameIt's middle segment is the **BGP path**: "the set of middle
//! ASes between the client and cloud" (§3.1). §4.2 compares three
//! grouping granularities for a bad quartet's middle segment:
//!
//! * **BGP prefix** — all RTTs traversing `(X1-X2-C1)` where `C1` is the
//!   exact announced prefix (fine-grained, fewest samples);
//! * **BGP atom** — all RTTs traversing `(X1-X2-C)` where `C` is the
//!   client's AS (coarser);
//! * **BGP path** — all RTTs whose middle ASes are `(X1-X2)` regardless
//!   of client AS (BlameIt's choice: most samples, still accurate).
//!
//! This module provides the interned [`BgpPath`]/[`PathId`] type, the
//! per-location routing state ([`BgpTable`]) with primary + alternate
//! routes per announced prefix, and [`BgpChurnEvent`]s mimicking what
//! Azure's IBGP listener reports (§5.4).

use crate::asn::Asn;
use crate::cloud::CloudLocId;
use crate::geo::MetroId;
use crate::ip::IpPrefix;
use std::collections::HashMap;
use std::fmt;

/// Interned identifier of a [`BgpPath`] (a middle-AS sequence).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path{}", self.0)
    }
}

/// A middle segment: the ordered middle ASes between cloud and client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BgpPath {
    /// Middle ASes in cloud→client order. Excludes the cloud AS and the
    /// client AS. May be empty when the cloud peers directly with the
    /// client ISP.
    pub middle: Vec<Asn>,
}

impl fmt::Display for BgpPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.middle.is_empty() {
            return f.write_str("(direct)");
        }
        for (i, asn) in self.middle.iter().enumerate() {
            if i > 0 {
                f.write_str("-")?;
            }
            write!(f, "{asn}")?;
        }
        Ok(())
    }
}

/// Interner mapping middle-AS sequences to dense [`PathId`]s.
#[derive(Clone, Debug, Default)]
pub struct PathTable {
    paths: Vec<BgpPath>,
    index: HashMap<Vec<Asn>, PathId>,
}

impl PathTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PathTable::default()
    }

    /// Interns a middle-AS sequence, returning its id.
    pub fn intern(&mut self, middle: Vec<Asn>) -> PathId {
        if let Some(id) = self.index.get(&middle) {
            return *id;
        }
        let id = PathId(self.paths.len() as u32);
        self.index.insert(middle.clone(), id);
        self.paths.push(BgpPath { middle });
        id
    }

    /// Resolves an id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn get(&self, id: PathId) -> &BgpPath {
        &self.paths[id.0 as usize]
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no path has been interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over `(id, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &BgpPath)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PathId(i as u32), p))
    }
}

/// A BGP atom key: prefixes of one client AS sharing one middle path
/// (the coarser alternative of §4.2 / Fig. 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BgpAtom {
    /// Middle path.
    pub path: PathId,
    /// Client (origin) AS.
    pub origin: Asn,
}

/// One hop of an AS-level route, as a traceroute would summarize it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsHop {
    /// The AS this hop belongs to.
    pub asn: Asn,
    /// Cumulative **one-way** latency (ms) from the cloud location to
    /// the *last* PoP inside this AS — the quantity the paper's active
    /// phase differences between neighbouring hops (§5.2).
    pub cum_oneway_ms: f64,
    /// Metro of that last PoP (used by the fault injector to scope
    /// faults to an AS's footprint in one metro).
    pub metro: MetroId,
}

/// One concrete route (primary or alternate) from a cloud location to a
/// client origin AS.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteOption {
    /// Interned middle segment.
    pub path_id: PathId,
    /// Full AS-level path: first hop is the cloud AS, last is the
    /// client AS; between them, the middle ASes in order.
    pub as_hops: Vec<AsHop>,
    /// Total one-way latency of the route (== last hop's cumulative).
    pub total_oneway_ms: f64,
}

impl RouteOption {
    /// The middle-AS contribution (ms, one-way): total minus the cloud
    /// AS's own hop latency.
    pub fn middle_oneway_ms(&self) -> f64 {
        let cloud_exit = self.as_hops.first().map_or(0.0, |h| h.cum_oneway_ms);
        let client_entry = if self.as_hops.len() >= 2 {
            self.as_hops[self.as_hops.len() - 2].cum_oneway_ms
        } else {
            cloud_exit
        };
        client_entry - cloud_exit
    }
}

/// Primary + alternates from one cloud location to one client origin AS
/// footprint. All prefixes announced at that footprint share these
/// options; which option is *live* at a given instant is tracked
/// per-prefix by the simulator (churn).
#[derive(Clone, Debug)]
pub struct RouteOptions {
    /// Cloud location the routes originate from.
    pub loc: CloudLocId,
    /// Client (origin) AS the routes terminate in.
    pub origin: Asn,
    /// Route choices; `options[0]` is the BGP best path.
    pub options: Vec<RouteOption>,
}

/// Identifier of a [`RouteOptions`] entry in a [`BgpTable`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RouteIdx(pub u32);

/// A churn event as reported by the IBGP listener: the best path for a
/// prefix at a border router changed (or was withdrawn and replaced).
/// The paper re-issues a background traceroute on each such event
/// (§5.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BgpChurnEvent {
    /// Event time, in seconds since the simulation epoch.
    pub at_secs: u64,
    /// Cloud location whose border router saw the change.
    pub loc: CloudLocId,
    /// The announced prefix affected.
    pub prefix: IpPrefix,
    /// Middle path before the change.
    pub old_path: PathId,
    /// Middle path after the change.
    pub new_path: PathId,
}

/// Per-cloud-location routing: an arena of [`RouteOptions`] plus the
/// mapping from announced prefix to its route entry.
#[derive(Clone, Debug, Default)]
pub struct BgpTable {
    routes: Vec<RouteOptions>,
    /// (loc, prefix) → arena index. Built once by the generator.
    by_prefix: HashMap<(CloudLocId, IpPrefix), RouteIdx>,
}

/// A single row of a location's BGP table: announced prefix plus its
/// route options from that location.
#[derive(Clone, Copy, Debug)]
pub struct RouteEntry<'a> {
    /// The announced prefix.
    pub prefix: IpPrefix,
    /// The route options (primary first).
    pub routes: &'a RouteOptions,
}

impl BgpTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        BgpTable::default()
    }

    /// Adds a [`RouteOptions`] entry to the arena.
    pub fn push_routes(&mut self, routes: RouteOptions) -> RouteIdx {
        let idx = RouteIdx(self.routes.len() as u32);
        self.routes.push(routes);
        idx
    }

    /// Associates an announced prefix (at a location) with a route entry.
    ///
    /// # Panics
    /// Panics if the pair was already bound or the index is unknown.
    pub fn bind_prefix(&mut self, loc: CloudLocId, prefix: IpPrefix, idx: RouteIdx) {
        assert!((idx.0 as usize) < self.routes.len(), "unknown route index");
        let prev = self.by_prefix.insert((loc, prefix), idx);
        assert!(prev.is_none(), "prefix {prefix} already bound at {loc}");
    }

    /// Resolves the route options for an announced prefix at a location.
    pub fn lookup(&self, loc: CloudLocId, prefix: IpPrefix) -> Option<&RouteOptions> {
        self.by_prefix
            .get(&(loc, prefix))
            .map(|idx| &self.routes[idx.0 as usize])
    }

    /// Resolves by arena index.
    ///
    /// # Panics
    /// Panics on an unknown index.
    pub fn routes(&self, idx: RouteIdx) -> &RouteOptions {
        &self.routes[idx.0 as usize]
    }

    /// Iterates over the full table for one location.
    pub fn entries_at(&self, loc: CloudLocId) -> impl Iterator<Item = RouteEntry<'_>> {
        self.by_prefix
            .iter()
            .filter(move |((l, _), _)| *l == loc)
            .map(move |((_, prefix), idx)| RouteEntry {
                prefix: *prefix,
                routes: &self.routes[idx.0 as usize],
            })
    }

    /// Number of (location, prefix) bindings.
    pub fn num_bindings(&self) -> usize {
        self.by_prefix.len()
    }

    /// Number of arena entries.
    pub fn num_route_options(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(asn: u32, cum: f64) -> AsHop {
        AsHop {
            asn: Asn(asn),
            cum_oneway_ms: cum,
            metro: MetroId(0),
        }
    }

    #[test]
    fn path_interning_dedupes() {
        let mut t = PathTable::new();
        let a = t.intern(vec![Asn(10), Asn(20)]);
        let b = t.intern(vec![Asn(10), Asn(20)]);
        let c = t.intern(vec![Asn(20), Asn(10)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).middle, vec![Asn(10), Asn(20)]);
    }

    #[test]
    fn path_display() {
        let mut t = PathTable::new();
        let id = t.intern(vec![Asn(10), Asn(20)]);
        assert_eq!(t.get(id).to_string(), "AS10-AS20");
        let empty = t.intern(vec![]);
        assert_eq!(t.get(empty).to_string(), "(direct)");
    }

    #[test]
    fn route_option_middle_contribution() {
        // cloud exits at 4 ms; client entered after middle at 8 ms.
        let r = RouteOption {
            path_id: PathId(0),
            as_hops: vec![hop(8075, 4.0), hop(10, 6.0), hop(20, 8.0), hop(30, 9.0)],
            total_oneway_ms: 9.0,
        };
        // Last middle hop is AS20 at 8 ms; middle = 8 - 4 = 4 ms.
        assert!((r.middle_oneway_ms() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn route_option_direct_peering_has_zero_middle() {
        let r = RouteOption {
            path_id: PathId(0),
            as_hops: vec![hop(8075, 4.0), hop(30, 9.0)],
            total_oneway_ms: 9.0,
        };
        assert!((r.middle_oneway_ms() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn table_bind_and_lookup() {
        let mut table = BgpTable::new();
        let idx = table.push_routes(RouteOptions {
            loc: CloudLocId(1),
            origin: Asn(30),
            options: vec![],
        });
        let p: IpPrefix = "10.0.0.0/16".parse().unwrap();
        table.bind_prefix(CloudLocId(1), p, idx);
        assert!(table.lookup(CloudLocId(1), p).is_some());
        assert!(table.lookup(CloudLocId(2), p).is_none());
        let q: IpPrefix = "10.1.0.0/16".parse().unwrap();
        assert!(table.lookup(CloudLocId(1), q).is_none());
        assert_eq!(table.num_bindings(), 1);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut table = BgpTable::new();
        let idx = table.push_routes(RouteOptions {
            loc: CloudLocId(0),
            origin: Asn(1),
            options: vec![],
        });
        let p: IpPrefix = "10.0.0.0/16".parse().unwrap();
        table.bind_prefix(CloudLocId(0), p, idx);
        table.bind_prefix(CloudLocId(0), p, idx);
    }

    #[test]
    fn entries_at_filters_location() {
        let mut table = BgpTable::new();
        let idx0 = table.push_routes(RouteOptions {
            loc: CloudLocId(0),
            origin: Asn(1),
            options: vec![],
        });
        let idx1 = table.push_routes(RouteOptions {
            loc: CloudLocId(1),
            origin: Asn(1),
            options: vec![],
        });
        table.bind_prefix(CloudLocId(0), "10.0.0.0/16".parse().unwrap(), idx0);
        table.bind_prefix(CloudLocId(1), "10.0.0.0/16".parse().unwrap(), idx1);
        table.bind_prefix(CloudLocId(0), "10.1.0.0/16".parse().unwrap(), idx0);
        assert_eq!(table.entries_at(CloudLocId(0)).count(), 2);
        assert_eq!(table.entries_at(CloudLocId(1)).count(), 1);
    }

    #[test]
    fn atom_equality() {
        let a = BgpAtom {
            path: PathId(1),
            origin: Asn(30),
        };
        let b = BgpAtom {
            path: PathId(1),
            origin: Asn(30),
        };
        let c = BgpAtom {
            path: PathId(1),
            origin: Asn(31),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
