//! PoP-level topology graph.
//!
//! Modeling paths as sequences of whole ASes is exactly what the paper
//! warns against: "a large AS like Comcast might have a problem along
//! certain paths but not all" (§3.1). To retain that realism, the graph
//! nodes are *points of presence* — an (AS, metro) pair — and edges are
//! either intra-AS backbone links (latency from metro geography) or
//! inter-AS peering links at a shared metro. Shortest paths through this
//! graph yield AS-level paths that depend on *where* the traffic enters,
//! so the same AS can be healthy on one route and faulty on another.

use crate::asn::Asn;
use crate::geo::MetroId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of a PoP (index into [`AsGraph::pops`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PopId(pub u32);

impl fmt::Display for PopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pop{}", self.0)
    }
}

/// A point of presence: one AS's footprint in one metro.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pop {
    /// Identifier.
    pub id: PopId,
    /// Owning AS.
    pub asn: Asn,
    /// Metro where the PoP sits.
    pub metro: MetroId,
    /// Whether routes may pass *through* this PoP. Access ISPs (and
    /// the cloud, once left) do not provide transit — the valley-free
    /// property real BGP policy enforces. Paths may still start or
    /// terminate at a non-transit PoP.
    pub transit_ok: bool,
}

/// Kind of a graph edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkKind {
    /// Backbone link between two PoPs of the same AS.
    IntraAs,
    /// Peering/interconnect between two different ASes in one metro.
    Peering,
}

/// A directed adjacency entry (links are stored both ways).
#[derive(Clone, Copy, Debug)]
struct Edge {
    to: PopId,
    /// One-way latency in milliseconds.
    latency_ms: f64,
    kind: LinkKind,
}

/// A shortest path through the PoP graph.
#[derive(Clone, Debug, PartialEq)]
pub struct PopPath {
    /// PoPs from source to destination, inclusive.
    pub pops: Vec<PopId>,
    /// Cumulative one-way latency (ms) from the source up to and
    /// including arrival at `pops[i]`. `cum_ms[0] == 0`.
    pub cum_ms: Vec<f64>,
}

impl PopPath {
    /// Total one-way latency of the path in milliseconds.
    pub fn total_ms(&self) -> f64 {
        *self.cum_ms.last().unwrap_or(&0.0)
    }

    /// Collapses the PoP path to the AS-level path (consecutive
    /// duplicates removed), with the cumulative latency at the *last*
    /// PoP of each AS — i.e. the latency a traceroute would see at the
    /// final hop inside that AS, which is how the paper compares per-AS
    /// contributions (§5.2).
    pub fn as_path(&self, graph: &AsGraph) -> Vec<(Asn, f64)> {
        let mut out: Vec<(Asn, f64)> = Vec::new();
        for (i, pop) in self.pops.iter().enumerate() {
            let asn = graph.pop(*pop).asn;
            let cum = self.cum_ms[i];
            match out.last_mut() {
                Some((last, last_cum)) if *last == asn => *last_cum = cum,
                _ => out.push((asn, cum)),
            }
        }
        out
    }
}

/// The PoP-level topology graph.
#[derive(Clone, Debug, Default)]
pub struct AsGraph {
    pops: Vec<Pop>,
    adj: Vec<Vec<Edge>>,
}

impl AsGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Adds a transit-capable PoP and returns its id.
    pub fn add_pop(&mut self, asn: Asn, metro: MetroId) -> PopId {
        self.add_pop_with(asn, metro, true)
    }

    /// Adds a PoP with explicit transit capability.
    pub fn add_pop_with(&mut self, asn: Asn, metro: MetroId, transit_ok: bool) -> PopId {
        let id = PopId(self.pops.len() as u32);
        self.pops.push(Pop {
            id,
            asn,
            metro,
            transit_ok,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link with the given one-way latency.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown, if `a == b`, or if the
    /// latency is not finite and non-negative.
    pub fn add_link(&mut self, a: PopId, b: PopId, latency_ms: f64, kind: LinkKind) {
        assert!(a != b, "self-link on {a}");
        assert!(
            latency_ms.is_finite() && latency_ms >= 0.0,
            "bad latency {latency_ms}"
        );
        assert!((a.0 as usize) < self.pops.len(), "unknown pop {a}");
        assert!((b.0 as usize) < self.pops.len(), "unknown pop {b}");
        self.adj[a.0 as usize].push(Edge {
            to: b,
            latency_ms,
            kind,
        });
        self.adj[b.0 as usize].push(Edge {
            to: a,
            latency_ms,
            kind,
        });
    }

    /// Number of PoPs.
    pub fn num_pops(&self) -> usize {
        self.pops.len()
    }

    /// Looks up a PoP.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn pop(&self, id: PopId) -> Pop {
        self.pops[id.0 as usize]
    }

    /// All PoPs.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// All PoPs of one AS.
    pub fn pops_of(&self, asn: Asn) -> impl Iterator<Item = Pop> + '_ {
        self.pops.iter().copied().filter(move |p| p.asn == asn)
    }

    /// Direct neighbours of a PoP: `(neighbour, one-way ms, kind)`.
    pub fn neighbors(&self, id: PopId) -> impl Iterator<Item = (PopId, f64, LinkKind)> + '_ {
        self.adj[id.0 as usize]
            .iter()
            .map(|e| (e.to, e.latency_ms, e.kind))
    }

    /// Dijkstra shortest path from `src` to `dst` by one-way latency.
    ///
    /// `penalty` lets callers discourage specific edges (used to derive
    /// alternate routes for BGP churn): it receives `(from, to, kind)`
    /// and returns an additive milliseconds penalty.
    ///
    /// Ties are broken deterministically by PoP id, so the same graph
    /// always yields the same path. Returns `None` if `dst` is
    /// unreachable.
    pub fn shortest_path_with(
        &self,
        src: PopId,
        dst: PopId,
        penalty: impl Fn(PopId, PopId, LinkKind) -> f64,
    ) -> Option<PopPath> {
        #[derive(PartialEq)]
        struct State {
            cost: f64,
            node: PopId,
            chain: bool,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap by cost, then by node id for determinism.
                other
                    .cost
                    .total_cmp(&self.cost)
                    .then_with(|| other.node.0.cmp(&self.node.0))
                    .then_with(|| other.chain.cmp(&self.chain))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.pops.len();
        let src_asn = self.pops[src.0 as usize].asn;
        let dst_asn = self.pops[dst.0 as usize].asn;
        // Two Dijkstra states per node: reached while still inside the
        // source AS (chain = 1, permits cold-potato backbone rides) or
        // after leaving it (chain = 0). Without the split, a cheap
        // external route to a source-AS PoP would shadow the more
        // expensive — but forwarding-capable — internal route.
        let idx = |node: PopId, chain: bool| node.0 as usize * 2 + usize::from(chain);
        let mut dist = vec![f64::INFINITY; n * 2];
        let mut prev: Vec<Option<(PopId, bool)>> = vec![None; n * 2];
        let mut heap = BinaryHeap::new();
        dist[idx(src, true)] = 0.0;
        heap.push(State {
            cost: 0.0,
            node: src,
            chain: true,
        });

        let mut final_state: Option<(PopId, bool)> = None;
        while let Some(State { cost, node, chain }) = heap.pop() {
            if cost > dist[idx(node, chain)] {
                continue;
            }
            if node == dst {
                final_state = Some((node, chain));
                break;
            }
            // Valley-free forwarding rules:
            //  * transit-capable PoPs forward anything;
            //  * PoPs of the source AS forward while the path is still
            //    inside the source AS (cold-potato egress);
            //  * PoPs of the destination AS forward only over their own
            //    backbone (reaching the homed prefix), never back out.
            let p = self.pops[node.0 as usize];
            let full_forward = p.transit_ok || (p.asn == src_asn && chain);
            let intra_only = p.asn == dst_asn;
            if !full_forward && !intra_only {
                continue;
            }
            for e in &self.adj[node.0 as usize] {
                if !full_forward && e.kind != LinkKind::IntraAs {
                    continue;
                }
                let next_chain = chain && self.pops[e.to.0 as usize].asn == src_asn;
                let next = cost + e.latency_ms + penalty(node, e.to, e.kind);
                let d = &mut dist[idx(e.to, next_chain)];
                if next < *d - 1e-12 {
                    *d = next;
                    prev[idx(e.to, next_chain)] = Some((node, chain));
                    heap.push(State {
                        cost: next,
                        node: e.to,
                        chain: next_chain,
                    });
                }
            }
        }

        let (mut cur, mut cur_chain) = final_state?;
        let mut pops = vec![cur];
        let mut chains = vec![cur_chain];
        while let Some((p, ch)) = prev[idx(cur, cur_chain)] {
            pops.push(p);
            chains.push(ch);
            cur = p;
            cur_chain = ch;
        }
        pops.reverse();
        debug_assert_eq!(pops[0], src);
        // Recompute cumulative latencies along the found path *without*
        // penalties, so reported latencies reflect the real links.
        let mut cum_ms = Vec::with_capacity(pops.len());
        let mut acc = 0.0;
        cum_ms.push(0.0);
        for w in pops.windows(2) {
            let (from, to) = (w[0], w[1]);
            let edge = self.adj[from.0 as usize]
                .iter()
                .find(|e| e.to == to)
                .expect("path edge must exist");
            acc += edge.latency_ms;
            cum_ms.push(acc);
        }
        Some(PopPath { pops, cum_ms })
    }

    /// Plain shortest path (no penalties).
    pub fn shortest_path(&self, src: PopId, dst: PopId) -> Option<PopPath> {
        self.shortest_path_with(src, dst, |_, _, _| 0.0)
    }

    /// Up to `k` latency-diverse paths from `src` to `dst`: the shortest
    /// path first, then paths found after cumulatively penalizing the
    /// peering edges of earlier results. Duplicates are dropped, so the
    /// result may be shorter than `k`. Used by the generator to give
    /// each route alternates for churn events.
    pub fn diverse_paths(&self, src: PopId, dst: PopId, k: usize) -> Vec<PopPath> {
        let mut found: Vec<PopPath> = Vec::new();
        let mut penalized: Vec<(PopId, PopId)> = Vec::new();
        for _ in 0..k {
            let path = self.shortest_path_with(src, dst, |a, b, kind| {
                let hit = penalized
                    .iter()
                    .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a));
                if hit && kind == LinkKind::Peering {
                    50.0
                } else if hit {
                    10.0
                } else {
                    0.0
                }
            });
            let Some(path) = path else { break };
            for w in path.pops.windows(2) {
                penalized.push((w[0], w[1]));
            }
            if !found.iter().any(|p| p.pops == path.pops) {
                found.push(path);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> (AsGraph, Vec<PopId>) {
        // AS1(m0) - AS2(m0) - AS2(m1) - AS3(m1)
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        let b = g.add_pop(Asn(2), MetroId(0));
        let c = g.add_pop(Asn(2), MetroId(1));
        let d = g.add_pop(Asn(3), MetroId(1));
        g.add_link(a, b, 1.0, LinkKind::Peering);
        g.add_link(b, c, 10.0, LinkKind::IntraAs);
        g.add_link(c, d, 2.0, LinkKind::Peering);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn shortest_path_line() {
        let (g, p) = line_graph();
        let path = g.shortest_path(p[0], p[3]).unwrap();
        assert_eq!(path.pops, p);
        assert_eq!(path.cum_ms, vec![0.0, 1.0, 11.0, 13.0]);
        assert!((path.total_ms() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn as_path_collapses_and_uses_last_hop() {
        let (g, p) = line_graph();
        let path = g.shortest_path(p[0], p[3]).unwrap();
        let asp = path.as_path(&g);
        assert_eq!(asp.len(), 3);
        assert_eq!(asp[0], (Asn(1), 0.0));
        // AS2's last PoP is at cumulative 11 ms (not the 1 ms entry hop).
        assert_eq!(asp[1], (Asn(2), 11.0));
        assert_eq!(asp[2], (Asn(3), 13.0));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        let b = g.add_pop(Asn(2), MetroId(1));
        assert!(g.shortest_path(a, b).is_none());
    }

    #[test]
    fn picks_cheaper_of_two_routes() {
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        let b = g.add_pop(Asn(2), MetroId(0));
        let c = g.add_pop(Asn(3), MetroId(0));
        let d = g.add_pop(Asn(4), MetroId(1));
        g.add_link(a, b, 1.0, LinkKind::Peering);
        g.add_link(b, d, 1.0, LinkKind::Peering);
        g.add_link(a, c, 0.5, LinkKind::Peering);
        g.add_link(c, d, 10.0, LinkKind::Peering);
        let path = g.shortest_path(a, d).unwrap();
        assert_eq!(path.pops, vec![a, b, d]);
        assert!((path.total_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diverse_paths_finds_alternate() {
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        let b = g.add_pop(Asn(2), MetroId(0));
        let c = g.add_pop(Asn(3), MetroId(0));
        let d = g.add_pop(Asn(4), MetroId(1));
        g.add_link(a, b, 1.0, LinkKind::Peering);
        g.add_link(b, d, 1.0, LinkKind::Peering);
        g.add_link(a, c, 1.5, LinkKind::Peering);
        g.add_link(c, d, 1.5, LinkKind::Peering);
        let paths = g.diverse_paths(a, d, 3);
        assert!(paths.len() >= 2, "expected an alternate path");
        assert_eq!(paths[0].pops, vec![a, b, d]);
        assert_eq!(paths[1].pops, vec![a, c, d]);
        // Alternate's latency is the true (unpenalized) latency.
        assert!((paths[1].total_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn diverse_paths_dedupes_single_route() {
        let (g, p) = line_graph();
        let paths = g.diverse_paths(p[0], p[3], 4);
        assert_eq!(paths.len(), 1, "line graph has a single simple route");
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_panics() {
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        g.add_link(a, a, 1.0, LinkKind::IntraAs);
    }

    #[test]
    fn pops_of_filters_by_asn() {
        let (g, _) = line_graph();
        let of2: Vec<_> = g.pops_of(Asn(2)).collect();
        assert_eq!(of2.len(), 2);
        assert!(of2.iter().all(|p| p.asn == Asn(2)));
    }

    #[test]
    fn non_transit_pop_is_not_traversed() {
        // AS1 - AS2(no transit) - AS3, and a longer AS1 - AS4 - AS3.
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        let b = g.add_pop_with(Asn(2), MetroId(0), false);
        let c = g.add_pop(Asn(3), MetroId(0));
        let d = g.add_pop(Asn(4), MetroId(0));
        g.add_link(a, b, 0.5, LinkKind::Peering);
        g.add_link(b, c, 0.5, LinkKind::Peering);
        g.add_link(a, d, 2.0, LinkKind::Peering);
        g.add_link(d, c, 2.0, LinkKind::Peering);
        // The short route through AS2 is forbidden (valley).
        let path = g.shortest_path(a, c).unwrap();
        assert_eq!(path.pops, vec![a, d, c]);
        // But AS2 is reachable as a destination.
        let to_b = g.shortest_path(a, b).unwrap();
        assert_eq!(to_b.pops, vec![a, b]);
        // And a non-transit source may still originate traffic.
        let from_b = g.shortest_path(b, a).unwrap();
        assert_eq!(from_b.pops, vec![b, a]);
    }

    #[test]
    fn destination_as_backbone_is_usable() {
        // cloud → transit → acc@m1 → (intra) acc@m2: the destination
        // AS carries its own traffic to the homed PoP.
        let mut g = AsGraph::new();
        let cloud = g.add_pop_with(Asn(1), MetroId(0), false);
        let t = g.add_pop(Asn(2), MetroId(0));
        let acc1 = g.add_pop_with(Asn(3), MetroId(0), false);
        let acc2 = g.add_pop_with(Asn(3), MetroId(1), false);
        g.add_link(cloud, t, 1.0, LinkKind::Peering);
        g.add_link(t, acc1, 1.0, LinkKind::Peering);
        g.add_link(acc1, acc2, 3.0, LinkKind::IntraAs);
        let path = g.shortest_path(cloud, acc2).unwrap();
        assert_eq!(path.pops, vec![cloud, t, acc1, acc2]);
        // The destination AS must not exit back out through a peering:
        // give acc2 a peering to another transit and ask for a
        // destination beyond it — unreachable via the access AS.
        let t2 = g.add_pop(Asn(4), MetroId(1));
        let far = g.add_pop_with(Asn(5), MetroId(1), false);
        g.add_link(acc2, t2, 0.1, LinkKind::Peering);
        g.add_link(t2, far, 0.1, LinkKind::Peering);
        assert!(
            g.shortest_path(cloud, far).is_none(),
            "AS3 must not transit cloud→far traffic"
        );
    }

    #[test]
    fn source_as_backbone_cold_potato() {
        // cloud@m0 —backbone→ cloud@m1 —peer→ acc@m1; no egress at m0.
        let mut g = AsGraph::new();
        let c0 = g.add_pop_with(Asn(1), MetroId(0), false);
        let c1 = g.add_pop_with(Asn(1), MetroId(1), false);
        let acc = g.add_pop_with(Asn(3), MetroId(1), false);
        g.add_link(c0, c1, 20.0, LinkKind::IntraAs);
        g.add_link(c1, acc, 1.0, LinkKind::Peering);
        let path = g.shortest_path(c0, acc).unwrap();
        assert_eq!(path.pops, vec![c0, c1, acc]);
        // Once the path leaves the cloud it may not re-enter, even when
        // a transit detour back into cloud@m1 would be far cheaper:
        // forwarding from a re-entered cloud PoP would make the cloud a
        // transit for the tier below it.
        let t = g.add_pop(Asn(2), MetroId(0));
        g.add_link(c0, t, 0.1, LinkKind::Peering);
        g.add_link(t, c1, 0.1, LinkKind::Peering);
        let p2 = g.shortest_path(c0, acc).unwrap();
        assert_eq!(
            p2.pops,
            vec![c0, c1, acc],
            "the 0.2 ms detour re-enters the cloud and must be rejected"
        );
        assert!((p2.total_ms() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-cost routes: the lower pop id must win, always.
        let mut g = AsGraph::new();
        let a = g.add_pop(Asn(1), MetroId(0));
        let b = g.add_pop(Asn(2), MetroId(0));
        let c = g.add_pop(Asn(3), MetroId(0));
        let d = g.add_pop(Asn(4), MetroId(1));
        g.add_link(a, b, 1.0, LinkKind::Peering);
        g.add_link(b, d, 1.0, LinkKind::Peering);
        g.add_link(a, c, 1.0, LinkKind::Peering);
        g.add_link(c, d, 1.0, LinkKind::Peering);
        let first = g.shortest_path(a, d).unwrap();
        for _ in 0..10 {
            assert_eq!(g.shortest_path(a, d).unwrap().pops, first.pops);
        }
    }
}
