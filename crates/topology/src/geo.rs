//! Geography: regions, metros, and distance-derived baseline RTT.
//!
//! The paper's badness thresholds are *region-specific* (§2.1) and its
//! evaluation slices results by region (Fig. 2, Fig. 9). The synthetic
//! world uses eight regions with a handful of metro areas each; the
//! speed of light in fiber over the great-circle distance between two
//! metros gives the propagation component of link latency.

use std::fmt;

/// A world region, mirroring the regions in the paper's Fig. 2 / Fig. 9.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Region {
    /// United States (the paper notes its aggressive RTT targets).
    UnitedStates,
    /// Western & central Europe.
    Europe,
    /// China.
    China,
    /// India.
    India,
    /// Brazil / South America.
    Brazil,
    /// Australia / Oceania.
    Australia,
    /// East Asia outside China (Japan, Korea, SE Asia).
    EastAsia,
    /// Africa & Middle East.
    Africa,
}

impl Region {
    /// All regions, in a fixed order used for reports.
    pub const ALL: [Region; 8] = [
        Region::UnitedStates,
        Region::Europe,
        Region::China,
        Region::India,
        Region::Brazil,
        Region::Australia,
        Region::EastAsia,
        Region::Africa,
    ];

    /// Stable index of this region in [`Region::ALL`].
    pub fn index(self) -> usize {
        Region::ALL.iter().position(|r| *r == self).unwrap()
    }

    /// Short report label.
    pub fn label(self) -> &'static str {
        match self {
            Region::UnitedStates => "USA",
            Region::Europe => "Europe",
            Region::China => "China",
            Region::India => "India",
            Region::Brazil => "Brazil",
            Region::Australia => "Australia",
            Region::EastAsia => "EastAsia",
            Region::Africa => "Africa",
        }
    }

    /// Relative maturity of the region's transit infrastructure in
    /// `[0, 1]`; lower values make the generator schedule more
    /// middle-segment faults there. The paper observes middle-segment
    /// issues dominate in India, China and Brazil "likely due to the
    /// still-evolving transit networks in these regions" (§6.2).
    pub fn transit_maturity(self) -> f64 {
        match self {
            Region::UnitedStates => 0.95,
            Region::Europe => 0.92,
            Region::China => 0.55,
            Region::India => 0.45,
            Region::Brazil => 0.50,
            Region::Australia => 0.85,
            Region::EastAsia => 0.75,
            Region::Africa => 0.60,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a metro area within a [`crate::Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MetroId(pub u16);

impl fmt::Display for MetroId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metro{}", self.0)
    }
}

/// A point on the globe (degrees).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Great-circle distance to `other` in kilometres (haversine,
    /// spherical Earth of radius 6371 km).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        const R: f64 = 6371.0;
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }

    /// One-way propagation delay in milliseconds over fiber laid along
    /// the great circle, with a 1.4× path-stretch factor for real cable
    /// routes. Light in fiber travels at roughly 2/3 c ≈ 200 km/ms.
    pub fn fiber_delay_ms(self, other: GeoPoint) -> f64 {
        const KM_PER_MS: f64 = 200.0;
        const STRETCH: f64 = 1.4;
        self.distance_km(other) * STRETCH / KM_PER_MS
    }
}

/// A metro area: the anchor for PoPs, cloud locations, and client homes.
#[derive(Clone, Debug)]
pub struct Metro {
    /// Identifier (index into [`crate::Topology::metros`]).
    pub id: MetroId,
    /// Human-readable name, e.g. `"us-east"`.
    pub name: String,
    /// Region this metro belongs to.
    pub region: Region,
    /// Location on the globe.
    pub location: GeoPoint,
}

/// The built-in metro catalogue: 26 metros across the 8 regions, with
/// real-city coordinates so inter-metro latencies are plausible.
pub fn builtin_metros() -> Vec<Metro> {
    let spec: &[(&str, Region, f64, f64)] = &[
        // United States
        ("us-east", Region::UnitedStates, 38.9, -77.0), // Washington DC
        ("us-west", Region::UnitedStates, 37.4, -122.1), // Bay Area
        ("us-central", Region::UnitedStates, 41.9, -87.6), // Chicago
        ("us-south", Region::UnitedStates, 32.8, -96.8), // Dallas
        // Europe
        ("eu-west", Region::Europe, 51.5, -0.1),   // London
        ("eu-central", Region::Europe, 50.1, 8.7), // Frankfurt
        ("eu-north", Region::Europe, 59.3, 18.1),  // Stockholm
        ("eu-south", Region::Europe, 40.4, -3.7),  // Madrid
        // China
        ("cn-north", Region::China, 39.9, 116.4), // Beijing
        ("cn-east", Region::China, 31.2, 121.5),  // Shanghai
        ("cn-south", Region::China, 22.5, 114.1), // Shenzhen
        // India
        ("in-west", Region::India, 19.1, 72.9),  // Mumbai
        ("in-south", Region::India, 13.1, 80.3), // Chennai
        ("in-north", Region::India, 28.6, 77.2), // Delhi
        // Brazil
        ("br-south", Region::Brazil, -23.5, -46.6), // São Paulo
        ("br-east", Region::Brazil, -22.9, -43.2),  // Rio de Janeiro
        // Australia
        ("au-east", Region::Australia, -33.9, 151.2), // Sydney
        ("au-southeast", Region::Australia, -37.8, 145.0), // Melbourne
        // East Asia
        ("ea-japan", Region::EastAsia, 35.7, 139.7), // Tokyo
        ("ea-korea", Region::EastAsia, 37.6, 127.0), // Seoul
        ("ea-southeast", Region::EastAsia, 1.35, 103.8), // Singapore
        ("ea-hongkong", Region::EastAsia, 22.3, 114.2), // Hong Kong
        // Africa & Middle East
        ("af-south", Region::Africa, -33.9, 18.4), // Cape Town
        ("af-north", Region::Africa, 30.0, 31.2),  // Cairo
        ("me-central", Region::Africa, 25.2, 55.3), // Dubai
        ("af-west", Region::Africa, 6.5, 3.4),     // Lagos
    ];
    spec.iter()
        .enumerate()
        .map(|(i, (name, region, lat, lon))| Metro {
            id: MetroId(i as u16),
            name: (*name).to_string(),
            region: *region,
            location: GeoPoint {
                lat: *lat,
                lon: *lon,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_regions_indexable() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn maturity_bounds() {
        for r in Region::ALL {
            let m = r.transit_maturity();
            assert!((0.0..=1.0).contains(&m), "{r}: {m}");
        }
        // The paper's middle-heavy regions must be the least mature.
        assert!(Region::India.transit_maturity() < Region::UnitedStates.transit_maturity());
        assert!(Region::China.transit_maturity() < Region::Europe.transit_maturity());
        assert!(Region::Brazil.transit_maturity() < Region::Australia.transit_maturity());
    }

    #[test]
    fn haversine_known_distance() {
        // London ↔ New York is about 5570 km.
        let london = GeoPoint {
            lat: 51.5,
            lon: -0.1,
        };
        let nyc = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        let d = london.distance_km(nyc);
        assert!((5500.0..5700.0).contains(&d), "got {d}");
    }

    #[test]
    fn fiber_delay_transatlantic() {
        // One-way London ↔ NYC over fiber: ~35–45 ms with stretch.
        let london = GeoPoint {
            lat: 51.5,
            lon: -0.1,
        };
        let nyc = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        let ms = london.fiber_delay_ms(nyc);
        assert!((30.0..50.0).contains(&ms), "got {ms}");
    }

    #[test]
    fn zero_distance() {
        let p = GeoPoint {
            lat: 10.0,
            lon: 20.0,
        };
        assert!(p.distance_km(p) < 1e-9);
        assert!(p.fiber_delay_ms(p) < 1e-9);
    }

    #[test]
    fn builtin_metros_cover_all_regions() {
        let metros = builtin_metros();
        assert!(metros.len() >= 20);
        for r in Region::ALL {
            assert!(
                metros.iter().any(|m| m.region == r),
                "region {r} has no metro"
            );
        }
        // Ids are dense and ordered.
        for (i, m) in metros.iter().enumerate() {
            assert_eq!(m.id, MetroId(i as u16));
        }
        // Names are unique.
        let mut names: Vec<_> = metros.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), metros.len());
    }
}
