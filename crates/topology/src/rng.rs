//! Deterministic, splittable random numbers.
//!
//! Reproducibility is a hard requirement for the experiment harness:
//! every table and figure must regenerate identically from a seed, and
//! any single quartet must be re-derivable in isolation (so evaluation
//! code can cross-examine the simulator without replaying a whole
//! month). To get that, all randomness is *counter-based*: a stream is
//! keyed by `(seed, domain label, entity ids…)`, hashed with SplitMix64
//! into the state of a xoshiro256++ generator. No global state, no
//! dependence on call order or thread count, identical output on every
//! platform.

/// SplitMix64 step; used both as a stand-alone mixer and to seed
/// xoshiro from arbitrary key material.
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalizes a SplitMix64 state into an output word.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ deterministic generator with distribution helpers.
///
/// Streams are keyed, not sequential: the same `(seed, keys)` always
/// yields the same values, independent of anything drawn elsewhere.
///
/// ```
/// use blameit_topology::rng::DetRng;
/// let mut a = DetRng::from_keys(7, &[1, 2]);
/// let mut b = DetRng::from_keys(7, &[1, 2]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second normal variate from the polar method.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Builds a generator from a single seed.
    pub fn new(seed: u64) -> Self {
        Self::from_keys(seed, &[])
    }

    /// Builds a generator keyed by `(seed, keys…)`. Different key
    /// tuples yield statistically independent streams.
    pub fn from_keys(seed: u64, keys: &[u64]) -> Self {
        let mut acc = seed ^ 0x6A09_E667_F3BC_C909;
        for (i, k) in keys.iter().enumerate() {
            // Mix position so permuted keys differ.
            acc = splitmix64_mix(
                acc ^ k.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            );
        }
        let mut sm = acc;
        let mut s = [0u64; 4];
        for slot in &mut s {
            splitmix64(&mut sm);
            *slot = splitmix64_mix(sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng {
            s,
            spare_normal: None,
        }
    }

    /// Derives a child stream keyed by additional values; the parent is
    /// unaffected. This is how per-entity streams are split off.
    pub fn derive(&self, keys: &[u64]) -> DetRng {
        let base = splitmix64_mix(self.s[0] ^ self.s[2].rotate_left(17));
        DetRng::from_keys(base, keys)
    }

    /// The generator's full state, for checkpointing: the four xoshiro
    /// state words plus the cached spare normal variate. Restoring via
    /// [`DetRng::from_state`] resumes the stream exactly where it left
    /// off — required for byte-identical replay after a crash.
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.s, self.spare_normal)
    }

    /// Rebuilds a generator from a state captured by [`DetRng::state`].
    /// The all-zero state (never produced by a healthy generator) is
    /// nudged to a fixed non-zero word, mirroring `from_keys`.
    pub fn from_state(mut s: [u64; 4], spare_normal: Option<f64>) -> DetRng {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s, spare_normal }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` (Lemire's method, unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection-free multiply-shift with correction loop.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform usize in `[0, n)` — convenience for indexing.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via the Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Log-normal: `exp(N(mu, sigma))`. Note `mu`/`sigma` are the
    /// parameters of the underlying normal, not the resulting mean.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with the given mean.
    ///
    /// # Panics
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Pareto with scale `xm` and shape `alpha` (heavy-tailed; the
    /// paper's incident durations are long-tailed, §2.3).
    ///
    /// # Panics
    /// Panics if `xm <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "bad pareto params");
        let u = 1.0 - self.f64(); // (0, 1]
        xm / u.powf(1.0 / alpha)
    }

    /// Poisson draw (Knuth's method for small means, normal
    /// approximation above 64).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let z = self.normal();
            let v = mean + mean.sqrt() * z;
            return v.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.index(items.len())]
    }

    /// Samples an index proportional to the given non-negative weights.
    ///
    /// # Panics
    /// Panics if weights are empty or sum to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = DetRng::from_keys(42, &[1, 2, 3]);
        let mut b = DetRng::from_keys(42, &[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_differ() {
        let mut a = DetRng::from_keys(42, &[1, 2, 3]);
        let mut b = DetRng::from_keys(42, &[1, 2, 4]);
        let mut c = DetRng::from_keys(42, &[1, 3, 2]);
        let av: Vec<_> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<_> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<_> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(av, bv);
        assert_ne!(av, cv, "permuted keys must give a different stream");
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let parent = DetRng::from_keys(7, &[9]);
        let mut c1 = parent.derive(&[1]);
        let mut c2 = parent.derive(&[1]);
        let mut c3 = parent.derive(&[2]);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = DetRng::new(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for c in counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(3);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::new(4);
        let n = 100_000;
        let mean_target = 7.5;
        let sum: f64 = (0..n).map(|_| r.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut r = DetRng::new(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.pareto(5.0, 1.1)).collect();
        let above_min = samples.iter().all(|&x| x >= 5.0);
        assert!(above_min);
        // With alpha 1.1 a visible fraction exceeds 20× the scale.
        let tail = samples.iter().filter(|&&x| x > 100.0).count() as f64 / n as f64;
        assert!(tail > 0.01, "tail fraction {tail}");
    }

    #[test]
    fn poisson_small_and_large_mean() {
        let mut r = DetRng::new(6);
        let n = 50_000;
        for mean in [0.5, 3.0, 30.0, 200.0] {
            let sum: u64 = (0..n).map(|_| r.poisson(mean)).sum();
            let got = sum as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean.max(1.0) * 0.05,
                "poisson({mean}) sample mean {got}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = DetRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = DetRng::new(9);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn range_helpers() {
        let mut r = DetRng::new(10);
        for _ in 0..1000 {
            let x = r.range_f64(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
            let y = r.range_u64(3, 5);
            assert!((3..=5).contains(&y));
        }
        assert_eq!(r.range_u64(4, 4), 4);
    }

    #[test]
    fn lognormal_positive() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            assert!(r.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut r = DetRng::from_keys(99, &[4, 2]);
        r.normal(); // populate the spare so both state halves matter
        let (s, spare) = r.state();
        let mut resumed = DetRng::from_state(s, spare);
        for _ in 0..64 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
        assert_eq!(r.normal().to_bits(), resumed.normal().to_bits());
        // The all-zero state is nudged, never a stuck generator.
        let mut z = DetRng::from_state([0; 4], None);
        assert_ne!(z.next_u64() | z.next_u64() | z.next_u64(), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(12);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
