//! Cloud edge locations.
//!
//! Azure serves clients from "hundreds of network edge locations
//! worldwide" (§1). Each [`CloudLocation`] here is one such edge site:
//! a PoP of the cloud AS in some metro, terminating TCP connections and
//! recording handshake RTTs. Clients reach the *nearest* location via
//! anycast (the paper's footnote 2); the assignment itself is computed
//! during topology generation from path latencies.

use crate::geo::{MetroId, Region};
use std::fmt;

/// Identifier of a cloud edge location (index into
/// [`crate::Topology::cloud_locations`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CloudLocId(pub u16);

impl fmt::Display for CloudLocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cloud{}", self.0)
    }
}

/// One cloud edge site.
#[derive(Clone, Debug)]
pub struct CloudLocation {
    /// Identifier.
    pub id: CloudLocId,
    /// Human-readable name, e.g. `"edge-us-east-0"`.
    pub name: String,
    /// Metro hosting the site.
    pub metro: MetroId,
    /// Region of the metro (denormalized for convenience).
    pub region: Region,
    /// Baseline intra-cloud + server contribution to the handshake RTT,
    /// in milliseconds. Cloud-segment faults (e.g. the Australia server
    /// overload in §6.3) inflate this.
    pub base_cloud_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(CloudLocId(3).to_string(), "cloud3");
    }

    #[test]
    fn construct() {
        let c = CloudLocation {
            id: CloudLocId(0),
            name: "edge-us-east-0".into(),
            metro: MetroId(0),
            region: Region::UnitedStates,
            base_cloud_ms: 3.0,
        };
        assert_eq!(c.id, CloudLocId(0));
        assert!(c.base_cloud_ms > 0.0);
    }
}
