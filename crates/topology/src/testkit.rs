//! Seeded property-test harness.
//!
//! A tiny in-repo replacement for the subset of `proptest` the
//! workspace used (the build environment is offline, so external dev
//! dependencies cannot be downloaded). It runs a closure against many
//! independently seeded [`DetRng`]s and, on failure, reports the case
//! index and seed so the exact failing input can be replayed:
//!
//! ```
//! use blameit_topology::testkit::check;
//!
//! check("u64_roundtrip", 256, |rng| {
//!     let v = rng.next_u64();
//!     assert_eq!(v, u64::from_le_bytes(v.to_le_bytes()));
//! });
//! ```
//!
//! Unlike proptest there is no shrinking: generators are the `DetRng`
//! methods themselves, and a failing case is reproduced by running the
//! same property with [`check_one`] and the reported seed.

use crate::rng::DetRng;

/// Base seed for every property, fixed so CI failures reproduce
/// locally. Override per-run with `BLAMEIT_TEST_SEED=<u64>`.
pub const DEFAULT_SEED: u64 = 0x0516_C00D_5EED;

fn base_seed() -> u64 {
    match std::env::var("BLAMEIT_TEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("BLAMEIT_TEST_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// FNV-1a, folding the property name into the seed keys.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `prop` against `cases` independently seeded RNGs; panics with
/// the failing case's index and seed on the first failure.
pub fn check(name: &str, cases: u64, mut prop: impl FnMut(&mut DetRng)) {
    let seed = base_seed();
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = DetRng::from_keys(seed, &[hash_name(name), case]);
            prop(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property {name:?} failed at case {case}/{cases} \
                 (replay: check_one({name:?}, {seed:#x}, {case}, ..) \
                 or rerun with BLAMEIT_TEST_SEED={seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replays a single case of a property (see the failure message from
/// [`check`]).
pub fn check_one(name: &str, seed: u64, case: u64, mut prop: impl FnMut(&mut DetRng)) {
    let mut rng = DetRng::from_keys(seed, &[hash_name(name), case]);
    prop(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_all_cases_with_distinct_seeds() {
        let mut seen = std::collections::HashSet::new();
        check("distinct", 32, |rng| {
            seen.insert(rng.next_u64());
        });
        assert_eq!(seen.len(), 32, "each case gets its own stream");
    }

    #[test]
    fn failure_reports_and_propagates() {
        let caught = std::panic::catch_unwind(|| {
            check("always-fails", 4, |_rng| panic!("intentional"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn check_one_replays_the_same_stream() {
        let mut first = 0;
        check("replay", 3, |rng| {
            first = rng.next_u64();
        });
        let mut replayed = 0;
        check_one("replay", DEFAULT_SEED, 2, |rng| {
            replayed = rng.next_u64();
        });
        assert_eq!(first, replayed, "case 2 is the last case run by check");
    }
}
