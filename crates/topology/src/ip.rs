//! IPv4 prefixes.
//!
//! BlameIt aggregates client measurements at the granularity of the IPv4
//! `/24` block (the paper's "client IP /24", §2.1) and groups routes by
//! BGP-announced prefixes of arbitrary length (§4.2). Two types mirror
//! that split:
//!
//! * [`Prefix24`] — exactly a `/24`; the unit of quartet aggregation.
//! * [`IpPrefix`] — a variable-length prefix (`/8` … `/32`); the unit of
//!   BGP announcement.

use std::fmt;
use std::str::FromStr;

/// An IPv4 `/24` block, e.g. `203.0.113.0/24`.
///
/// Stored as the 24-bit block number (the address shifted right by 8),
/// so consecutive block numbers are adjacent `/24`s. This is the key of
/// the paper's *quartet* (§2.1) together with cloud location, device
/// class and 5-minute bucket.
///
/// ```
/// use blameit_topology::Prefix24;
/// let p: Prefix24 = "203.0.113.0/24".parse().unwrap();
/// assert!(p.contains(p.addr(42)));
/// assert_eq!(p.to_string(), "203.0.113.0/24");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// Builds a `/24` from its 24-bit block number.
    ///
    /// # Panics
    /// Panics if `block` does not fit in 24 bits.
    pub fn from_block(block: u32) -> Self {
        assert!(block < (1 << 24), "/24 block number out of range: {block}");
        Prefix24(block)
    }

    /// Builds the `/24` containing the given IPv4 address (as a `u32`).
    pub fn containing(addr: u32) -> Self {
        Prefix24(addr >> 8)
    }

    /// The 24-bit block number.
    pub fn block(self) -> u32 {
        self.0
    }

    /// The base (network) address of the block, as a `u32`.
    pub fn base_addr(self) -> u32 {
        self.0 << 8
    }

    /// An address inside the block at the given host offset (0–255).
    pub fn addr(self, host: u8) -> u32 {
        self.base_addr() | host as u32
    }

    /// True if `addr` falls inside this `/24`.
    pub fn contains(self, addr: u32) -> bool {
        addr >> 8 == self.0
    }

    /// The enclosing [`IpPrefix`] of length 24.
    pub fn as_prefix(self) -> IpPrefix {
        IpPrefix::new(self.base_addr(), 24)
    }
}

impl fmt::Debug for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.base_addr();
        write!(
            f,
            "{}.{}.{}.0/24",
            (a >> 24) & 0xff,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff
        )
    }
}

/// Error returned when parsing a prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix24 {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let p: IpPrefix = s.parse()?;
        if p.len() != 24 {
            return Err(ParsePrefixError(format!("{s} is not a /24")));
        }
        Ok(Prefix24::containing(p.base()))
    }
}

/// A variable-length IPv4 prefix, e.g. `131.107.0.0/16`.
///
/// Used for BGP announcements: access ISPs in the synthetic topology
/// announce prefixes between `/14` and `/22`, each covering many client
/// `/24`s — mirroring the paper's observation that BGP-announced blocks
/// are coarser than the measurement granularity (§3.2, §4.2).
///
/// ```
/// use blameit_topology::IpPrefix;
/// let p: IpPrefix = "10.4.0.0/20".parse().unwrap();
/// assert_eq!(p.num_24s(), 16);
/// assert!(p.iter_24s().all(|b| p.covers_24(b)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpPrefix {
    base: u32,
    len: u8,
}

impl IpPrefix {
    /// Builds a prefix, masking `base` down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(base: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range: {len}");
        IpPrefix {
            base: base & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network (base) address.
    pub fn base(self) -> u32 {
        self.base
    }

    /// The prefix length in bits.
    pub fn len(self) -> u8 {
        self.len
    }

    /// True for the degenerate `/0` prefix (matches everything).
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.base
    }

    /// True if this prefix fully contains `other` (is equal or coarser).
    pub fn covers(self, other: IpPrefix) -> bool {
        self.len <= other.len && self.contains(other.base)
    }

    /// True if this prefix fully contains the `/24` block.
    pub fn covers_24(self, p24: Prefix24) -> bool {
        self.len <= 24 && self.contains(p24.base_addr())
    }

    /// Number of `/24` blocks covered (0 if the prefix is longer than /24).
    pub fn num_24s(self) -> u32 {
        if self.len > 24 {
            0
        } else {
            1u32 << (24 - self.len)
        }
    }

    /// Iterates over the `/24` blocks covered by this prefix.
    pub fn iter_24s(self) -> impl Iterator<Item = Prefix24> {
        let first = self.base >> 8;
        (first..first + self.num_24s()).map(Prefix24::from_block)
    }

    /// Splits this prefix into `2^bits` equal sub-prefixes.
    ///
    /// # Panics
    /// Panics if `len + bits > 32`.
    pub fn split(self, bits: u8) -> impl Iterator<Item = IpPrefix> {
        let new_len = self.len + bits;
        assert!(new_len <= 32, "cannot split /{} by {} bits", self.len, bits);
        let step = 1u64 << (32 - new_len);
        let base = self.base as u64;
        (0..(1u64 << bits)).map(move |i| IpPrefix::new((base + i * step) as u32, new_len))
    }
}

impl fmt::Debug for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.base;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (a >> 24) & 0xff,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

impl FromStr for IpPrefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError(s.to_string());
        let (addr_s, len_s) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len_s.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        let mut octets = addr_s.split('.');
        let mut addr: u32 = 0;
        for _ in 0..4 {
            let o: u8 = octets.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            addr = (addr << 8) | o as u32;
        }
        if octets.next().is_some() {
            return Err(err());
        }
        Ok(IpPrefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix24_roundtrip_block() {
        let p = Prefix24::from_block(0x00CB_0071); // 203.0.113.0/24
        assert_eq!(p.block(), 0x00CB_0071);
        assert_eq!(p.base_addr(), 0xCB00_7100);
        assert_eq!(p.to_string(), "203.0.113.0/24");
    }

    #[test]
    fn prefix24_containing_and_contains() {
        let addr = 0xCB00_7142; // 203.0.113.66
        let p = Prefix24::containing(addr);
        assert!(p.contains(addr));
        assert!(p.contains(p.addr(0)));
        assert!(p.contains(p.addr(255)));
        assert!(!p.contains(addr + 256));
    }

    #[test]
    fn prefix24_parse() {
        let p: Prefix24 = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.base_addr(), 0x0A01_0200);
        assert!("10.1.2.0/23".parse::<Prefix24>().is_err());
        assert!("10.1.2/24".parse::<Prefix24>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix24_block_overflow_panics() {
        Prefix24::from_block(1 << 24);
    }

    #[test]
    fn ipprefix_masks_base() {
        let p = IpPrefix::new(0x0A01_02FF, 16);
        assert_eq!(p.base(), 0x0A01_0000);
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn ipprefix_contains_and_covers() {
        let p16: IpPrefix = "10.1.0.0/16".parse().unwrap();
        let p20: IpPrefix = "10.1.16.0/20".parse().unwrap();
        assert!(p16.covers(p20));
        assert!(!p20.covers(p16));
        assert!(p16.covers(p16));
        assert!(p16.contains(0x0A01_FFFF));
        assert!(!p16.contains(0x0A02_0000));
    }

    #[test]
    fn ipprefix_num_24s_and_iter() {
        let p20: IpPrefix = "10.1.16.0/20".parse().unwrap();
        assert_eq!(p20.num_24s(), 16);
        let blocks: Vec<_> = p20.iter_24s().collect();
        assert_eq!(blocks.len(), 16);
        assert_eq!(blocks[0].to_string(), "10.1.16.0/24");
        assert_eq!(blocks[15].to_string(), "10.1.31.0/24");
        for b in &blocks {
            assert!(p20.covers_24(*b));
        }
    }

    #[test]
    fn ipprefix_longer_than_24_covers_no_24s() {
        let p26 = IpPrefix::new(0x0A01_0200, 26);
        assert_eq!(p26.num_24s(), 0);
        assert!(!p26.covers_24(Prefix24::containing(0x0A01_0200)));
    }

    #[test]
    fn ipprefix_split() {
        let p16: IpPrefix = "10.1.0.0/16".parse().unwrap();
        let halves: Vec<_> = p16.split(1).collect();
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].to_string(), "10.1.0.0/17");
        assert_eq!(halves[1].to_string(), "10.1.128.0/17");
        let quads: Vec<_> = p16.split(2).collect();
        assert_eq!(quads.len(), 4);
        assert!(p16.covers(quads[3]));
    }

    #[test]
    fn ipprefix_zero_len() {
        let p0 = IpPrefix::new(0x1234_5678, 0);
        assert!(p0.is_empty());
        assert!(p0.contains(0));
        assert!(p0.contains(u32::MAX));
    }

    #[test]
    fn ipprefix_parse_errors() {
        for bad in [
            "10.1.0.0",
            "10.1.0.0/33",
            "10.1.0/16",
            "a.b.c.d/8",
            "10.1.0.0.0/16",
        ] {
            assert!(bad.parse::<IpPrefix>().is_err(), "{bad} should not parse");
        }
    }
}
