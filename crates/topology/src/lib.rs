//! # blameit-topology — synthetic Internet model
//!
//! This crate is the *Internet substrate* for the BlameIt reproduction
//! (Jin et al., *Zooming in on Wide-area Latencies to a Global Cloud
//! Provider*, SIGCOMM 2019). The paper runs on Azure's production
//! telemetry: hundreds of edge locations, BGP tables from border routers,
//! and clients in millions of IPv4 /24 blocks. None of that is publicly
//! available, so this crate builds a deterministic synthetic equivalent:
//!
//! * [`ip`] — IPv4 /24 client blocks and variable-length BGP prefixes.
//! * [`asn`] — autonomous-system numbers and roles (cloud, tier-1,
//!   transit, access, mobile carrier).
//! * [`geo`] — regions, metros, coordinates, and great-circle fiber RTT.
//! * [`cloud`] — the cloud provider's edge locations (the paper's
//!   "cloud locations") and anycast client assignment.
//! * [`graph`] — a PoP-level (AS × metro) topology graph with latencied
//!   links; paths through it yield realistic, location-dependent AS paths.
//! * [`bgp`] — per-location BGP tables, the *BGP path* middle-segment
//!   abstraction (§4.2 of the paper), BGP atoms/prefixes, route churn,
//!   and an IBGP-listener event feed.
//! * [`gen`] — a seeded generator assembling all of the above into a
//!   [`Topology`].
//!
//! Everything is deterministic given a seed: the same seed produces the
//! same Internet, byte for byte, regardless of platform or thread count.

pub mod asn;
pub mod bgp;
pub mod cloud;
pub mod gen;
pub mod geo;
pub mod graph;
pub mod ip;
pub mod rng;
pub mod testkit;

pub use asn::{AsInfo, AsRole, Asn};
pub use bgp::{BgpAtom, BgpChurnEvent, BgpPath, BgpTable, PathId, RouteEntry};
pub use cloud::{CloudLocId, CloudLocation};
pub use gen::{Topology, TopologyConfig};
pub use geo::{GeoPoint, Metro, MetroId, Region};
pub use graph::{AsGraph, LinkKind, PopId};
pub use ip::{IpPrefix, Prefix24};
