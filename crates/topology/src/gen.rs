//! Seeded synthetic-Internet generation.
//!
//! [`Topology::generate`] assembles the whole substrate: metros, ASes,
//! the PoP graph, cloud edge locations, announced prefixes with client
//! `/24`s, and full per-location BGP tables (primary + alternate routes
//! per prefix). The output is deterministic in the seed.
//!
//! The construction follows the Internet's loose hierarchy:
//!
//! * one **cloud** AS with a PoP (edge location) in every configured
//!   metro, mirroring Azure's global edge (paper §1, Fig. 1);
//! * a handful of **tier-1** backbones present in many metros;
//! * regional **transit** ASes covering their region's metros — these
//!   are the usual middle segment, and the generator peers them less
//!   richly in low-[`Region::transit_maturity`] regions;
//! * **access** ISPs (broadband and cellular) in one or two metros,
//!   each announcing a few BGP prefixes that fan out into client /24s.

use crate::asn::{AsInfo, AsRole, Asn};
use crate::bgp::{AsHop, BgpTable, PathTable, RouteIdx, RouteOption, RouteOptions};
use crate::cloud::{CloudLocId, CloudLocation};
use crate::geo::{builtin_metros, Metro, MetroId, Region};
use crate::graph::{AsGraph, LinkKind, PopId, PopPath};
use crate::ip::{IpPrefix, Prefix24};
use crate::rng::DetRng;
use std::collections::HashMap;

/// Tuning knobs for topology generation.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of global tier-1 backbones.
    pub tier1_count: usize,
    /// Regional transit providers per region.
    pub transits_per_region: usize,
    /// Broadband access ISPs per metro.
    pub broadband_per_metro: usize,
    /// Cellular carriers per metro.
    pub mobile_per_metro: usize,
    /// Announced BGP prefixes per access ISP: inclusive range.
    pub prefixes_per_access: (usize, usize),
    /// Announced prefix length: inclusive range (must be ≤ 24). A /20
    /// fans out into 16 client /24s.
    pub prefix_len: (u8, u8),
    /// Alternate routes computed per (location, origin) for churn.
    pub route_alternates: usize,
    /// Probability a /24 also maintains connections to its
    /// second-nearest cloud location (enables the paper's "ambiguous"
    /// check, Algorithm 1 lines 18–19).
    pub secondary_loc_prob: f64,
    /// Probability the cloud peers directly with an access ISP present
    /// at one of its edge metros (produces empty middle paths).
    pub direct_peering_prob: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 0x0B1A_3E17,
            tier1_count: 8,
            transits_per_region: 3,
            broadband_per_metro: 3,
            mobile_per_metro: 1,
            prefixes_per_access: (2, 4),
            prefix_len: (18, 21),
            route_alternates: 3,
            secondary_loc_prob: 0.30,
            direct_peering_prob: 0.20,
        }
    }
}

impl TopologyConfig {
    /// A reduced-scale configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            tier1_count: 3,
            transits_per_region: 1,
            broadband_per_metro: 1,
            mobile_per_metro: 1,
            prefixes_per_access: (1, 2),
            prefix_len: (21, 22),
            route_alternates: 2,
            ..TopologyConfig::default()
        }
    }
}

/// A BGP-announced prefix and where it lives.
#[derive(Clone, Debug)]
pub struct AnnouncedPrefix {
    /// The announced block (coarser than /24).
    pub prefix: IpPrefix,
    /// Origin (client) AS.
    pub origin: Asn,
    /// Metro where the origin AS homes this prefix.
    pub metro: MetroId,
    /// True if the origin is a cellular carrier.
    pub mobile: bool,
}

/// One client /24: the unit of quartet aggregation.
#[derive(Clone, Debug)]
pub struct ClientBlock {
    /// The /24 itself.
    pub p24: Prefix24,
    /// Index of the announced prefix covering it (into
    /// [`Topology::prefixes`]).
    pub prefix_idx: u32,
    /// Client AS.
    pub origin: Asn,
    /// Home metro.
    pub metro: MetroId,
    /// Region (denormalized).
    pub region: Region,
    /// True for cellular clients ("mobile device" in the quartet key).
    pub mobile: bool,
    /// Nominal active-client population scale (the paper: "large IP
    /// address blocks often have fewer active clients than smaller IP
    /// blocks", §3.2 — populations here are heavy-tailed and
    /// independent of announced-prefix size).
    pub population: u32,
    /// True for enterprise blocks (daytime-heavy activity, §2.2).
    pub enterprise: bool,
    /// Nearest cloud location (anycast primary).
    pub primary_loc: CloudLocId,
    /// Second-nearest location this block *also* talks to, if any.
    pub secondary_loc: Option<CloudLocId>,
}

/// The fully generated synthetic Internet.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The configuration used.
    pub config: TopologyConfig,
    /// Metro catalogue.
    pub metros: Vec<Metro>,
    /// All ASes (cloud, tier-1, transit, access).
    pub ases: Vec<AsInfo>,
    /// PoP-level graph.
    pub graph: AsGraph,
    /// The cloud provider's AS number.
    pub cloud_asn: Asn,
    /// Cloud edge locations.
    pub cloud_locations: Vec<CloudLocation>,
    /// Interned middle paths.
    pub paths: PathTable,
    /// Per-location BGP tables (route options per announced prefix).
    pub bgp: BgpTable,
    /// Announced-prefix catalogue.
    pub prefixes: Vec<AnnouncedPrefix>,
    /// Client /24 catalogue.
    pub clients: Vec<ClientBlock>,
    p24_index: HashMap<Prefix24, u32>,
    as_index: HashMap<Asn, u32>,
}

impl Topology {
    /// Generates a topology from the configuration. Deterministic in
    /// `config.seed`.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (e.g. prefix length
    /// range outside `8..=24`, or an empty metro catalogue).
    pub fn generate(config: TopologyConfig) -> Topology {
        assert!(
            (8..=24).contains(&config.prefix_len.0)
                && config.prefix_len.0 <= config.prefix_len.1
                && config.prefix_len.1 <= 24,
            "prefix_len must be within 8..=24 and ordered"
        );
        assert!(config.tier1_count >= 1, "need at least one tier-1");
        assert!(
            config.transits_per_region >= 1,
            "need at least one transit per region"
        );

        let mut rng = DetRng::from_keys(config.seed, &[0x7090_1057]);
        let metros = builtin_metros();
        let mut builder = Builder {
            config: &config,
            metros: &metros,
            rng: &mut rng,
            ases: Vec::new(),
            graph: AsGraph::new(),
            pops_by_as: HashMap::new(),
            next_asn: 100,
        };

        let cloud_asn = builder.build_cloud();
        let tier1s = builder.build_tier1s();
        let transits = builder.build_transits(&tier1s);
        builder.ensure_cloud_egress(cloud_asn, &transits);
        let access = builder.build_access(&transits, &tier1s, cloud_asn);

        let Builder {
            ases,
            graph,
            pops_by_as,
            ..
        } = builder;

        // Cloud edge locations: one per cloud PoP.
        let cloud_locations: Vec<CloudLocation> = pops_by_as[&cloud_asn]
            .iter()
            .enumerate()
            .map(|(i, pop)| {
                let metro = graph.pop(*pop).metro;
                let m = &metros[metro.0 as usize];
                let mut r = DetRng::from_keys(config.seed, &[0xC10D, i as u64]);
                CloudLocation {
                    id: CloudLocId(i as u16),
                    name: format!("edge-{}-{}", m.name, i),
                    metro,
                    region: m.region,
                    base_cloud_ms: r.range_f64(2.0, 5.0),
                }
            })
            .collect();
        let loc_pop: Vec<PopId> = pops_by_as[&cloud_asn].clone();

        // Announce prefixes for every access ISP.
        let mut prefixes = Vec::new();
        let mut clients = Vec::new();
        let mut alloc = PrefixAllocator::new();
        for a in &access {
            let mut r = DetRng::from_keys(config.seed, &[0x9F1C, a.asn.0 as u64]);
            let n = r.range_u64(
                config.prefixes_per_access.0 as u64,
                config.prefixes_per_access.1 as u64,
            ) as usize;
            for _ in 0..n {
                let len = r.range_u64(config.prefix_len.0 as u64, config.prefix_len.1 as u64) as u8;
                let prefix = alloc.alloc(len);
                let metro = *r.pick(&a.metros);
                prefixes.push(AnnouncedPrefix {
                    prefix,
                    origin: a.asn,
                    metro,
                    mobile: a.mobile,
                });
            }
        }

        // Route computation: per (location, origin PoP).
        let mut paths = PathTable::new();
        let mut bgp = BgpTable::new();
        let mut route_cache: HashMap<(CloudLocId, PopId), RouteIdx> = HashMap::new();
        let as_index: HashMap<Asn, u32> = ases
            .iter()
            .enumerate()
            .map(|(i, a)| (a.asn, i as u32))
            .collect();

        for p in &prefixes {
            // The origin AS PoP at the prefix's home metro.
            let origin_pop = graph
                .pops_of(p.origin)
                .find(|pop| pop.metro == p.metro)
                .expect("origin AS must have a PoP at the prefix's home metro")
                .id;
            for (loc_i, src) in loc_pop.iter().enumerate() {
                let loc = CloudLocId(loc_i as u16);
                let idx =
                    *route_cache.entry((loc, origin_pop)).or_insert_with(|| {
                        let pop_paths =
                            graph.diverse_paths(*src, origin_pop, config.route_alternates);
                        if pop_paths.is_empty() {
                            let dump = |pop: PopId| -> String {
                                graph
                                    .neighbors(pop)
                                    .map(|(n, ms, k)| {
                                        let np = graph.pop(n);
                                        format!(
                                            "{}@{}({:?},{:.1}ms,t={})",
                                            np.asn, np.metro, k, ms, np.transit_ok
                                        )
                                    })
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            };
                            panic!(
                            "no route from {loc} to {} — generator must keep the graph connected
src {} nbrs: [{}]
dst {} nbrs: [{}]",
                            p.origin, src, dump(*src), origin_pop, dump(origin_pop)
                        );
                        }
                        let options: Vec<RouteOption> = pop_paths
                            .iter()
                            .map(|pp| build_route_option(pp, &graph, &ases, &as_index, &mut paths))
                            .collect();
                        bgp.push_routes(RouteOptions {
                            loc,
                            origin: p.origin,
                            options,
                        })
                    });
                bgp.bind_prefix(loc, p.prefix, idx);
            }
        }

        // Client /24s: fan each prefix out, assign populations and
        // anycast locations.
        let mut p24_index = HashMap::new();
        for (pi, p) in prefixes.iter().enumerate() {
            let region = metros[p.metro.0 as usize].region;
            // Rank locations by primary-route latency for this origin.
            let mut latencies: Vec<(CloudLocId, f64)> = cloud_locations
                .iter()
                .map(|cl| {
                    let ro = bgp.lookup(cl.id, p.prefix).expect("bound above");
                    (cl.id, ro.options[0].total_oneway_ms)
                })
                .collect();
            latencies.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let primary_loc = latencies[0].0;
            let second = latencies.get(1).map(|x| x.0);

            for p24 in p.prefix.iter_24s() {
                let mut r = DetRng::from_keys(config.seed, &[0xB10C, p24.block() as u64]);
                // Heavy-tailed population: median ~40 active clients.
                let population = r.lognormal(40f64.ln(), 1.1).clamp(2.0, 8000.0) as u32;
                let enterprise = !p.mobile && r.chance(0.25);
                let secondary_loc = match second {
                    Some(s) if r.chance(config.secondary_loc_prob) => Some(s),
                    _ => None,
                };
                let idx = clients.len() as u32;
                p24_index.insert(p24, idx);
                clients.push(ClientBlock {
                    p24,
                    prefix_idx: pi as u32,
                    origin: p.origin,
                    metro: p.metro,
                    region,
                    mobile: p.mobile,
                    population,
                    enterprise,
                    primary_loc,
                    secondary_loc,
                });
            }
        }

        Topology {
            config,
            metros,
            ases,
            graph,
            cloud_asn,
            cloud_locations,
            paths,
            bgp,
            prefixes,
            clients,
            p24_index,
            as_index,
        }
    }

    /// Generates with the default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Topology {
        Topology::generate(TopologyConfig {
            seed,
            ..TopologyConfig::default()
        })
    }

    /// Looks up AS metadata.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.as_index.get(&asn).map(|i| &self.ases[*i as usize])
    }

    /// Looks up a client block by its /24.
    pub fn client(&self, p24: Prefix24) -> Option<&ClientBlock> {
        self.p24_index.get(&p24).map(|i| &self.clients[*i as usize])
    }

    /// The announced prefix covering a client block.
    pub fn announced_prefix(&self, c: &ClientBlock) -> &AnnouncedPrefix {
        &self.prefixes[c.prefix_idx as usize]
    }

    /// A cloud location by id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn cloud_location(&self, id: CloudLocId) -> &CloudLocation {
        &self.cloud_locations[id.0 as usize]
    }

    /// A metro by id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn metro(&self, id: MetroId) -> &Metro {
        &self.metros[id.0 as usize]
    }

    /// Route options for a client block toward a location.
    ///
    /// # Panics
    /// Panics if the pair has no bound route (cannot happen for blocks
    /// and locations from the same topology).
    pub fn routes_for(&self, loc: CloudLocId, c: &ClientBlock) -> &RouteOptions {
        let p = &self.prefixes[c.prefix_idx as usize];
        self.bgp
            .lookup(loc, p.prefix)
            .expect("every (location, prefix) pair is bound at generation")
    }

    /// Cloud locations in a region.
    pub fn locations_in(&self, region: Region) -> impl Iterator<Item = &CloudLocation> {
        self.cloud_locations
            .iter()
            .filter(move |c| c.region == region)
    }

    /// Client blocks whose anycast primary is the given location.
    pub fn clients_of(&self, loc: CloudLocId) -> impl Iterator<Item = &ClientBlock> {
        self.clients.iter().filter(move |c| c.primary_loc == loc)
    }
}

/// Allocates non-overlapping announced prefixes from `1.0.0.0` upward.
struct PrefixAllocator {
    next_block: u32, // next free /24 block number
}

impl PrefixAllocator {
    fn new() -> Self {
        // Start at 1.0.0.0 to avoid 0.0.0.0/8.
        PrefixAllocator {
            next_block: 1 << 16,
        }
    }

    fn alloc(&mut self, len: u8) -> IpPrefix {
        let span = 1u32 << (24 - len); // /24 blocks covered
                                       // Align to span.
        let start = self.next_block.div_ceil(span) * span;
        self.next_block = start + span;
        IpPrefix::new(start << 8, len)
    }
}

/// Converts a PoP path to an AS-level [`RouteOption`], adding each AS's
/// processing latency once (at its last hop) and interning the middle.
fn build_route_option(
    pp: &PopPath,
    graph: &AsGraph,
    ases: &[AsInfo],
    as_index: &HashMap<Asn, u32>,
    paths: &mut PathTable,
) -> RouteOption {
    // Collapse to per-AS last hops, carrying the metro of the last PoP.
    let mut hops: Vec<AsHop> = Vec::new();
    for (i, pop) in pp.pops.iter().enumerate() {
        let p = graph.pop(*pop);
        let cum = pp.cum_ms[i];
        match hops.last_mut() {
            Some(h) if h.asn == p.asn => {
                h.cum_oneway_ms = cum;
                h.metro = p.metro;
            }
            _ => hops.push(AsHop {
                asn: p.asn,
                cum_oneway_ms: cum,
                metro: p.metro,
            }),
        }
    }
    // Add per-AS processing latency cumulatively.
    let mut proc_acc = 0.0;
    for h in hops.iter_mut() {
        let info = &ases[as_index[&h.asn] as usize];
        proc_acc += info.hop_latency_ms;
        h.cum_oneway_ms += proc_acc;
    }
    let total = hops.last().map_or(0.0, |h| h.cum_oneway_ms);
    let middle: Vec<Asn> = if hops.len() > 2 {
        hops[1..hops.len() - 1].iter().map(|h| h.asn).collect()
    } else {
        Vec::new()
    };
    RouteOption {
        path_id: paths.intern(middle),
        as_hops: hops,
        total_oneway_ms: total,
    }
}

/// Internal per-access description used during generation.
struct AccessAs {
    asn: Asn,
    metros: Vec<MetroId>,
    mobile: bool,
}

struct Builder<'a> {
    config: &'a TopologyConfig,
    metros: &'a [Metro],
    rng: &'a mut DetRng,
    ases: Vec<AsInfo>,
    graph: AsGraph,
    pops_by_as: HashMap<Asn, Vec<PopId>>,
    next_asn: u32,
}

impl Builder<'_> {
    fn alloc_asn(&mut self) -> Asn {
        let a = Asn(self.next_asn);
        self.next_asn += 1;
        a
    }

    fn add_as(&mut self, name: String, role: AsRole, hop_ms: f64) -> Asn {
        let asn = self.alloc_asn();
        self.ases.push(AsInfo::new(asn, name, role, hop_ms));
        self.pops_by_as.insert(asn, Vec::new());
        asn
    }

    fn add_pop(&mut self, asn: Asn, metro: MetroId) -> PopId {
        self.add_pop_with(asn, metro, true)
    }

    fn add_pop_with(&mut self, asn: Asn, metro: MetroId, transit_ok: bool) -> PopId {
        let id = self.graph.add_pop_with(asn, metro, transit_ok);
        self.pops_by_as.get_mut(&asn).unwrap().push(id);
        id
    }

    fn geo_ms(&self, a: MetroId, b: MetroId) -> f64 {
        self.metros[a.0 as usize]
            .location
            .fiber_delay_ms(self.metros[b.0 as usize].location)
    }

    /// Links all PoP pairs of one AS with geo-latency backbone links.
    fn mesh_intra(&mut self, asn: Asn) {
        let pops = self.pops_by_as[&asn].clone();
        for i in 0..pops.len() {
            for j in i + 1..pops.len() {
                let (ma, mb) = (self.graph.pop(pops[i]).metro, self.graph.pop(pops[j]).metro);
                let ms = self.geo_ms(ma, mb).max(0.2);
                self.graph.add_link(pops[i], pops[j], ms, LinkKind::IntraAs);
            }
        }
    }

    /// The cloud AS: a PoP in every metro, meshed backbone. Cloud PoPs
    /// are not transit for external routes (traffic egresses at the
    /// serving location), so client paths never show the cloud AS in
    /// their middle segment.
    fn build_cloud(&mut self) -> Asn {
        let asn = self.add_as("cloud".into(), AsRole::Cloud, 0.3);
        for m in self.metros {
            self.add_pop_with(asn, m.id, false);
        }
        self.mesh_intra(asn);
        asn
    }

    /// Tier-1 backbones present in ~60% of metros each.
    fn build_tier1s(&mut self) -> Vec<Asn> {
        let mut out = Vec::new();
        for i in 0..self.config.tier1_count {
            let asn = self.add_as(format!("tier1-{i}"), AsRole::Tier1, 0.5);
            let mut metro_ids: Vec<MetroId> = self.metros.iter().map(|m| m.id).collect();
            self.rng.shuffle(&mut metro_ids);
            let keep = (metro_ids.len() * 3) / 5;
            for m in metro_ids.into_iter().take(keep.max(4)) {
                self.add_pop(asn, m);
            }
            self.mesh_intra(asn);
            out.push(asn);
        }
        // Tier-1 ↔ tier-1 peering at shared metros (probabilistic).
        for i in 0..out.len() {
            for j in i + 1..out.len() {
                self.peer_at_shared_metros(out[i], out[j], 0.5);
            }
        }
        // Cloud ↔ tier-1 everywhere they co-locate.
        let cloud = self.ases[0].asn;
        for t in &out {
            self.peer_at_shared_metros(cloud, *t, 0.9);
        }
        out
    }

    /// Regional transit ASes covering their region's metros.
    fn build_transits(&mut self, tier1s: &[Asn]) -> Vec<Asn> {
        let mut out = Vec::new();
        let cloud = self.ases[0].asn;
        for region in Region::ALL {
            let region_metros: Vec<MetroId> = self
                .metros
                .iter()
                .filter(|m| m.region == region)
                .map(|m| m.id)
                .collect();
            for t in 0..self.config.transits_per_region {
                let asn = self.add_as(
                    format!("transit-{}-{t}", region.label().to_lowercase()),
                    AsRole::Transit,
                    // Less mature regions have slower transit gear.
                    1.0 + 2.0 * (1.0 - region.transit_maturity()),
                );
                for m in &region_metros {
                    self.add_pop(asn, *m);
                }
                self.mesh_intra(asn);
                // Transit ↔ tier-1: richer peering in mature regions.
                let p = 0.4 + 0.5 * region.transit_maturity();
                let mut connected = false;
                for t1 in tier1s {
                    connected |= self.peer_at_shared_metros(asn, *t1, p);
                }
                if !connected {
                    // Force one cross-metro peering so the transit is
                    // never isolated from the backbone.
                    let t1 = tier1s[self.rng.index(tier1s.len())];
                    self.force_peering(asn, t1);
                }
                // Cloud ↔ transit at cloud metros.
                self.peer_at_shared_metros(cloud, asn, 0.5 + 0.3 * region.transit_maturity());
                out.push(asn);
            }
            // Transit ↔ transit within the region.
            let start = out.len() - self.config.transits_per_region;
            for i in start..out.len() {
                for j in i + 1..out.len() {
                    self.peer_at_shared_metros(out[i], out[j], 0.4);
                }
            }
        }
        out
    }

    /// Guarantees every cloud PoP can egress: if the dice left a cloud
    /// metro with no tier-1/transit peering, force one to a transit
    /// with a PoP at that metro.
    fn ensure_cloud_egress(&mut self, cloud: Asn, transits: &[Asn]) {
        let cloud_pops = self.pops_by_as[&cloud].clone();
        for cp in cloud_pops {
            let metro = self.graph.pop(cp).metro;
            let has_middle_peer = {
                // Any peering link from this cloud PoP to a transit-ok PoP?
                let mut found = false;
                for other in self.graph.pops() {
                    if other.metro == metro && other.transit_ok && other.asn != cloud {
                        // Is there already a link? Re-check by probing a
                        // 1-hop shortest path.
                        if let Some(p) = self.graph.shortest_path(cp, other.id) {
                            if p.pops.len() == 2 {
                                found = true;
                                break;
                            }
                        }
                    }
                }
                found
            };
            if !has_middle_peer {
                let local: Vec<Asn> = transits
                    .iter()
                    .copied()
                    .filter(|t| {
                        self.pops_by_as[t]
                            .iter()
                            .any(|p| self.graph.pop(*p).metro == metro)
                    })
                    .collect();
                assert!(!local.is_empty(), "metro without transit coverage");
                let t = local[0];
                let target = *self.pops_by_as[&t]
                    .iter()
                    .find(|p| self.graph.pop(**p).metro == metro)
                    .unwrap();
                let ms = self.rng.range_f64(0.3, 1.5);
                self.graph.add_link(cp, target, ms, LinkKind::Peering);
            }
        }
    }

    /// Access ISPs: broadband and mobile, per metro.
    fn build_access(&mut self, transits: &[Asn], tier1s: &[Asn], cloud: Asn) -> Vec<AccessAs> {
        let mut out = Vec::new();
        let metro_ids: Vec<MetroId> = self.metros.iter().map(|m| m.id).collect();
        for m in &metro_ids {
            let region = self.metros[m.0 as usize].region;
            let n_bb = self.config.broadband_per_metro;
            let n_mb = self.config.mobile_per_metro;
            for k in 0..n_bb + n_mb {
                let mobile = k >= n_bb;
                let kind = if mobile { "mobile" } else { "isp" };
                let name = format!("{kind}-{}-{k}", self.metros[m.0 as usize].name);
                let role = if mobile {
                    AsRole::AccessMobile
                } else {
                    AsRole::AccessBroadband
                };
                let asn = self.add_as(name, role, if mobile { 2.5 } else { 1.5 });
                let access_transit = false;
                let _ = access_transit;
                let mut my_metros = vec![*m];
                // Some broadband ISPs span a second metro in-region.
                if !mobile && self.rng.chance(0.3) {
                    let others: Vec<MetroId> = metro_ids
                        .iter()
                        .copied()
                        .filter(|x| *x != *m && self.metros[x.0 as usize].region == region)
                        .collect();
                    if !others.is_empty() {
                        my_metros.push(*self.rng.pick(&others));
                    }
                }
                for mm in &my_metros {
                    // Access ISPs never transit other networks' traffic.
                    self.add_pop_with(asn, *mm, false);
                }
                if my_metros.len() > 1 {
                    self.mesh_intra(asn);
                }
                // Upstreams: 1–2 transits with PoPs at the home metro.
                let local_transits: Vec<Asn> = transits
                    .iter()
                    .copied()
                    .filter(|t| {
                        self.pops_by_as[t]
                            .iter()
                            .any(|p| my_metros.contains(&self.graph.pop(*p).metro))
                    })
                    .collect();
                assert!(
                    !local_transits.is_empty(),
                    "every metro must have transit coverage"
                );
                // Multi-homing: most access ISPs take 2 transit
                // upstreams, many take 3 — this spreads a location's
                // clients across transits so a single transit fault
                // does not blanket the location (which would read as a
                // cloud fault to hierarchical elimination).
                let mut n_up = 1;
                if self.rng.chance(0.75) {
                    n_up += 1;
                }
                if self.rng.chance(0.35) {
                    n_up += 1;
                }
                let n_up = n_up.min(local_transits.len());
                let mut ups = local_transits.clone();
                self.rng.shuffle(&mut ups);
                for up in ups.into_iter().take(n_up) {
                    self.peer_at_shared_metros_forced(asn, up);
                }
                // Occasionally multi-home to a tier-1 directly.
                if self.rng.chance(0.25) {
                    let present: Vec<Asn> = tier1s
                        .iter()
                        .copied()
                        .filter(|t| {
                            self.pops_by_as[t]
                                .iter()
                                .any(|p| my_metros.contains(&self.graph.pop(*p).metro))
                        })
                        .collect();
                    if !present.is_empty() {
                        let t1 = *self.rng.pick(&present);
                        self.peer_at_shared_metros_forced(asn, t1);
                    }
                }
                // Direct cloud peering (gives empty middle paths).
                if self.rng.chance(self.config.direct_peering_prob) {
                    self.peer_at_shared_metros_forced(asn, cloud);
                }
                out.push(AccessAs {
                    asn,
                    metros: my_metros,
                    mobile,
                });
            }
        }
        out
    }

    /// Peers two ASes at each metro where both have PoPs, independently
    /// with probability `p`. Returns true if at least one link was made.
    fn peer_at_shared_metros(&mut self, a: Asn, b: Asn, p: f64) -> bool {
        let mut made = false;
        let pa = self.pops_by_as[&a].clone();
        let pb = self.pops_by_as[&b].clone();
        for x in &pa {
            for y in &pb {
                if self.graph.pop(*x).metro == self.graph.pop(*y).metro && self.rng.chance(p) {
                    let ms = self.rng.range_f64(0.3, 1.5);
                    self.graph.add_link(*x, *y, ms, LinkKind::Peering);
                    made = true;
                }
            }
        }
        made
    }

    /// Like [`Self::peer_at_shared_metros`] but guarantees at least one
    /// link (picking the first shared metro if the dice made none).
    fn peer_at_shared_metros_forced(&mut self, a: Asn, b: Asn) {
        if self.peer_at_shared_metros(a, b, 0.8) {
            return;
        }
        let pa = self.pops_by_as[&a].clone();
        let pb = self.pops_by_as[&b].clone();
        for x in &pa {
            for y in &pb {
                if self.graph.pop(*x).metro == self.graph.pop(*y).metro {
                    let ms = self.rng.range_f64(0.3, 1.5);
                    self.graph.add_link(*x, *y, ms, LinkKind::Peering);
                    return;
                }
            }
        }
        // No shared metro at all: fall through to a forced remote link.
        self.force_peering(a, b);
    }

    /// Cross-metro peering between the geographically closest PoPs of
    /// two ASes (used to rescue otherwise-isolated transits).
    fn force_peering(&mut self, a: Asn, b: Asn) {
        let pa = self.pops_by_as[&a].clone();
        let pb = self.pops_by_as[&b].clone();
        let mut best: Option<(PopId, PopId, f64)> = None;
        for x in &pa {
            for y in &pb {
                let ms = self.geo_ms(self.graph.pop(*x).metro, self.graph.pop(*y).metro);
                if best.is_none_or(|(_, _, b_ms)| ms < b_ms) {
                    best = Some((*x, *y, ms));
                }
            }
        }
        let (x, y, ms) = best.expect("both ASes must have PoPs");
        self.graph
            .add_link(x, y, ms.max(0.3) + 1.0, LinkKind::Peering);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        Topology::generate(TopologyConfig::tiny(1))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(TopologyConfig::tiny(5));
        let b = Topology::generate(TopologyConfig::tiny(5));
        assert_eq!(a.clients.len(), b.clients.len());
        assert_eq!(a.paths.len(), b.paths.len());
        for (ca, cb) in a.clients.iter().zip(&b.clients) {
            assert_eq!(ca.p24, cb.p24);
            assert_eq!(ca.primary_loc, cb.primary_loc);
            assert_eq!(ca.population, cb.population);
        }
        let c = Topology::generate(TopologyConfig::tiny(6));
        // A different seed shifts at least the populations.
        assert!(
            a.clients
                .iter()
                .zip(&c.clients)
                .any(|(x, y)| x.population != y.population)
                || a.clients.len() != c.clients.len()
        );
    }

    #[test]
    fn every_client_has_routes_from_every_location() {
        let t = tiny();
        assert!(!t.clients.is_empty());
        for c in &t.clients {
            for loc in &t.cloud_locations {
                let ro = t.routes_for(loc.id, c);
                assert!(!ro.options.is_empty());
                let primary = &ro.options[0];
                assert!(primary.total_oneway_ms > 0.0);
                // First hop is the cloud AS, last is the client AS.
                assert_eq!(primary.as_hops.first().unwrap().asn, t.cloud_asn);
                assert_eq!(primary.as_hops.last().unwrap().asn, c.origin);
            }
        }
    }

    #[test]
    fn cumulative_latencies_monotone() {
        let t = tiny();
        for c in t.clients.iter().take(50) {
            let ro = t.routes_for(c.primary_loc, c);
            for opt in &ro.options {
                let mut prev = -1.0;
                for h in &opt.as_hops {
                    assert!(
                        h.cum_oneway_ms > prev,
                        "non-monotone hops: {:?}",
                        opt.as_hops
                    );
                    prev = h.cum_oneway_ms;
                }
                assert!((opt.total_oneway_ms - prev).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn middle_path_excludes_cloud_and_client() {
        let t = tiny();
        for c in t.clients.iter().take(100) {
            let ro = t.routes_for(c.primary_loc, c);
            for opt in &ro.options {
                let middle = &t.paths.get(opt.path_id).middle;
                assert!(!middle.contains(&t.cloud_asn));
                assert!(!middle.contains(&c.origin));
                for asn in middle {
                    let role = t.as_info(*asn).unwrap().role;
                    assert!(role.is_middle(), "{asn} in middle has role {role}");
                }
            }
        }
    }

    #[test]
    fn primary_is_nearest_location() {
        let t = tiny();
        for c in t.clients.iter().take(50) {
            let primary_ms = t.routes_for(c.primary_loc, c).options[0].total_oneway_ms;
            for loc in &t.cloud_locations {
                let ms = t.routes_for(loc.id, c).options[0].total_oneway_ms;
                assert!(
                    primary_ms <= ms + 1e-9,
                    "{}: primary {} at {primary_ms}ms but {} at {ms}ms",
                    c.p24,
                    c.primary_loc,
                    loc.id
                );
            }
        }
    }

    #[test]
    fn announced_prefixes_do_not_overlap() {
        let t = tiny();
        for (i, a) in t.prefixes.iter().enumerate() {
            for b in t.prefixes.iter().skip(i + 1) {
                assert!(
                    !a.prefix.covers(b.prefix) && !b.prefix.covers(a.prefix),
                    "{} overlaps {}",
                    a.prefix,
                    b.prefix
                );
            }
        }
    }

    #[test]
    fn client_index_consistent() {
        let t = tiny();
        for c in &t.clients {
            let found = t.client(c.p24).unwrap();
            assert_eq!(found.p24, c.p24);
            let ap = t.announced_prefix(c);
            assert!(ap.prefix.covers_24(c.p24));
            assert_eq!(ap.origin, c.origin);
        }
        assert!(t.client(Prefix24::from_block(0)).is_none());
    }

    #[test]
    fn mobile_flags_follow_origin_role() {
        let t = tiny();
        for c in &t.clients {
            let role = t.as_info(c.origin).unwrap().role;
            assert_eq!(c.mobile, role == AsRole::AccessMobile);
            assert!(role.is_access());
        }
        assert!(t.clients.iter().any(|c| c.mobile));
        assert!(t.clients.iter().any(|c| !c.mobile));
    }

    #[test]
    fn secondary_location_differs_from_primary() {
        let t = Topology::with_seed(3);
        let with_secondary = t
            .clients
            .iter()
            .filter(|c| c.secondary_loc.is_some())
            .count();
        assert!(with_secondary > 0, "some clients must be dual-homed");
        for c in &t.clients {
            if let Some(s) = c.secondary_loc {
                assert_ne!(s, c.primary_loc);
            }
        }
    }

    #[test]
    fn default_scale_is_substantial() {
        let t = Topology::with_seed(1);
        assert!(t.cloud_locations.len() >= 20, "{}", t.cloud_locations.len());
        assert!(t.clients.len() >= 2000, "{}", t.clients.len());
        assert!(t.paths.len() >= 100, "{}", t.paths.len());
        assert!(t.ases.len() >= 80, "{}", t.ases.len());
        // Every region must have clients.
        for r in Region::ALL {
            assert!(t.clients.iter().any(|c| c.region == r), "no clients in {r}");
        }
    }

    #[test]
    fn some_paths_have_multiple_middle_ases_and_some_are_direct() {
        let t = Topology::with_seed(2);
        let mut multi = 0;
        let mut direct = 0;
        for (_, p) in t.paths.iter() {
            if p.middle.len() >= 2 {
                multi += 1;
            }
            if p.middle.is_empty() {
                direct += 1;
            }
        }
        assert!(multi > 0, "expected multi-AS middle paths");
        assert!(direct > 0, "expected direct cloud-client peerings");
    }

    #[test]
    fn route_alternates_present() {
        let t = Topology::with_seed(4);
        let mut with_alt = 0usize;
        let mut total = 0usize;
        for c in &t.clients {
            let ro = t.routes_for(c.primary_loc, c);
            total += 1;
            if ro.options.len() >= 2 {
                with_alt += 1;
            }
        }
        assert!(
            with_alt * 2 > total,
            "most routes should have alternates: {with_alt}/{total}"
        );
    }
}
