//! Property-based tests for the topology substrate, driven by the
//! in-repo seeded harness in [`blameit_topology::testkit`].

use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::{AsGraph, Asn, IpPrefix, LinkKind, MetroId, Prefix24};

/// Prefix24 ↔ block number ↔ address round-trips.
#[test]
fn prefix24_roundtrips() {
    check("prefix24_roundtrips", 256, |rng| {
        let block = rng.below(1 << 24) as u32;
        let p = Prefix24::from_block(block);
        assert_eq!(p.block(), block);
        assert_eq!(Prefix24::containing(p.base_addr()), p);
        assert_eq!(Prefix24::containing(p.addr(255)), p);
        let parsed: Prefix24 = p.to_string().parse().unwrap();
        assert_eq!(parsed, p);
    });
}

/// IpPrefix display/parse round-trips and masking is idempotent.
#[test]
fn ipprefix_roundtrips() {
    check("ipprefix_roundtrips", 256, |rng| {
        let base = rng.next_u64() as u32;
        let len = rng.below(33) as u8;
        let p = IpPrefix::new(base, len);
        assert_eq!(IpPrefix::new(p.base(), p.len()), p);
        let parsed: IpPrefix = p.to_string().parse().unwrap();
        assert_eq!(parsed, p);
        assert!(p.contains(p.base()));
        assert!(p.covers(p));
    });
}

/// Splitting a prefix yields disjoint children that exactly tile it.
#[test]
fn split_tiles_parent() {
    check("split_tiles_parent", 128, |rng| {
        let base = rng.next_u64() as u32;
        let len = rng.range_u64(4, 20) as u8;
        let bits = rng.range_u64(1, 3) as u8;
        let p = IpPrefix::new(base, len);
        let children: Vec<IpPrefix> = p.split(bits).collect();
        assert_eq!(children.len(), 1usize << bits);
        for (i, c) in children.iter().enumerate() {
            assert!(p.covers(*c));
            assert_eq!(c.len(), len + bits);
            for other in &children[i + 1..] {
                assert!(!c.covers(*other) && !other.covers(*c));
            }
        }
        if len + bits <= 24 {
            let child_24s: u32 = children.iter().map(|c| c.num_24s()).sum();
            assert_eq!(child_24s, p.num_24s());
        }
    });
}

/// The deterministic RNG's streams are reproducible and its uniform
/// draws respect their bounds.
#[test]
fn detrng_reproducible_and_bounded() {
    check("detrng_reproducible_and_bounded", 64, |rng| {
        let seed = rng.next_u64();
        let nkeys = rng.below(4) as usize;
        let keys: Vec<u64> = (0..nkeys).map(|_| rng.next_u64()).collect();
        let mut a = DetRng::from_keys(seed, &keys);
        let mut b = DetRng::from_keys(seed, &keys);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = DetRng::from_keys(seed, &keys);
        for _ in 0..64 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let n = r.below(17);
            assert!(n < 17);
            let e = r.exponential(3.0);
            assert!(e >= 0.0);
        }
    });
}

/// Valley-free shortest paths never traverse a non-transit PoP of a
/// third AS, and cumulative latencies are strictly increasing.
#[test]
fn random_graph_paths_are_valley_free() {
    check("random_graph_paths_are_valley_free", 64, |rng| {
        let mut g = AsGraph::new();
        // Random 3-tier graph: 1 source AS, 4 transit ASes over 3
        // metros, 6 leaf ASes.
        let src_pop = g.add_pop_with(Asn(1), MetroId(0), false);
        let mut transit_pops = Vec::new();
        for t in 0..4u32 {
            for m in 0..3u16 {
                if rng.chance(0.7) {
                    transit_pops.push(g.add_pop(Asn(10 + t), MetroId(m)));
                }
            }
        }
        let mut leaf_pops = Vec::new();
        for l in 0..6u32 {
            leaf_pops.push(g.add_pop_with(Asn(100 + l), MetroId(rng.below(3) as u16), false));
        }
        // Random links.
        for &t in &transit_pops {
            if rng.chance(0.8) {
                g.add_link(src_pop, t, rng.range_f64(0.5, 5.0), LinkKind::Peering);
            }
            for &u in &transit_pops {
                if u > t && rng.chance(0.4) {
                    g.add_link(t, u, rng.range_f64(0.5, 10.0), LinkKind::Peering);
                }
            }
            for &l in &leaf_pops {
                if rng.chance(0.4) {
                    g.add_link(t, l, rng.range_f64(0.5, 5.0), LinkKind::Peering);
                }
            }
        }
        for &dst in &leaf_pops {
            let Some(path) = g.shortest_path(src_pop, dst) else {
                continue;
            };
            // Strictly increasing cumulative latency.
            for w in path.cum_ms.windows(2) {
                assert!(w[1] > w[0]);
            }
            // No third-party non-transit PoP in the interior.
            let src_asn = g.pop(src_pop).asn;
            let dst_asn = g.pop(dst).asn;
            for pop in &path.pops[1..path.pops.len() - 1] {
                let p = g.pop(*pop);
                assert!(
                    p.transit_ok || p.asn == src_asn || p.asn == dst_asn,
                    "valley through {p:?}"
                );
            }
        }
    });
}
