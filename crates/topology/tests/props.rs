//! Property-based tests for the topology substrate.

use blameit_topology::rng::DetRng;
use blameit_topology::{AsGraph, Asn, IpPrefix, LinkKind, MetroId, Prefix24};
use proptest::prelude::*;

proptest! {
    /// Prefix24 ↔ block number ↔ address round-trips.
    #[test]
    fn prefix24_roundtrips(block in 0u32..(1 << 24)) {
        let p = Prefix24::from_block(block);
        prop_assert_eq!(p.block(), block);
        prop_assert_eq!(Prefix24::containing(p.base_addr()), p);
        prop_assert_eq!(Prefix24::containing(p.addr(255)), p);
        let parsed: Prefix24 = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// IpPrefix display/parse round-trips and masking is idempotent.
    #[test]
    fn ipprefix_roundtrips(base in any::<u32>(), len in 0u8..=32) {
        let p = IpPrefix::new(base, len);
        prop_assert_eq!(IpPrefix::new(p.base(), p.len()), p);
        let parsed: IpPrefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
        prop_assert!(p.contains(p.base()));
        prop_assert!(p.covers(p));
    }

    /// Splitting a prefix yields disjoint children that exactly tile it.
    #[test]
    fn split_tiles_parent(base in any::<u32>(), len in 4u8..=20, bits in 1u8..=3) {
        let p = IpPrefix::new(base, len);
        let children: Vec<IpPrefix> = p.split(bits).collect();
        prop_assert_eq!(children.len(), 1usize << bits);
        for (i, c) in children.iter().enumerate() {
            prop_assert!(p.covers(*c));
            prop_assert_eq!(c.len(), len + bits);
            for other in &children[i + 1..] {
                prop_assert!(!c.covers(*other) && !other.covers(*c));
            }
        }
        if len + bits <= 24 {
            let child_24s: u32 = children.iter().map(|c| c.num_24s()).sum();
            prop_assert_eq!(child_24s, p.num_24s());
        }
    }

    /// The deterministic RNG's streams are reproducible and its uniform
    /// draws respect their bounds.
    #[test]
    fn detrng_reproducible_and_bounded(seed in any::<u64>(), keys in proptest::collection::vec(any::<u64>(), 0..4)) {
        let mut a = DetRng::from_keys(seed, &keys);
        let mut b = DetRng::from_keys(seed, &keys);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = DetRng::from_keys(seed, &keys);
        for _ in 0..64 {
            let x = r.f64();
            prop_assert!((0.0..1.0).contains(&x));
            let n = r.below(17);
            prop_assert!(n < 17);
            let e = r.exponential(3.0);
            prop_assert!(e >= 0.0);
        }
    }

    /// Valley-free shortest paths never traverse a non-transit PoP of a
    /// third AS, and cumulative latencies are strictly increasing.
    #[test]
    fn random_graph_paths_are_valley_free(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let mut g = AsGraph::new();
        // Random 3-tier graph: 1 source AS, 4 transit ASes over 3
        // metros, 6 leaf ASes.
        let src_pop = g.add_pop_with(Asn(1), MetroId(0), false);
        let mut transit_pops = Vec::new();
        for t in 0..4u32 {
            for m in 0..3u16 {
                if rng.chance(0.7) {
                    transit_pops.push(g.add_pop(Asn(10 + t), MetroId(m)));
                }
            }
        }
        let mut leaf_pops = Vec::new();
        for l in 0..6u32 {
            leaf_pops.push(g.add_pop_with(Asn(100 + l), MetroId(rng.below(3) as u16), false));
        }
        // Random links.
        for &t in &transit_pops {
            if rng.chance(0.8) {
                g.add_link(src_pop, t, rng.range_f64(0.5, 5.0), LinkKind::Peering);
            }
            for &u in &transit_pops {
                if u > t && rng.chance(0.4) {
                    g.add_link(t, u, rng.range_f64(0.5, 10.0), LinkKind::Peering);
                }
            }
            for &l in &leaf_pops {
                if rng.chance(0.4) {
                    g.add_link(t, l, rng.range_f64(0.5, 5.0), LinkKind::Peering);
                }
            }
        }
        for &dst in &leaf_pops {
            let Some(path) = g.shortest_path(src_pop, dst) else { continue };
            // Strictly increasing cumulative latency.
            for w in path.cum_ms.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            // No third-party non-transit PoP in the interior.
            let src_asn = g.pop(src_pop).asn;
            let dst_asn = g.pop(dst).asn;
            for pop in &path.pops[1..path.pops.len() - 1] {
                let p = g.pop(*pop);
                prop_assert!(
                    p.transit_ok || p.asn == src_asn || p.asn == dst_asn,
                    "valley through {:?}",
                    p
                );
            }
        }
    }
}
