//! Whole-topology invariants, checked across several generation seeds.

use blameit_topology::{AsRole, Topology, TopologyConfig};

fn seeds() -> impl Iterator<Item = Topology> {
    [101u64, 202, 303]
        .into_iter()
        .map(|s| Topology::generate(TopologyConfig::tiny(s)))
}

#[test]
fn every_topology_is_fully_routable() {
    for t in seeds() {
        for c in &t.clients {
            for loc in &t.cloud_locations {
                let ro = t.routes_for(loc.id, c);
                assert!(!ro.options.is_empty());
                for opt in &ro.options {
                    assert_eq!(opt.as_hops.first().unwrap().asn, t.cloud_asn);
                    assert_eq!(opt.as_hops.last().unwrap().asn, c.origin);
                    assert!(opt.total_oneway_ms.is_finite() && opt.total_oneway_ms > 0.0);
                }
            }
        }
    }
}

#[test]
fn middle_paths_contain_only_middle_roles() {
    for t in seeds() {
        for (_, path) in t.paths.iter() {
            for asn in &path.middle {
                let role = t.as_info(*asn).expect("known AS").role;
                assert!(
                    role.is_middle(),
                    "middle path contains {asn} with role {role}"
                );
            }
        }
    }
}

#[test]
fn interned_paths_match_route_hops() {
    for t in seeds() {
        for c in t.clients.iter().take(60) {
            for loc in t.cloud_locations.iter().take(5) {
                let ro = t.routes_for(loc.id, c);
                for opt in &ro.options {
                    let middle: Vec<_> = opt
                        .as_hops
                        .iter()
                        .skip(1)
                        .take(opt.as_hops.len().saturating_sub(2))
                        .map(|h| h.asn)
                        .collect();
                    assert_eq!(t.paths.get(opt.path_id).middle, middle);
                }
            }
        }
    }
}

#[test]
fn anycast_assignment_is_nearest() {
    for t in seeds() {
        for c in t.clients.iter().take(80) {
            let primary_ms = t.routes_for(c.primary_loc, c).options[0].total_oneway_ms;
            for loc in &t.cloud_locations {
                assert!(primary_ms <= t.routes_for(loc.id, c).options[0].total_oneway_ms + 1e-9);
            }
            if let Some(sec) = c.secondary_loc {
                assert_ne!(sec, c.primary_loc);
            }
        }
    }
}

#[test]
fn as_inventory_is_consistent() {
    for t in seeds() {
        // Exactly one cloud AS.
        assert_eq!(t.ases.iter().filter(|a| a.role == AsRole::Cloud).count(), 1);
        assert_eq!(
            t.ases.iter().find(|a| a.role == AsRole::Cloud).unwrap().asn,
            t.cloud_asn
        );
        // Every AS with clients is access.
        for c in &t.clients {
            assert!(t.as_info(c.origin).unwrap().role.is_access());
        }
        // Every announced prefix belongs to an access AS and covers its
        // clients.
        for p in &t.prefixes {
            assert!(t.as_info(p.origin).unwrap().role.is_access());
        }
        // AS numbers are unique.
        let mut asns: Vec<_> = t.ases.iter().map(|a| a.asn).collect();
        asns.sort();
        asns.dedup();
        assert_eq!(asns.len(), t.ases.len());
    }
}

#[test]
fn every_metro_served_and_every_location_serves() {
    for t in seeds() {
        for m in &t.metros {
            assert!(
                t.clients.iter().any(|c| c.metro == m.id),
                "metro {} has no clients",
                m.name
            );
        }
        // Cloud locations sit at distinct metros.
        let mut metros: Vec<_> = t.cloud_locations.iter().map(|l| l.metro).collect();
        metros.sort();
        metros.dedup();
        assert_eq!(metros.len(), t.cloud_locations.len());
    }
}
