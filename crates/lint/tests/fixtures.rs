//! Fixture contract tests: every rule must trip on its `bad.rs`, stay
//! quiet on its `good.rs`, and suppress-with-reason on its `allow.rs`.
//! This is the same check `blameit-lint --self-check` runs in CI, so a
//! rule regression fails both the test suite and the lint job.

use blameit_lint::diag::Report;
use blameit_lint::{fixture_virtual_path, lint_source, run_workspace, self_check};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_fixture_expectation_holds() {
    let results = self_check(&repo_root()).expect("fixtures readable");
    // 11 lexical rules plus 2 workspace passes, × {bad, good, allow}.
    assert_eq!(results.len(), 39, "one fixture triple per rule and pass");
    let failures: Vec<String> = results
        .iter()
        .filter(|r| !r.pass)
        .map(|r| format!("{}: {}", r.file, r.detail))
        .collect();
    assert!(
        failures.is_empty(),
        "fixture contract broken:\n{}",
        failures.join("\n")
    );
}

#[test]
fn allow_fixture_reasons_reach_json() {
    // The `--json` report must carry each annotation's reason, so a
    // reviewer (or a dashboard) can audit every suppression without
    // opening the source.
    for rule in blameit_lint::rules::all_rules() {
        let id = rule.id();
        let path = repo_root()
            .join("crates/lint/tests/fixtures")
            .join(id)
            .join("allow.rs");
        let src = std::fs::read_to_string(&path).expect("allow fixture readable");
        let mut report = Report::default();
        lint_source(
            &fixture_virtual_path(id),
            &src,
            &Default::default(),
            &mut report,
        );
        let json = report.render_json();
        let suppressed: Vec<_> = report.suppressed.iter().filter(|s| s.rule == id).collect();
        assert!(
            !suppressed.is_empty(),
            "{id}/allow.rs produced no suppression"
        );
        for s in suppressed {
            assert_eq!(s.how, "annotation");
            assert!(!s.reason.is_empty(), "{id}/allow.rs reason missing");
            assert!(
                json.contains(&s.reason),
                "{id}/allow.rs reason not in --json output"
            );
        }
    }
}

#[test]
fn transitive_witness_renders_in_text_and_json() {
    // The 3-hop fixture chain (core/lib.rs → core/sched.rs →
    // probe/lib.rs) must surface as a transitive-effect finding whose
    // witness spells out every hop in both report formats.
    let tree = repo_root().join("crates/lint/tests/fixtures/transitive-effect/bad");
    let report = run_workspace(&tree).expect("fixture tree lints");
    let finding = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "transitive-effect" && d.path == "crates/core/src/lib.rs")
        .expect("tick_all must be flagged");
    assert_eq!(
        finding.witness,
        vec![
            "tick_all calls scheduler_advance at crates/core/src/lib.rs:8",
            "scheduler_advance calls probe_stamp at crates/core/src/sched.rs:2",
            "probe_stamp uses `Instant::now` at crates/probe/src/lib.rs:4",
        ],
    );
    assert!(finding
        .message
        .contains("tick_all → scheduler_advance → probe_stamp"));

    let text = report.render_text();
    for hop in &finding.witness {
        assert!(
            text.contains(&format!("      {hop}\n")),
            "text missing hop {hop}"
        );
    }
    let json = report.render_json();
    assert!(
        json.contains("\"scheduler_advance calls probe_stamp at crates/core/src/sched.rs:2\""),
        "witness hop missing from --json output"
    );
}

#[test]
fn effect_map_lists_direct_and_transitive_effects() {
    let tree = repo_root().join("crates/lint/tests/fixtures/transitive-effect/bad");
    let ws =
        blameit_lint::analyze_workspace(&tree, &Default::default()).expect("fixture tree analyzes");
    let map = ws.effect_map_json();
    assert!(map.contains("\"blameit-lint/effect-map/v1\""));
    assert!(map.contains("\"fn\": \"probe_stamp\""));
    assert!(map.contains("\"direct\": [\"wall-clock\"]"));
    // tick_all has no direct effects but inherits wall-clock.
    assert!(map.contains("\"transitive\": [\"wall-clock\"]"));
    assert!(map.contains("\"to\": \"scheduler_advance\""));
}

#[test]
fn workspace_is_clean() {
    // The tree must lint clean with the checked-in lint.toml — the
    // same gate scripts/verify.sh and the CI lint job enforce.
    let report = run_workspace(&repo_root()).expect("workspace lint runs");
    assert!(
        report.ok(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "walker found too few files");
}
