//! Fixture contract tests: every rule must trip on its `bad.rs`, stay
//! quiet on its `good.rs`, and suppress-with-reason on its `allow.rs`.
//! This is the same check `blameit-lint --self-check` runs in CI, so a
//! rule regression fails both the test suite and the lint job.

use blameit_lint::diag::Report;
use blameit_lint::{fixture_virtual_path, lint_source, run_workspace, self_check};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_fixture_expectation_holds() {
    let results = self_check(&repo_root()).expect("fixtures readable");
    // 8 rules × {bad, good, allow}.
    assert_eq!(results.len(), 24, "one fixture triple per rule");
    let failures: Vec<String> = results
        .iter()
        .filter(|r| !r.pass)
        .map(|r| format!("{}: {}", r.file, r.detail))
        .collect();
    assert!(
        failures.is_empty(),
        "fixture contract broken:\n{}",
        failures.join("\n")
    );
}

#[test]
fn allow_fixture_reasons_reach_json() {
    // The `--json` report must carry each annotation's reason, so a
    // reviewer (or a dashboard) can audit every suppression without
    // opening the source.
    for rule in blameit_lint::rules::all_rules() {
        let id = rule.id();
        let path = repo_root()
            .join("crates/lint/tests/fixtures")
            .join(id)
            .join("allow.rs");
        let src = std::fs::read_to_string(&path).expect("allow fixture readable");
        let mut report = Report::default();
        lint_source(
            &fixture_virtual_path(id),
            &src,
            &Default::default(),
            &mut report,
        );
        let json = report.render_json();
        let suppressed: Vec<_> = report.suppressed.iter().filter(|s| s.rule == id).collect();
        assert!(
            !suppressed.is_empty(),
            "{id}/allow.rs produced no suppression"
        );
        for s in suppressed {
            assert_eq!(s.how, "annotation");
            assert!(!s.reason.is_empty(), "{id}/allow.rs reason missing");
            assert!(
                json.contains(&s.reason),
                "{id}/allow.rs reason not in --json output"
            );
        }
    }
}

#[test]
fn workspace_is_clean() {
    // The tree must lint clean with the checked-in lint.toml — the
    // same gate scripts/verify.sh and the CI lint job enforce.
    let report = run_workspace(&repo_root()).expect("workspace lint runs");
    assert!(
        report.ok(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "walker found too few files");
}
