// Fixture: float keys in sort/min/max rank with a non-total order and
// break ties differently across runs — both shapes must fire.

pub struct Probe {
    pub rtt_us: u64,
}

pub fn worst_first(probes: &mut Vec<Probe>) {
    probes.sort_by_key(|p| p.rtt_us as f64 * 1.5);
}

pub fn pick_median_weight(weights: &[(u32, f64)]) -> Option<u32> {
    weights
        .iter()
        .max_by(|a, b| (a.1 * 2.0).partial_cmp(&(b.1 * 2.0)).unwrap())
        .map(|w| w.0)
}
