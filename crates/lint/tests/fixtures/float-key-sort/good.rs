// Fixture: total_cmp / to_bits keys give a total order; integer keys
// never had the problem. All of these stay quiet.

pub struct Probe {
    pub rtt_us: u64,
    pub score: f64,
}

pub fn worst_first(probes: &mut Vec<Probe>) {
    probes.sort_by(|a, b| a.score.total_cmp(&b.score));
}

pub fn by_bits(probes: &mut Vec<Probe>) {
    probes.sort_by_key(|p| p.score.to_bits());
}

pub fn by_integer(probes: &mut Vec<Probe>) {
    probes.sort_by_key(|p| p.rtt_us);
}
