// Fixture: a float key may be annotated when ties are provably absent.

pub fn rank(weights: &mut Vec<(u32, f64)>) {
    // lint:allow(float-key-sort): weights are distinct powers of two by construction; no ties to break
    weights.sort_by_key(|w| (w.1 * 4.0) as u64);
}
