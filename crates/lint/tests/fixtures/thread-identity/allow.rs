// Fixture: a debug-only label may read thread identity if annotated.
pub fn debug_worker_label() -> String {
    // lint:allow(thread-identity): debug log label only; never keys RNG draws or emission order
    format!("{:?}", std::thread::current().id())
}
