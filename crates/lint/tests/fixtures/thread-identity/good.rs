// Fixture: identity derived from (seed, shard) is stable at any
// thread count.
pub fn shard_tag(seed: u64, shard: usize) -> String {
    format!("shard-{seed:x}-{shard}")
}
