// Fixture: thread identity leaking into output labels.
pub fn shard_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
