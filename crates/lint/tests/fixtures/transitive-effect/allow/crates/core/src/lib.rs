// Fixture tree: the wall-clock site itself is unsanctioned, but the
// wrapper fn absorbs the taint with one justified annotation — its
// callers (this fn) stay clean without annotating every call site.

pub fn tick_all(shards: usize) -> u64 {
    let mut acc = 0;
    for _ in 0..shards {
        acc += scheduler_advance();
    }
    acc
}
