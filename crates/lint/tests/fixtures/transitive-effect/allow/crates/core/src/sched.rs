// lint:allow(transitive-effect): stamp feeds an operator gauge only; the tick transcript never sees it
pub fn scheduler_advance() -> u64 {
    probe_stamp()
}
