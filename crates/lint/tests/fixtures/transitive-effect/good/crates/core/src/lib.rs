// Fixture tree: same call chain as bad/, but the probe crate is a
// sanctioned wall-clock boundary in lint.toml — a justified direct
// effect seeds no taint, so the core chain stays clean.

pub fn tick_all(shards: usize) -> u64 {
    let mut acc = 0;
    for _ in 0..shards {
        acc += scheduler_advance();
    }
    acc
}
