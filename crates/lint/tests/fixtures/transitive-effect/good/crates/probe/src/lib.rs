use std::time::Instant;

pub fn probe_stamp() -> u64 {
    Instant::now().elapsed().as_micros() as u64
}
