pub fn scheduler_advance() -> u64 {
    probe_stamp()
}
