// Fixture tree: a protected core fn reaches the wall clock through a
// 3-hop chain spanning two crates. Both core hops must be flagged,
// each with a full witness path.

pub fn tick_all(shards: usize) -> u64 {
    let mut acc = 0;
    for _ in 0..shards {
        acc += scheduler_advance();
    }
    acc
}
