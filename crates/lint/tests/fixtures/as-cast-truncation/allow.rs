// Fixture: a narrowing cast with a stated range proof may be annotated.

pub fn encode_shard(shard: usize, out: &mut Vec<u8>) {
    // lint:allow(as-cast-truncation): shard count is capped at 64 by TopologyConfig::validate, fits u8
    out.push(shard as u8);
}
