// Fixture: try_from rejects out-of-range values instead of wrapping,
// and widening casts lose nothing — both stay quiet.

pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
    let len = u32::try_from(payload.len())
        .map_err(|_| format!("frame too large: {} bytes", payload.len()))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

pub fn widen_tick(tick: u32) -> u64 {
    tick as u64
}
