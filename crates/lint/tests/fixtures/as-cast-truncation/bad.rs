// Fixture: narrowing `as` casts on the wire codec path must fire.

pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    let len = payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

pub fn encode_verdict_code(code: i64, out: &mut Vec<u8>) {
    out.push(code as u8);
}
