// Fixture: entropy outside the engine may be annotated.
pub fn demo_shuffle_seed() -> u64 {
    // lint:allow(ambient-entropy): demo-only jitter outside the engine; results are never recorded or replayed
    let hasher = std::collections::hash_map::RandomState::new();
    std::hash::BuildHasher::hash_one(&hasher, 0u8)
}
