// Fixture: all randomness keyed on the run seed via DetRng.
use blameit_topology::rng::DetRng;

pub fn jitter_ms(seed: u64, path: u32) -> f64 {
    let mut rng = DetRng::from_keys(seed, path as u64);
    rng.next_f64() * 3.0
}
