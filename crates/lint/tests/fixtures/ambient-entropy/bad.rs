// Fixture: ambient entropy sources outside DetRng.
use std::collections::hash_map::RandomState;

pub fn hasher_seed() -> RandomState {
    RandomState::new()
}
