// Fixture: ordered container, or collect-then-sort, stays quiet.
use std::collections::{BTreeMap, HashMap};

pub fn drain_verdicts(out: &mut Vec<String>) {
    let pending: BTreeMap<u64, String> = BTreeMap::new();
    for (id, verdict) in pending {
        out.push(format!("{id} {verdict}"));
    }

    let extra: HashMap<u64, u64> = HashMap::new();
    let mut rows: Vec<(u64, u64)> = extra.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    for (id, n) in rows {
        out.push(format!("{id} {n}"));
    }
}
