// Fixture: hash-order iteration in the daemon feeding emitted output.
use std::collections::HashMap;

pub fn drain_verdicts(out: &mut Vec<String>) {
    let pending: HashMap<u64, String> = HashMap::new();
    for (id, verdict) in pending {
        out.push(format!("{id} {verdict}"));
    }
}
