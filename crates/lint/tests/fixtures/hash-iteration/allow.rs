// Fixture: order-insensitive folds in the daemon may be annotated.
use std::collections::HashMap;

pub fn queued_bytes(queues: &HashMap<u32, Vec<u8>>) -> usize {
    let sizes: HashMap<u32, Vec<u8>> = queues.clone();
    let mut total = 0;
    // lint:allow(hash-iteration): order-insensitive sum for a backpressure gauge; no per-entry output escapes
    for (_path, q) in sizes {
        total += q.len();
    }
    total
}
