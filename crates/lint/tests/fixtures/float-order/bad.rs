// Fixture: partial order inside a sort comparator.
pub fn rank(estimates: &mut Vec<f64>) {
    estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
