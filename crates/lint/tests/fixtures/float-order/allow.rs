// Fixture: a justified partial_cmp comparator may be annotated.
pub fn rank(estimates: &mut Vec<f64>) {
    // lint:allow(float-order): inputs are validated finite at the API boundary; kept to mirror the paper's pseudocode
    estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
