// Fixture: total_cmp gives a total order (NaN included) — stable
// rankings across runs.
pub fn rank(estimates: &mut Vec<f64>) {
    estimates.sort_by(|a, b| a.total_cmp(b));
}
