// Fixture: the deterministic Fx-hashed aliases, constructed through
// `::default()` and the sanctioned capacity helpers. No bare std
// names anywhere, so the rule stays quiet.
use crate::fxhash::{det_map_with_capacity, DetHashMap, DetHashSet};

pub fn build_index(keys: &[u32]) -> usize {
    let mut seen: DetHashSet<u32> = DetHashSet::default();
    for k in keys {
        seen.insert(*k);
    }
    let counts: DetHashMap<u32, u64> = det_map_with_capacity(keys.len());
    seen.len() + counts.len()
}
