// Fixture: a deliberately std-hashed map behind annotated escapes.
// Every bare mention needs its own annotation — the suppression
// covers the comment's own line plus the next code line only.

// lint:allow(sip-hasher): snapshot handed to external tooling that expects std's default hasher
use std::collections::HashMap;

// lint:allow(sip-hasher): snapshot handed to external tooling that expects std's default hasher
pub fn export_counts(keys: &[u32]) -> HashMap<u32, u64> {
    // lint:allow(sip-hasher): snapshot handed to external tooling that expects std's default hasher
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts
}
