// Fixture: bare std hash containers on the engine's hot path. Both
// the `use` line and the constructions must trip — the rule is
// lexical, so the hazard surfaces at the import before any map is
// built.
use std::collections::{HashMap, HashSet};

pub fn build_index(keys: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    for k in keys {
        seen.insert(*k);
    }
    let counts: HashMap<u32, u64> = HashMap::with_capacity(keys.len());
    seen.len() + counts.len()
}
