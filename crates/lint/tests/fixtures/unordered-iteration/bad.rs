// Fixture: hash-order iteration feeding an emitted transcript.
use std::collections::HashMap;

pub fn emit(transcript: &mut Vec<String>) {
    let counts: HashMap<u32, u64> = HashMap::new();
    for (path, n) in counts {
        transcript.push(format!("{path} {n}"));
    }
}

// Shadowed rebinding: `rows` starts ordered, but the later `let`
// rebinds it to a hash container — iterating it afterwards is
// hash-order again and must still trip.
pub fn emit_rebound(transcript: &mut Vec<String>) {
    let rows: Vec<(u32, u64)> = Vec::new();
    for (path, n) in &rows {
        transcript.push(format!("{path} {n}"));
    }
    let rows: HashMap<u32, u64> = HashMap::new();
    for (path, n) in &rows {
        transcript.push(format!("{path} {n}"));
    }
}
