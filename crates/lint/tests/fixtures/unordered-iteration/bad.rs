// Fixture: hash-order iteration feeding an emitted transcript.
use std::collections::HashMap;

pub fn emit(transcript: &mut Vec<String>) {
    let counts: HashMap<u32, u64> = HashMap::new();
    for (path, n) in counts {
        transcript.push(format!("{path} {n}"));
    }
}
