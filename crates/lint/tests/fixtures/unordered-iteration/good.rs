// Fixture: ordered container, or collect-then-sort before emitting.
use std::collections::{BTreeMap, HashMap};

pub fn emit(transcript: &mut Vec<String>) {
    let counts: BTreeMap<u32, u64> = BTreeMap::new();
    for (path, n) in counts {
        transcript.push(format!("{path} {n}"));
    }

    let extra: HashMap<u32, u64> = HashMap::new();
    let mut rows: Vec<(u32, u64)> = extra.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    for (path, n) in rows {
        transcript.push(format!("{path} {n}"));
    }
}
