// Fixture: ordered container, or collect-then-sort before emitting.
use std::collections::{BTreeMap, HashMap};

pub fn emit(transcript: &mut Vec<String>) {
    let counts: BTreeMap<u32, u64> = BTreeMap::new();
    for (path, n) in counts {
        transcript.push(format!("{path} {n}"));
    }

    let extra: HashMap<u32, u64> = HashMap::new();
    let mut rows: Vec<(u32, u64)> = extra.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    for (path, n) in rows {
        transcript.push(format!("{path} {n}"));
    }
}

// Shadowed rebinding: `extra` starts as a hash container, but the
// second `let` rebinds it to the sorted rows — iterating the rebound
// name is ordered and must stay quiet.
pub fn emit_rebound(transcript: &mut Vec<String>) {
    let extra: HashMap<u32, u64> = HashMap::new();
    let mut rows: Vec<(u32, u64)> = extra.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    let extra = rows;
    for (path, n) in extra {
        transcript.push(format!("{path} {n}"));
    }
}
