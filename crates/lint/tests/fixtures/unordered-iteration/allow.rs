// Fixture: order-insensitive folds may be annotated.
use std::collections::HashMap;

pub fn total_clients(per_path: &HashMap<u32, u64>) -> u64 {
    let counts: HashMap<u32, u64> = per_path.clone();
    let mut total = 0;
    // lint:allow(unordered-iteration): folds into an order-insensitive sum for a gauge; no per-entry output escapes
    for (_path, n) in counts {
        total += n;
    }
    total
}
