// Fixture tree: every escape pays rent — the annotation suppresses a
// live wall-clock finding, so the auditor stays quiet.
use std::time::Instant;

pub fn report_runtime_us() -> u64 {
    // lint:allow(wall-clock): metrics-only timing for an operator report; never feeds sim state
    Instant::now().elapsed().as_micros() as u64
}
