// Fixture tree: a lint:allow that suppresses nothing is dead weight —
// the auditor must flag it (and the dead lint.toml prefix).

pub fn tick_count(ticks: &[u64]) -> u64 {
    // lint:allow(wall-clock): metrics-only timing for an operator report
    ticks.iter().sum()
}
