// Fixture tree: a stale escape held through a migration window — the
// stale-suppression finding itself is annotated with the hold reason.

pub fn tick_count(ticks: &[u64]) -> u64 {
    // lint:allow(stale-suppression): timer lands next sprint and the wall-clock escape returns; hold it
    // lint:allow(wall-clock): metrics-only timing for an operator report
    ticks.iter().sum()
}
