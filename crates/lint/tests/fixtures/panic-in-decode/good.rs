// Fixture: bounds-checked reads that return errors on corrupt input.
pub fn decode_header(r: &mut ByteReader<'_>) -> Result<(u8, u32), CodecError> {
    let kind = r.u8()?;
    let len = r.u32()?;
    if len > MAX_SECTION {
        return Err(CodecError::Invalid("section too large"));
    }
    Ok((kind, len))
}
