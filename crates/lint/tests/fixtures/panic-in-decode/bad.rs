// Fixture: panics reachable from untrusted bytes in a decode path.
pub fn decode_header(bytes: &[u8]) -> (u8, u32) {
    let kind = bytes[0];
    let len = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
    (kind, len)
}
