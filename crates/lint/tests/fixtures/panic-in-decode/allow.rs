// Fixture: provably in-bounds indexing may be annotated.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint:allow(panic-in-decode): index is masked to 0..=255 and CRC_TABLE has 256 entries — infallible for any input
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}
