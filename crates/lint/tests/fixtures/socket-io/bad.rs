// Fixture: raw sockets reaching into decision code. The import, the
// bind, and the connect must all trip — IO belongs at the edges.
use std::net::{TcpListener, TcpStream};

pub fn decide_and_send(addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    drop(listener);
    let stream = TcpStream::connect(addr)?;
    drop(stream);
    Ok(())
}
