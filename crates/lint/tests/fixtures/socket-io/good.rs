// Fixture: the sanctioned shape — decisions operate on generic
// readers/writers; whoever owns the socket stays outside. No socket
// type is named, so the rule stays quiet.
use std::io::{Read, Write};

pub fn relay(src: &mut impl Read, dst: &mut impl Write) -> std::io::Result<u64> {
    std::io::copy(src, dst)
}
