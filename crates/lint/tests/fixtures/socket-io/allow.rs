// Fixture: a deliberate socket edge behind annotated escapes — every
// bare mention needs its own annotation.

// lint:allow(socket-io): this file IS the IO shell; decisions live behind the Core trait
use std::net::TcpStream;

pub fn open_edge(addr: &str) -> std::io::Result<()> {
    // lint:allow(socket-io): this file IS the IO shell; decisions live behind the Core trait
    let stream = TcpStream::connect(addr)?;
    drop(stream);
    Ok(())
}
