// Fixture: durations derived from sim time are replayable and clean.
use blameit_simnet::SimTime;

pub fn tick_duration_secs(start: SimTime, end: SimTime) -> u64 {
    end.secs().saturating_sub(start.secs())
}
