// Fixture: metrics-only wall time is legitimate when annotated.
use std::time::Instant;

pub fn report_runtime_ms() -> f64 {
    // lint:allow(wall-clock): metrics-only timing for an operator report; never feeds sim state
    let started = Instant::now();
    // lint:allow(wall-clock): metrics-only timing for an operator report; never feeds sim state
    started.elapsed().as_secs_f64() * 1e3
}
