// Fixture: wall-clock must fire on real-time reads in sim code.
use std::time::Instant;

pub fn tick_duration_secs() -> f64 {
    let started = Instant::now();
    started.elapsed().as_secs_f64()
}
