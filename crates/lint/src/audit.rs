//! The suppression auditor.
//!
//! Every escape hatch must keep paying rent: an inline `lint:allow`
//! that suppresses nothing and a `lint.toml` prefix that matches no
//! finding are reported as `stale-suppression` findings, so the
//! allowlist can only shrink unless a human re-justifies it. Liveness
//! is usage-based — the resolver and the effect propagation mark every
//! annotation and config entry they consume — which keeps the audit
//! exactly consistent with what suppression actually did this run
//! (including boundary annotations that never map to a report line).
//!
//! Stale findings are themselves suppressible once
//! (`lint:allow(stale-suppression): …` or a config prefix), e.g. to
//! hold an annotation through a migration window; a stale-suppression
//! escape that in turn suppresses nothing is reported directly, with
//! no further recursion.

use crate::config::Config;
use crate::diag::{Diagnostic, Report, Suppressed};
use crate::{resolve_site, FileAnalysis, Resolution, Uses, STALE_SUPPRESSION};

/// Runs the audit over the whole workspace and appends its findings
/// (and their suppressions) to `report`. `uses` must already contain
/// every annotation/config consumption from rule resolution and effect
/// propagation.
pub fn run(files: &[FileAnalysis], cfg: &Config, uses: &mut Uses, report: &mut Report) {
    // Pass 1: stale base-rule escapes, resolved against
    // stale-suppression escapes (which marks *those* as used).
    let mut second_order: Vec<(usize, usize, Diagnostic)> = Vec::new();
    for (fi, fa) in files.iter().enumerate() {
        for (ai, a) in fa.allows.iter().enumerate() {
            if a.rule == STALE_SUPPRESSION || uses.annotations.contains(&(fi, ai)) {
                continue;
            }
            let d = Diagnostic {
                rule: STALE_SUPPRESSION,
                path: fa.path.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "`lint:allow({rule})` suppresses nothing — `{rule}` no longer fires here; remove the annotation or re-justify it",
                    rule = a.rule
                ),
                snippet: format!("// lint:allow({}): {}", a.rule, a.reason),
                witness: Vec::new(),
            };
            second_order.push((fi, ai, d));
        }
    }
    for (fi, _, d) in second_order {
        resolve_pass_diag(&files[fi], fi, cfg, d, uses, report);
    }

    // Stale lint.toml prefixes. Their findings anchor at lint.toml
    // itself; only a config prefix over "lint.toml" could suppress
    // them (there is no annotation syntax in TOML).
    for e in &cfg.entries {
        if e.rule == STALE_SUPPRESSION || uses.config.contains(&(e.rule.clone(), e.prefix.clone()))
        {
            continue;
        }
        let d = Diagnostic {
            rule: STALE_SUPPRESSION,
            path: "lint.toml".to_string(),
            line: e.line,
            col: 1,
            message: format!(
                "allow prefix `{}` for `{}` matches no finding anywhere in the tree; remove the entry",
                e.prefix, e.rule
            ),
            snippet: format!("{} = [.. \"{}\" ..]", e.rule, e.prefix),
            witness: Vec::new(),
        };
        if let Some(prefix) = cfg.allowing_prefix(STALE_SUPPRESSION, "lint.toml") {
            uses.config
                .insert((STALE_SUPPRESSION.to_string(), prefix.to_string()));
            report.suppressed.push(Suppressed {
                rule: STALE_SUPPRESSION,
                path: d.path,
                line: d.line,
                how: "config",
                reason: String::new(),
            });
        } else {
            report.diagnostics.push(d);
        }
    }

    // Pass 2: stale-suppression escapes that pass 1 did not consume
    // are themselves stale. Reported directly — the recursion stops
    // here by construction.
    for (fi, fa) in files.iter().enumerate() {
        for (ai, a) in fa.allows.iter().enumerate() {
            if a.rule != STALE_SUPPRESSION || uses.annotations.contains(&(fi, ai)) {
                continue;
            }
            report.diagnostics.push(Diagnostic {
                rule: STALE_SUPPRESSION,
                path: fa.path.clone(),
                line: a.line,
                col: 1,
                message: "`lint:allow(stale-suppression)` shields no stale escape; remove it"
                    .to_string(),
                snippet: format!("// lint:allow({}): {}", a.rule, a.reason),
                witness: Vec::new(),
            });
        }
    }
    for e in &cfg.entries {
        if e.rule != STALE_SUPPRESSION || uses.config.contains(&(e.rule.clone(), e.prefix.clone()))
        {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule: STALE_SUPPRESSION,
            path: "lint.toml".to_string(),
            line: e.line,
            col: 1,
            message: format!(
                "stale-suppression prefix `{}` shields no stale escape; remove the entry",
                e.prefix
            ),
            snippet: format!("{} = [.. \"{}\" ..]", e.rule, e.prefix),
            witness: Vec::new(),
        });
    }
}

/// Resolves one pass-produced diagnostic against the file's own
/// annotations and the config, marking usage either way.
pub fn resolve_pass_diag(
    fa: &FileAnalysis,
    fi: usize,
    cfg: &Config,
    d: Diagnostic,
    uses: &mut Uses,
    report: &mut Report,
) {
    match resolve_site(fa, cfg, d.rule, d.line) {
        Resolution::Annotation(ai) => {
            uses.annotations.insert((fi, ai));
            report.suppressed.push(Suppressed {
                rule: d.rule,
                path: d.path,
                line: d.line,
                how: "annotation",
                reason: fa.allows[ai].reason.clone(),
            });
        }
        Resolution::Config(prefix) => {
            uses.config.insert((d.rule.to_string(), prefix));
            report.suppressed.push(Suppressed {
                rule: d.rule,
                path: d.path,
                line: d.line,
                how: "config",
                reason: String::new(),
            });
        }
        Resolution::Open => report.diagnostics.push(d),
    }
}
