//! Interprocedural effect propagation.
//!
//! Direct effects are seeded by the existing lexical rules (so the two
//! layers can never disagree about what counts as a wall-clock read or
//! a panic site) and then propagated *backwards* over the call graph:
//! a caller inherits every effect its callees carry. A function inside
//! a protected scope (`[effects] protected` in `lint.toml`, default
//! `crates/core/src/`; the persist decode files for panics) that
//! reaches an effect through any call chain is flagged with the full
//! witness path.
//!
//! Two kinds of suppression shape the flow, and both feed the
//! suppression auditor's usage tracking:
//!
//! - a *justified site* (the base rule's finding at the effect site is
//!   suppressed by annotation or `lint.toml`) is a boundary: it seeds
//!   nothing, because a human already vouched for that exact usage;
//! - a *justified function* (`lint:allow(transitive-effect)` at the
//!   `fn`, or a config prefix) absorbs taint: its own finding is
//!   suppressed and nothing propagates past it, so one annotation on a
//!   wrapper covers every caller above it.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::rules::{
    AmbientEntropy, FileCtx, PanicInDecode, Rule, SocketIo, ThreadIdentity, WallClock, DECODE_FILES,
};
use crate::{resolve_site, FileAnalysis, Resolution, TRANSITIVE_EFFECT};
use std::collections::{BTreeMap, VecDeque};

/// The effect classes the analysis propagates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectKind {
    AmbientEntropy,
    PanicLike,
    SocketIo,
    ThreadIdentity,
    WallClock,
}

impl EffectKind {
    pub const ALL: [EffectKind; 5] = [
        EffectKind::AmbientEntropy,
        EffectKind::PanicLike,
        EffectKind::SocketIo,
        EffectKind::ThreadIdentity,
        EffectKind::WallClock,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            EffectKind::AmbientEntropy => "ambient-entropy",
            EffectKind::PanicLike => "panic-like",
            EffectKind::SocketIo => "socket-io",
            EffectKind::ThreadIdentity => "thread-identity",
            EffectKind::WallClock => "wall-clock",
        }
    }

    pub fn parse(s: &str) -> Option<EffectKind> {
        EffectKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// The lexical rule whose suppression justifies a direct site of
    /// this effect (turning it into a propagation boundary).
    pub fn base_rule(self) -> &'static str {
        match self {
            EffectKind::AmbientEntropy => "ambient-entropy",
            EffectKind::PanicLike => "panic-in-decode",
            EffectKind::SocketIo => "socket-io",
            EffectKind::ThreadIdentity => "thread-identity",
            EffectKind::WallClock => "wall-clock",
        }
    }
}

/// One direct effect occurrence in a file, independent of rule path
/// scoping (a panic helper outside `persist/` still *carries* the
/// effect even though `panic-in-decode` would not fire there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSite {
    pub kind: EffectKind,
    pub line: u32,
    pub col: u32,
    /// Short display of what the site does (`Instant::now`,
    /// `.unwrap()`, `TcpStream`), for witness rendering.
    pub what: String,
}

/// Extracts every direct effect site from one file by running the
/// seeding rules. The panic rule is run under a virtual decode path so
/// it reports sites in *any* file — scoping back to the protected
/// decode fns happens at emission, not detection.
pub fn direct_sites(ctx: &FileCtx) -> Vec<EffectSite> {
    let mut diags = Vec::new();
    WallClock.check(ctx, &mut diags);
    AmbientEntropy.check(ctx, &mut diags);
    ThreadIdentity.check(ctx, &mut diags);
    SocketIo.check(ctx, &mut diags);
    let mut sites: Vec<EffectSite> = diags
        .iter()
        .filter_map(|d| {
            EffectKind::parse(d.rule).map(|kind| EffectSite {
                kind,
                line: d.line,
                col: d.col,
                what: short_what(&d.message),
            })
        })
        .collect();
    let vctx = FileCtx {
        path: DECODE_FILES[0],
        toks: ctx.toks,
        lines: ctx.lines,
    };
    let mut pdiags = Vec::new();
    PanicInDecode.check(&vctx, &mut pdiags);
    sites.extend(pdiags.iter().map(|d| EffectSite {
        kind: EffectKind::PanicLike,
        line: d.line,
        col: d.col,
        what: short_what(&d.message),
    }));
    sites.sort_by_key(|s| (s.line, s.col, s.kind));
    sites
}

/// The backtick-quoted head of a rule message (`` `Instant::now` reads
/// … `` → `Instant::now`), falling back to the first word.
fn short_what(message: &str) -> String {
    if let Some(rest) = message.strip_prefix('`') {
        if let Some(end) = rest.find('`') {
            return rest[..end].to_string();
        }
    }
    message
        .split_whitespace()
        .next()
        .unwrap_or("effect")
        .to_string()
}

/// How an effect arrived at a function.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// The function's own body contains the (unjustified) site.
    Direct { line: u32, what: String },
    /// Inherited through the call at `graph.edges[edge]`; follow the
    /// callee's arrival to reconstruct the full chain.
    Via { edge: u32 },
}

/// Result of effect propagation over the call graph.
#[derive(Debug, Default)]
pub struct Taint {
    /// Per graph node: which effects it carries and how they arrived.
    pub state: Vec<BTreeMap<EffectKind, Arrival>>,
    /// Node index → index into the workspace file list.
    pub node_file: Vec<usize>,
    /// `(file idx, allow idx)` annotations consumed as boundaries or
    /// absorbers — live suppressions for the audit.
    pub used_annotations: Vec<(usize, usize)>,
    /// `(rule, prefix)` config entries consumed the same way.
    pub used_config: Vec<(String, String)>,
}

/// Seeds direct effects (minus justified boundaries) and propagates
/// them caller-ward to a fixpoint. Deterministic: nodes, edges, and
/// the BFS queue all follow the canonical sorted order.
pub fn propagate(files: &[FileAnalysis], graph: &CallGraph, cfg: &Config) -> Taint {
    let mut taint = Taint {
        state: vec![BTreeMap::new(); graph.nodes.len()],
        ..Taint::default()
    };

    let file_idx: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    taint.node_file = graph
        .nodes
        .iter()
        .map(|n| *file_idx.get(n.file.as_str()).unwrap_or(&usize::MAX))
        .collect();
    // (file idx, fn def line, fn def col) → node, for seeding.
    let node_at: BTreeMap<(usize, u32, u32), usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| taint.node_file[i] != usize::MAX)
        .map(|(i, n)| ((taint.node_file[i], n.item.line, n.item.col), i))
        .collect();

    // Seed: every unjustified direct site taints its enclosing fn.
    for (fi, fa) in files.iter().enumerate() {
        for site in &fa.sites {
            match resolve_site(fa, cfg, site.kind.base_rule(), site.line) {
                Resolution::Annotation(ai) => taint.used_annotations.push((fi, ai)),
                Resolution::Config(prefix) => taint
                    .used_config
                    .push((site.kind.base_rule().to_string(), prefix)),
                Resolution::Open => {
                    let Some(k) = enclosing_fn(fa, site.line) else {
                        continue;
                    };
                    if fa.items.fns[k].in_test {
                        continue;
                    }
                    let key = (fi, fa.items.fns[k].line, fa.items.fns[k].col);
                    if let Some(&node) = node_at.get(&key) {
                        taint.state[node]
                            .entry(site.kind)
                            .or_insert(Arrival::Direct {
                                line: site.line,
                                what: site.what.clone(),
                            });
                    }
                }
            }
        }
    }

    // Reverse BFS per effect kind, seeds in node order. A function
    // whose transitive finding is already justified absorbs the taint:
    // it is marked (so the suppression shows up in reports and the
    // annotation counts as live) but never enqueued.
    for kind in EffectKind::ALL {
        let mut queue: VecDeque<usize> = (0..graph.nodes.len())
            .filter(|&n| matches!(taint.state[n].get(&kind), Some(Arrival::Direct { .. })))
            .collect();
        while let Some(n) = queue.pop_front() {
            for &ei in &graph.incoming[n] {
                let e = graph.edges[ei as usize];
                let caller = e.caller as usize;
                if taint.state[caller].contains_key(&kind) {
                    continue;
                }
                let fi = taint.node_file[caller];
                if fi == usize::MAX {
                    continue;
                }
                let fa = &files[fi];
                let def_line = graph.nodes[caller].item.line;
                taint.state[caller].insert(kind, Arrival::Via { edge: ei });
                match resolve_site(fa, cfg, TRANSITIVE_EFFECT, def_line) {
                    Resolution::Annotation(ai) => taint.used_annotations.push((fi, ai)),
                    Resolution::Config(prefix) => taint
                        .used_config
                        .push((TRANSITIVE_EFFECT.to_string(), prefix)),
                    Resolution::Open => queue.push_back(caller),
                }
            }
        }
    }
    taint.used_annotations.sort_unstable();
    taint.used_annotations.dedup();
    taint.used_config.sort_unstable();
    taint.used_config.dedup();
    taint
}

/// Innermost fn in `fa` whose body line range contains `line`.
fn enclosing_fn(fa: &FileAnalysis, line: u32) -> Option<usize> {
    fa.fn_lines
        .iter()
        .enumerate()
        .filter(|(_, (lo, hi))| *lo <= line && line <= *hi)
        .max_by_key(|(_, (lo, _))| *lo)
        .map(|(k, _)| k)
}

/// Whether `kind`'s protected scope covers `path`: functions there
/// must not reach the effect.
fn protected(cfg: &Config, kind: EffectKind, path: &str) -> bool {
    match kind {
        EffectKind::PanicLike => DECODE_FILES.contains(&path),
        _ => cfg.protected.iter().any(|p| path.starts_with(p.as_str())),
    }
}

/// Emits raw `transitive-effect` diagnostics (pre-suppression) for
/// every protected-scope function that inherits an effect it does not
/// itself contain, each carrying the full witness chain.
pub fn findings(
    files: &[FileAnalysis],
    graph: &CallGraph,
    cfg: &Config,
    taint: &Taint,
) -> Vec<(usize, Diagnostic)> {
    let mut out = Vec::new();
    for (n, state) in taint.state.iter().enumerate() {
        let fi = taint.node_file[n];
        if fi == usize::MAX {
            continue;
        }
        let fa = &files[fi];
        let node = &graph.nodes[n];
        for (&kind, arrival) in state {
            let Arrival::Via { edge } = arrival else {
                continue; // direct sites are the base rules' domain
            };
            if !protected(cfg, kind, &fa.path) {
                continue;
            }
            let (chain, witness, seat) = walk_chain(graph, taint, n, kind, *edge);
            let k = enclosing_fn_by_def(fa, node.item.line, node.item.col);
            let snippet = k.map(|k| fa.fn_sigs[k].clone()).unwrap_or_default();
            out.push((
                fi,
                Diagnostic {
                    rule: TRANSITIVE_EFFECT,
                    path: fa.path.clone(),
                    line: node.item.line,
                    col: node.item.col,
                    message: format!(
                        "`{}` transitively reaches `{}` ({} effect): {}; break the chain, inject the effect, or annotate with lint:allow(transitive-effect)",
                        node.qual(),
                        seat.what,
                        kind.as_str(),
                        chain,
                    ),
                    snippet,
                    witness,
                },
            ));
        }
    }
    out
}

struct Seat {
    what: String,
}

/// Follows `Via` arrivals from node `n` down to the seeding site,
/// returning the compact chain (`a → b → c uses X at file:line`), the
/// per-hop witness lines, and the seed description.
fn walk_chain(
    graph: &CallGraph,
    taint: &Taint,
    n: usize,
    kind: EffectKind,
    first_edge: u32,
) -> (String, Vec<String>, Seat) {
    let mut names = vec![graph.nodes[n].qual()];
    let mut witness = Vec::new();
    let mut edge = first_edge;
    // Bounded by node count: arrivals form a forest rooted at seeds.
    for _ in 0..graph.nodes.len() {
        let e = graph.edges[edge as usize];
        let caller = &graph.nodes[e.caller as usize];
        let callee = &graph.nodes[e.callee as usize];
        witness.push(format!(
            "{} calls {} at {}:{}",
            caller.qual(),
            callee.qual(),
            caller.file,
            e.line
        ));
        names.push(callee.qual());
        match taint.state[e.callee as usize].get(&kind) {
            Some(Arrival::Via { edge: next }) => edge = *next,
            Some(Arrival::Direct { line, what }) => {
                witness.push(format!(
                    "{} uses `{}` at {}:{}",
                    callee.qual(),
                    what,
                    callee.file,
                    line
                ));
                let chain = format!(
                    "{} uses `{}` at {}:{}",
                    names.join(" → "),
                    what,
                    callee.file,
                    line
                );
                return (chain, witness, Seat { what: what.clone() });
            }
            None => break,
        }
    }
    let chain = names.join(" → ");
    (
        chain,
        witness,
        Seat {
            what: "an effect".to_string(),
        },
    )
}

/// Index of the fn in `fa` whose def sits at (line, col).
fn enclosing_fn_by_def(fa: &FileAnalysis, line: u32, col: u32) -> Option<usize> {
    fa.items
        .fns
        .iter()
        .position(|f| f.line == line && f.col == col)
}

/// Renders the machine-readable effect map: every non-test function
/// with its direct and transitive effect sets plus resolved call
/// edges. Schema is versioned so CI consumers can detect drift.
pub fn effect_map_json(graph: &CallGraph, taint: &Taint) -> String {
    use crate::diag::push_json_str;
    let mut out =
        String::from("{\n  \"schema\": \"blameit-lint/effect-map/v1\",\n  \"functions\": [");
    let mut first = true;
    for (n, node) in graph.nodes.iter().enumerate() {
        if node.item.in_test {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\"fn\": ");
        push_json_str(&mut out, &node.qual());
        out.push_str(", \"file\": ");
        push_json_str(&mut out, &node.file);
        out.push_str(&format!(", \"line\": {}, \"direct\": [", node.item.line));
        let mut wrote = false;
        for (kind, arrival) in &taint.state[n] {
            if matches!(arrival, Arrival::Direct { .. }) {
                if wrote {
                    out.push_str(", ");
                }
                push_json_str(&mut out, kind.as_str());
                wrote = true;
            }
        }
        out.push_str("], \"transitive\": [");
        let mut wrote = false;
        for (kind, arrival) in &taint.state[n] {
            if matches!(arrival, Arrival::Via { .. }) {
                if wrote {
                    out.push_str(", ");
                }
                push_json_str(&mut out, kind.as_str());
                wrote = true;
            }
        }
        out.push_str("], \"calls\": [");
        for (k, &ei) in graph.out[n].iter().enumerate() {
            let e = graph.edges[ei as usize];
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"to\": ");
            push_json_str(&mut out, &graph.nodes[e.callee as usize].qual());
            out.push_str(&format!(", \"line\": {}}}", e.line));
        }
        out.push_str("]}");
    }
    out.push_str(&format!(
        "\n  ],\n  \"nodes\": {},\n  \"edges\": {}\n}}\n",
        graph.nodes.len(),
        graph.edges.len()
    ));
    out
}
