//! `blameit-lint` CLI.
//!
//! Exit codes: 0 clean, 1 violations (or failed self-check), 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
blameit-lint — static analysis for the determinism contract

USAGE:
    blameit-lint [--root DIR] [--json] [--self-check] [--rules]
                 [--only IDS] [--effect-map PATH]
                 [--cache-dir DIR | --no-cache]

OPTIONS:
    --root DIR        workspace root to lint (default: .)
    --json            machine-readable report on stdout
    --self-check      run the rule fixtures (bad must fail, good must
                      pass, allow must suppress with a reason) and exit
    --rules           list rule and pass IDs and what they catch
    --only IDS        comma-separated rule/pass IDs: report only these
                      (suppression audit still sees the full run)
    --effect-map PATH write the per-function effect map JSON artifact
    --cache-dir DIR   per-file analysis cache location
                      (default: <root>/target/blameit-lint)
    --no-cache        analyze every file from scratch
    -h, --help        this text

Suppression: `// lint:allow(<rule>): <reason>` on or above the line,
or a path-prefix allowlist in <root>/lint.toml under `[allow]`.
Unused escapes are themselves findings (`stale-suppression`).
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut self_check = false;
    let mut list_rules = false;
    let mut only: Option<Vec<String>> = None;
    let mut effect_map: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--self-check" => self_check = true,
            "--rules" => list_rules = true,
            "--only" => match args.next() {
                Some(ids) => only = Some(ids.split(',').map(|s| s.trim().to_string()).collect()),
                None => {
                    eprintln!("--only needs a comma-separated ID list\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--effect-map" => match args.next() {
                Some(p) => effect_map = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--effect-map needs a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--cache-dir" => match args.next() {
                Some(p) => cache_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--cache-dir needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => no_cache = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in blameit_lint::rules::all_rules() {
            println!("{:<20} {}", rule.id(), rule.summary());
        }
        println!(
            "{:<20} fn in a protected scope reaches a nondeterministic effect through calls",
            blameit_lint::TRANSITIVE_EFFECT
        );
        println!(
            "{:<20} lint:allow annotation or lint.toml prefix that suppresses nothing",
            blameit_lint::STALE_SUPPRESSION
        );
        return ExitCode::SUCCESS;
    }

    if self_check {
        return match blameit_lint::self_check(&root) {
            Ok(results) => {
                let mut failed = 0usize;
                for r in &results {
                    let status = if r.pass { "PASS" } else { "FAIL" };
                    println!("{status} {:<32} {}", r.file, r.detail);
                    failed += usize::from(!r.pass);
                }
                println!(
                    "blameit-lint --self-check: {}/{} fixture expectations hold",
                    results.len() - failed,
                    results.len()
                );
                if failed == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("blameit-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let cache_file = if no_cache {
        None
    } else {
        let dir = cache_dir.unwrap_or_else(|| root.join("target/blameit-lint"));
        Some(dir.join("analysis.cache"))
    };
    let opts = blameit_lint::WsOptions { cache_file };

    // lint:allow(wall-clock): timing the linter itself for the perf baseline, never feeds sim state
    let started = std::time::Instant::now();
    match blameit_lint::analyze_workspace(&root, &opts) {
        Ok(ws) => {
            let mut report = ws.report();
            if let Some(ids) = &only {
                report
                    .diagnostics
                    .retain(|d| ids.iter().any(|id| id == d.rule));
                report
                    .suppressed
                    .retain(|s| ids.iter().any(|id| id == s.rule));
            }
            if let Some(path) = &effect_map {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(path, ws.effect_map_json()) {
                    eprintln!("blameit-lint: {}: write failed: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            // lint:allow(wall-clock): metrics-only timing of the lint pass
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
                let (hits, misses) = ws.cache_stats;
                eprintln!(
                    "blameit-lint: scanned in {elapsed_ms:.1} ms (cache: {hits} hit(s), {misses} miss(es))"
                );
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("blameit-lint: {e}");
            ExitCode::from(2)
        }
    }
}
