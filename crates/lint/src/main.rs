//! `blameit-lint` CLI.
//!
//! Exit codes: 0 clean, 1 violations (or failed self-check), 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
blameit-lint — static analysis for the determinism contract

USAGE:
    blameit-lint [--root DIR] [--json] [--self-check] [--rules]

OPTIONS:
    --root DIR     workspace root to lint (default: .)
    --json         machine-readable report on stdout
    --self-check   run the rule fixtures (bad must fail, good must
                   pass, allow must suppress with a reason) and exit
    --rules        list rule IDs and what they catch
    -h, --help     this text

Suppression: `// lint:allow(<rule>): <reason>` on or above the line,
or a path-prefix allowlist in <root>/lint.toml under `[allow]`.
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut self_check = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--self-check" => self_check = true,
            "--rules" => list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in blameit_lint::rules::all_rules() {
            println!("{:<20} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    if self_check {
        return match blameit_lint::self_check(&root) {
            Ok(results) => {
                let mut failed = 0usize;
                for r in &results {
                    let status = if r.pass { "PASS" } else { "FAIL" };
                    println!("{status} {:<32} {}", r.file, r.detail);
                    failed += usize::from(!r.pass);
                }
                println!(
                    "blameit-lint --self-check: {}/{} fixture expectations hold",
                    results.len() - failed,
                    results.len()
                );
                if failed == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("blameit-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    // lint:allow(wall-clock): timing the linter itself for the perf baseline, never feeds sim state
    let started = std::time::Instant::now();
    match blameit_lint::run_workspace(&root) {
        Ok(report) => {
            // lint:allow(wall-clock): metrics-only timing of the lint pass
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
                eprintln!("blameit-lint: scanned in {elapsed_ms:.1} ms");
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("blameit-lint: {e}");
            ExitCode::from(2)
        }
    }
}
