//! A lightweight item parser on top of the lexer.
//!
//! The interprocedural effect analysis needs just enough structure to
//! build a call graph: which `fn` items a file defines (with their
//! body extents), which `impl` type or `mod` they live under, which
//! names `use` declarations pull in or rename, and which calls each
//! body makes. Like the lexer, this is deliberately not a full Rust
//! parser — it is a single brace-tracking pass over the token stream
//! that never fails (see the fuzz-mutation property test in
//! `tests/lint_fuzz.rs`): on confusing input it may miss an item or a
//! call edge, which degrades the analysis to fewer findings, never to
//! a panic or a false transcript of the program.

use crate::lexer::{Tok, TokKind};

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a bare name in scope.
    Free,
    /// `Qualifier::foo(...)` — the last path segment before the name
    /// is recorded as the qualifier (a type, module, or crate name).
    Path,
    /// `receiver.foo(...)` — resolved by method name only, and only
    /// when the name is unambiguous (see `callgraph`).
    Method,
}

impl CallKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CallKind::Free => "free",
            CallKind::Path => "path",
            CallKind::Method => "method",
        }
    }

    pub fn parse(s: &str) -> Option<CallKind> {
        match s {
            "free" => Some(CallKind::Free),
            "path" => Some(CallKind::Path),
            "method" => Some(CallKind::Method),
            _ => None,
        }
    }
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// For [`CallKind::Path`] calls, the segment before the name
    /// (`Instant` in `Instant::now(...)`, `codec` in `codec::crc32(...)`).
    pub qualifier: String,
    pub kind: CallKind,
    pub line: u32,
    pub col: u32,
}

/// One `fn` item with its body extent and outgoing calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, empty for free functions.
    pub self_ty: String,
    /// Enclosing inline `mod` path (`a::b`), empty at file scope.
    pub module: String,
    /// Line/column of the `fn` keyword (diagnostics anchor here).
    pub line: u32,
    pub col: u32,
    /// Token-index range of the body, `[start, end]` inclusive of the
    /// braces. `(0, 0)` for bodyless trait declarations.
    pub body: (u32, u32),
    /// True when the item sits in a `#[cfg(test)]` region or `#[test]`
    /// function — excluded from the effect analysis entirely.
    pub in_test: bool,
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Display key: `module::Type::name` with empty segments elided.
    pub fn qual(&self) -> String {
        let mut out = String::new();
        for part in [&self.module, &self.self_ty] {
            if !part.is_empty() {
                out.push_str(part);
                out.push_str("::");
            }
        }
        out.push_str(&self.name);
        out
    }
}

/// A `use` rename: `use path::orig as alias;` maps `alias` back to
/// `orig` so call-site names still resolve to the definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    pub alias: String,
    pub target: String,
}

/// Parsed items of one file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub aliases: Vec<UseAlias>,
}

/// Words that look like `ident (` but are not calls.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "fn"
            | "let"
            | "in"
            | "as"
            | "move"
            | "mut"
            | "ref"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "else"
            | "break"
            | "continue"
            | "unsafe"
            | "await"
    )
}

/// What an opening brace belongs to, for the owner stack.
#[derive(Debug, Clone)]
enum Owner {
    /// A function body; index into `FileItems::fns`.
    Fn(usize),
    /// An `impl` block for the named type.
    Impl(String),
    /// An inline `mod` block.
    Mod(String),
    /// Anything else: blocks, closures, match arms, initializers.
    Other,
}

/// A keyword seen but whose `{` has not arrived yet.
#[derive(Debug, Clone)]
enum Pending {
    Fn {
        name: String,
        line: u32,
        col: u32,
        in_test: bool,
    },
    Impl(String),
    Mod(String),
}

/// Extracts items and call sites from a lexed token stream.
pub fn parse_items(toks: &[Tok]) -> FileItems {
    let mut out = FileItems::default();
    // Owner per open brace, innermost last. Also tracked: the current
    // impl type and module path for qualifying new fn items.
    let mut stack: Vec<Owner> = Vec::new();
    let mut pending: Option<Pending> = None;

    let innermost_fn = |stack: &[Owner]| -> Option<usize> {
        stack.iter().rev().find_map(|o| match o {
            Owner::Fn(i) => Some(*i),
            _ => None,
        })
    };
    let impl_ty = |stack: &[Owner]| -> String {
        stack
            .iter()
            .rev()
            .find_map(|o| match o {
                Owner::Impl(t) => Some(t.clone()),
                _ => None,
            })
            .unwrap_or_default()
    };
    let module = |stack: &[Owner]| -> String {
        let parts: Vec<&str> = stack
            .iter()
            .filter_map(|o| match o {
                Owner::Mod(m) => Some(m.as_str()),
                _ => None,
            })
            .collect();
        parts.join("::")
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.is_punct('{') => {
                let owner = match pending.take() {
                    Some(Pending::Fn {
                        name,
                        line,
                        col,
                        in_test,
                    }) => {
                        out.fns.push(FnItem {
                            name,
                            self_ty: impl_ty(&stack),
                            module: module(&stack),
                            line,
                            col,
                            body: (i as u32, i as u32),
                            // The test-region latch marks body tokens,
                            // not the `fn` keyword: check the brace too.
                            in_test: in_test || t.in_test,
                            calls: Vec::new(),
                        });
                        Owner::Fn(out.fns.len() - 1)
                    }
                    Some(Pending::Impl(ty)) => Owner::Impl(ty),
                    Some(Pending::Mod(m)) => Owner::Mod(m),
                    None => Owner::Other,
                };
                stack.push(owner);
            }
            TokKind::Punct if t.is_punct('}') => {
                if let Some(Owner::Fn(idx)) = stack.pop() {
                    out.fns[idx].body.1 = i as u32;
                }
            }
            TokKind::Punct if t.is_punct(';') => {
                // Bodyless item (`fn f();` in a trait, `mod m;`): the
                // pending keyword never gets a block.
                pending = None;
            }
            TokKind::Ident if t.text == "fn" => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        pending = Some(Pending::Fn {
                            name: name_tok.text.clone(),
                            line: t.line,
                            col: t.col,
                            in_test: t.in_test,
                        });
                    }
                }
            }
            TokKind::Ident
                if t.text == "impl"
                    && !matches!(pending, Some(Pending::Fn { .. }))
                    && innermost_fn(&stack).is_none() =>
            {
                // Scan the header to `{` or `;`: `impl Foo`, `impl<T>
                // Foo<T>`, `impl Trait for Foo`. `impl Trait` in a
                // return/arg position is followed by `,`/`)`/`>` long
                // before a `{`; those leave `pending` set but the next
                // `{` then mislabels a block as an impl — acceptable
                // for a heuristic, except inside fn bodies where it
                // would steal call attribution; so only scan at item
                // position (the guard above; in a body, `impl` falls
                // through to the call arm where is_call_keyword drops it).
                let mut ty = String::new();
                let mut angle = 0isize;
                let mut j = i + 1;
                while j < toks.len() && j < i + 64 {
                    let h = &toks[j];
                    if h.is_punct('{') || h.is_punct(';') {
                        break;
                    }
                    if h.is_punct('<') {
                        angle += 1;
                    } else if h.is_punct('>') {
                        angle -= 1;
                    } else if h.is_ident("for") && angle == 0 {
                        // `impl Trait for Type`: the implementing
                        // type (after `for`) wins over the trait.
                        ty.clear();
                    } else if h.kind == TokKind::Ident && angle == 0 && ty.is_empty() {
                        ty = h.text.clone();
                    }
                    j += 1;
                }
                if !ty.is_empty() {
                    pending = Some(Pending::Impl(ty));
                }
            }
            TokKind::Ident if t.text == "mod" && innermost_fn(&stack).is_none() => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        pending = Some(Pending::Mod(name_tok.text.clone()));
                    }
                }
            }
            TokKind::Ident if t.text == "use" => {
                i = scan_use(toks, i, &mut out.aliases);
                continue;
            }
            TokKind::Ident => {
                // Call site: `name (` not preceded by `fn`, not a
                // keyword, not a macro (`name!(`).
                if let Some(fn_idx) = innermost_fn(&stack) {
                    if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && !is_call_keyword(&t.text)
                        && !(i > 0 && toks[i - 1].is_ident("fn"))
                    {
                        let (kind, qualifier) = call_shape(toks, i);
                        out.fns[fn_idx].calls.push(CallSite {
                            name: t.text.clone(),
                            qualifier,
                            kind,
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out.aliases
        .sort_by(|a, b| (&a.alias, &a.target).cmp(&(&b.alias, &b.target)));
    out.aliases.dedup();
    out
}

/// Classifies a call at token `i` (an ident followed by `(`).
fn call_shape(toks: &[Tok], i: usize) -> (CallKind, String) {
    if i >= 1 && toks[i - 1].is_punct('.') {
        return (CallKind::Method, String::new());
    }
    if i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == TokKind::Ident
    {
        return (CallKind::Path, toks[i - 3].text.clone());
    }
    (CallKind::Free, String::new())
}

/// Scans a `use …;` declaration from token `start` (the `use` ident),
/// recording `as` renames and plain imports of snake_case names as
/// aliases, and returns the index just past the terminating `;`.
///
/// `use a::b::helper;` yields `helper -> helper` (a marker that the
/// name is imported here); `use a::b::helper as h;` yields
/// `h -> helper`. Groups (`use a::{b, c as d}`) are walked item by
/// item. Glob imports contribute nothing.
fn scan_use(toks: &[Tok], start: usize, out: &mut Vec<UseAlias>) -> usize {
    let mut last_ident = String::new();
    let mut pending_as = false;
    let mut j = start + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokKind::Ident {
            if t.text == "as" {
                pending_as = true;
            } else if pending_as {
                if !last_ident.is_empty() {
                    out.push(UseAlias {
                        alias: t.text.clone(),
                        target: last_ident.clone(),
                    });
                }
                pending_as = false;
                last_ident.clear();
            } else {
                last_ident = t.text.clone();
            }
        } else if t.is_punct(',') || t.is_punct('}') {
            // End of one group item: a plain import of the last name.
            if !last_ident.is_empty() && !pending_as {
                out.push(UseAlias {
                    alias: last_ident.clone(),
                    target: last_ident.clone(),
                });
            }
            last_ident.clear();
            pending_as = false;
        }
        j += 1;
    }
    if !last_ident.is_empty() && !pending_as {
        out.push(UseAlias {
            alias: last_ident.clone(),
            target: last_ident,
        });
    }
    j + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src).toks)
    }

    #[test]
    fn free_fns_and_calls() {
        let fi = items("fn a() { b(); c::d(); x.e(); mac!(f); }\nfn b() {}\n");
        assert_eq!(fi.fns.len(), 2);
        let a = &fi.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.qual(), "a");
        let calls: Vec<(&str, CallKind, &str)> = a
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind, c.qualifier.as_str()))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("b", CallKind::Free, ""),
                ("d", CallKind::Path, "c"),
                ("e", CallKind::Method, ""),
            ]
        );
        assert!(fi.fns[1].calls.is_empty());
    }

    #[test]
    fn impl_and_mod_qualify() {
        let src =
            "mod m {\n impl Widget {\n fn tick(&self) { helper(); }\n }\n fn helper() {}\n}\n";
        let fi = items(src);
        assert_eq!(fi.fns.len(), 2);
        assert_eq!(fi.fns[0].qual(), "m::Widget::tick");
        assert_eq!(fi.fns[1].qual(), "m::helper");
    }

    #[test]
    fn impl_trait_for_type_takes_type() {
        let fi = items("impl Rule for WallClock { fn id(&self) -> &str { name() } }");
        assert_eq!(fi.fns[0].qual(), "WallClock::id");
    }

    #[test]
    fn trait_decls_without_body_are_skipped() {
        let fi = items("trait T { fn must(&self); fn given(&self) { fallback(); } }");
        assert_eq!(fi.fns.len(), 1);
        assert_eq!(fi.fns[0].name, "given");
        assert_eq!(fi.fns[0].calls.len(), 1);
    }

    #[test]
    fn nested_fns_attribute_to_innermost() {
        let fi = items("fn outer() { fn inner() { deep(); } shallow(); }");
        assert_eq!(fi.fns.len(), 2);
        let outer = fi.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fi.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "shallow");
        assert_eq!(inner.calls[0].name, "deep");
    }

    #[test]
    fn closures_attribute_to_enclosing_fn() {
        let fi = items("fn f(v: &[u32]) { v.iter().map(|x| g(x)).count(); }");
        let names: Vec<&str> = fi.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        // `iter`, `map`, `g`, `count` — `g` is in there, attributed to f.
        assert!(names.contains(&"g"));
    }

    #[test]
    fn use_aliases() {
        let fi = items("use a::b::helper;\nuse x::orig as renamed;\nuse y::{one, two as three};\n");
        assert!(fi.aliases.contains(&UseAlias {
            alias: "helper".into(),
            target: "helper".into()
        }));
        assert!(fi.aliases.contains(&UseAlias {
            alias: "renamed".into(),
            target: "orig".into()
        }));
        assert!(fi.aliases.contains(&UseAlias {
            alias: "three".into(),
            target: "two".into()
        }));
        assert!(fi.aliases.contains(&UseAlias {
            alias: "one".into(),
            target: "one".into()
        }));
    }

    #[test]
    fn test_fns_are_marked() {
        let fi = items("#[test]\nfn t() { x(); }\nfn prod() { y(); }\n");
        assert!(fi.fns.iter().find(|f| f.name == "t").unwrap().in_test);
        assert!(!fi.fns.iter().find(|f| f.name == "prod").unwrap().in_test);
    }

    #[test]
    fn unbalanced_input_never_panics() {
        for src in [
            "fn a() { b(",
            "}}}}",
            "fn",
            "impl",
            "use ;;; as as as",
            "fn f() { { { } ",
            "mod m { fn g( }",
        ] {
            let _ = items(src);
        }
    }
}
