//! `blameit-lint` — workspace static analysis for the determinism
//! contract.
//!
//! Every subsystem in this workspace (sharded tick, chaos layer,
//! durable snapshots + journal replay) rests on one invariant: for a
//! fixed seed and fault plan, the tick transcript is byte-identical at
//! any thread count. The dynamic suites (golden transcripts, 6-seed
//! determinism matrices, persist fuzz) catch violations only when a
//! scenario happens to exercise them; this crate makes the common
//! hazard classes a compile-gate instead. See `rules` for the rule
//! set and `docs/ARCHITECTURE.md` for the rule ↔ dynamic-suite table.
//!
//! The crate is dependency-free by design: it carries its own small
//! Rust lexer (`lexer`) instead of `syn`, so linting the workspace
//! costs one token pass per file and no build-dependency closure.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use config::Config;
use diag::{Report, Suppressed};
use rules::FileCtx;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Lints one file's source text under its workspace-relative `path`,
/// appending into `report`. `path` decides rule scoping (e.g.
/// `panic-in-decode` only fires in persist decode files), which is why
/// fixtures are linted under *virtual* paths.
pub fn lint_source(path: &str, src: &str, cfg: &Config, report: &mut Report) {
    let lexed = lexer::lex(src);
    let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let ctx = FileCtx {
        path,
        toks: &lexed.toks,
        lines: &lines,
    };
    let mut raw = Vec::new();
    for rule in rules::all_rules() {
        rule.check(&ctx, &mut raw);
    }
    if raw.is_empty() {
        return;
    }

    // Lines each allow-annotation applies to: its own line (trailing
    // comment) and the next line that has code on it (own-line comment
    // above the statement).
    let token_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let targets = |allow_line: u32| -> [u32; 2] {
        let next = token_lines
            .range(allow_line + 1..)
            .next()
            .copied()
            .unwrap_or(allow_line);
        [allow_line, next]
    };

    'diags: for d in raw {
        if cfg.allows(d.rule, path) {
            report.suppressed.push(Suppressed {
                rule: d.rule,
                path: d.path,
                line: d.line,
                how: "config",
                reason: String::new(),
            });
            continue;
        }
        for a in &lexed.allows {
            if a.rule == d.rule && targets(a.line).contains(&d.line) {
                report.suppressed.push(Suppressed {
                    rule: d.rule,
                    path: d.path,
                    line: d.line,
                    how: "annotation",
                    reason: a.reason.clone(),
                });
                continue 'diags;
            }
        }
        report.diagnostics.push(d);
    }
}

/// Collects the `.rs` files the workspace lint covers: everything under
/// `crates/`, `src/`, `tests/`, and `examples/`, excluding build
/// output and lint fixtures (fixtures are deliberately-bad code,
/// exercised by `--self-check` and the fixture tests instead).
pub fn walk_workspace(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut out);
    }
    // Canonical order keeps reports byte-stable across platforms.
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace rooted at `root`, reading `lint.toml` from
/// the root if present.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let cfg = load_config(root)?;
    let mut report = Report::default();
    for path in walk_workspace(root) {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
        lint_source(&rel, &src, &cfg, &mut report);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Loads `lint.toml` from `root`; a missing file means an empty config.
pub fn load_config(root: &Path) -> Result<Config, String> {
    match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => Config::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("lint.toml: read failed: {e}")),
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The virtual workspace path a rule's fixtures are linted under, so
/// path-scoped rules fire on them.
pub fn fixture_virtual_path(rule_id: &str) -> String {
    match rule_id {
        "panic-in-decode" => "crates/core/src/persist/codec.rs".to_string(),
        _ => format!("crates/core/src/fixture_{}.rs", rule_id.replace('-', "_")),
    }
}

/// Outcome of checking one fixture file.
#[derive(Debug)]
pub struct FixtureResult {
    pub rule: String,
    pub file: String,
    pub pass: bool,
    pub detail: String,
}

/// Runs every rule's bad/good/allow fixtures under
/// `crates/lint/tests/fixtures/<rule>/` and checks the contract:
/// `bad.rs` trips the rule, `good.rs` is clean, `allow.rs` is clean
/// *because* of annotations (suppressions present, reasons recorded).
pub fn self_check(root: &Path) -> Result<Vec<FixtureResult>, String> {
    let cfg = Config::default(); // fixtures never consult lint.toml
    let mut results = Vec::new();
    for rule in rules::all_rules() {
        let id = rule.id();
        let dir = root.join("crates/lint/tests/fixtures").join(id);
        let vpath = fixture_virtual_path(id);
        for kind in ["bad.rs", "good.rs", "allow.rs"] {
            let fpath = dir.join(kind);
            let src = std::fs::read_to_string(&fpath)
                .map_err(|e| format!("{}: read failed: {e}", fpath.display()))?;
            let mut report = Report::default();
            lint_source(&vpath, &src, &cfg, &mut report);
            let hits = report.diagnostics.iter().filter(|d| d.rule == id).count();
            let suppressed = report
                .suppressed
                .iter()
                .filter(|s| s.rule == id && s.how == "annotation" && !s.reason.is_empty())
                .count();
            let (pass, detail) = match kind {
                "bad.rs" => (
                    hits >= 1,
                    format!("{hits} diagnostic(s), expected >= 1"),
                ),
                "good.rs" => (hits == 0, format!("{hits} diagnostic(s), expected 0")),
                _ => (
                    hits == 0 && suppressed >= 1,
                    format!(
                        "{hits} diagnostic(s) (expected 0), {suppressed} reasoned suppression(s) (expected >= 1)"
                    ),
                ),
            };
            results.push(FixtureResult {
                rule: id.to_string(),
                file: format!("{id}/{kind}"),
                pass,
                detail,
            });
        }
    }
    Ok(results)
}
