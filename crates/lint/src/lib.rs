//! `blameit-lint` — workspace static analysis for the determinism
//! contract.
//!
//! Every subsystem in this workspace (sharded tick, chaos layer,
//! durable snapshots + journal replay) rests on one invariant: for a
//! fixed seed and fault plan, the tick transcript is byte-identical at
//! any thread count. The dynamic suites (golden transcripts, 6-seed
//! determinism matrices, persist fuzz) catch violations only when a
//! scenario happens to exercise them; this crate makes the common
//! hazard classes a compile-gate instead. See `rules` for the rule
//! set and `docs/ARCHITECTURE.md` for the rule ↔ dynamic-suite table.
//!
//! Since the interprocedural upgrade the pipeline has two layers:
//!
//! 1. **analyze** (per file, cacheable): lex, run every lexical rule
//!    pre-suppression, extract direct effect sites, and parse items
//!    (`fn`s, `impl` blocks, `use` aliases, call sites). The result is
//!    a pure function of file content — see `cache`.
//! 2. **resolve** (whole workspace): apply suppression (annotations
//!    first, then `lint.toml`), build the call graph (`callgraph`),
//!    propagate effects caller-ward with witness paths (`effects`),
//!    and audit every suppression for staleness (`audit`).
//!
//! The crate is dependency-free by design: it carries its own small
//! Rust lexer (`lexer`) instead of `syn`, so linting the workspace
//! costs one token pass per file and no build-dependency closure.

pub mod audit;
pub mod cache;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod effects;
pub mod lexer;
pub mod parse;
pub mod rules;

use config::Config;
use diag::{Diagnostic, Report, Suppressed};
use lexer::AllowComment;
use parse::FileItems;
use rules::FileCtx;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Rule ID of the interprocedural effect pass.
pub const TRANSITIVE_EFFECT: &str = "transitive-effect";
/// Rule ID of the suppression auditor.
pub const STALE_SUPPRESSION: &str = "stale-suppression";

/// Maps a rule/pass ID to its `&'static str` form (diagnostics store
/// rule IDs as statics); `None` for unknown IDs, which makes stale
/// cache entries a miss instead of a panic.
pub fn intern_rule(id: &str) -> Option<&'static str> {
    if id == TRANSITIVE_EFFECT {
        return Some(TRANSITIVE_EFFECT);
    }
    if id == STALE_SUPPRESSION {
        return Some(STALE_SUPPRESSION);
    }
    rules::all_rules()
        .into_iter()
        .map(|r| r.id())
        .find(|r| *r == id)
}

/// Everything the per-file analysis layer produces: raw (pre-
/// suppression) rule findings, direct effect sites, allow annotations
/// with their target lines, and the parsed items for the call graph.
/// A pure function of (path, content) — cacheable on a content hash.
#[derive(Debug, Default, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw lexical-rule findings, before any suppression.
    pub diags: Vec<Diagnostic>,
    /// Direct effect sites, independent of rule path scoping.
    pub sites: Vec<effects::EffectSite>,
    /// `lint:allow` annotations found in comments.
    pub allows: Vec<AllowComment>,
    /// Per annotation: the last line it covers (the next line bearing
    /// a token, for own-line comments above a statement).
    pub allow_targets: Vec<u32>,
    /// Parsed `fn` items, call sites, and `use` aliases.
    pub items: FileItems,
    /// Per fn (parallel to `items.fns`): body line range, inclusive.
    pub fn_lines: Vec<(u32, u32)>,
    /// Per fn: the trimmed source line of the `fn` keyword, used as
    /// the snippet on transitive findings.
    pub fn_sigs: Vec<String>,
}

/// Analyzes one file's source text under its workspace-relative
/// `path`. `path` decides rule scoping (e.g. `panic-in-decode` only
/// fires in persist decode files), which is why fixtures are analyzed
/// under *virtual* paths.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let ctx = FileCtx {
        path,
        toks: &lexed.toks,
        lines: &lines,
    };
    let mut diags = Vec::new();
    for rule in rules::all_rules() {
        rule.check(&ctx, &mut diags);
    }
    let sites = effects::direct_sites(&ctx);
    let items = parse::parse_items(&lexed.toks);

    let token_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let allow_targets: Vec<u32> = lexed
        .allows
        .iter()
        .map(|a| {
            token_lines
                .range(a.line + 1..)
                .next()
                .copied()
                .unwrap_or(a.line)
        })
        .collect();

    let fn_lines: Vec<(u32, u32)> = items
        .fns
        .iter()
        .map(|f| {
            let (_, end) = f.body;
            if end == 0 {
                (f.line, f.line)
            } else {
                let hi = lexed
                    .toks
                    .get(end as usize)
                    .map(|t| t.line)
                    .unwrap_or(f.line);
                (f.line, hi.max(f.line))
            }
        })
        .collect();
    let fn_sigs: Vec<String> = items
        .fns
        .iter()
        .map(|f| {
            lines
                .get(f.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default()
        })
        .collect();

    FileAnalysis {
        path: path.to_string(),
        diags,
        sites,
        allows: lexed.allows,
        allow_targets,
        items,
        fn_lines,
        fn_sigs,
    }
}

/// How one raw finding at `(rule, line)` resolves against a file's
/// annotations and the workspace config. Annotations are consulted
/// first so the suppression audit attributes liveness to the most
/// specific escape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Suppressed by `fa.allows[idx]`.
    Annotation(usize),
    /// Suppressed by this `lint.toml` prefix.
    Config(String),
    /// Not suppressed: a real violation.
    Open,
}

/// Resolves one site. An annotation covers every line from its own
/// down to the next token-bearing line (so a stack of comment-line
/// annotations covers the statement below all of them).
pub fn resolve_site(fa: &FileAnalysis, cfg: &Config, rule: &str, line: u32) -> Resolution {
    for (ai, a) in fa.allows.iter().enumerate() {
        if a.rule == rule && a.line <= line && line <= fa.allow_targets[ai].max(a.line) {
            return Resolution::Annotation(ai);
        }
    }
    if let Some(prefix) = cfg.allowing_prefix(rule, &fa.path) {
        return Resolution::Config(prefix.to_string());
    }
    Resolution::Open
}

/// Liveness ledger for the suppression audit: every annotation and
/// config entry that suppressed (or absorbed) something this run.
#[derive(Debug, Default)]
pub struct Uses {
    /// `(file index, allow index)` pairs.
    pub annotations: BTreeSet<(usize, usize)>,
    /// `(rule, prefix)` pairs.
    pub config: BTreeSet<(String, String)>,
}

/// Resolves a batch of raw diagnostics from `fa` into `report`,
/// recording usage in `uses`.
fn resolve_into(
    fa: &FileAnalysis,
    fi: usize,
    cfg: &Config,
    diags: Vec<Diagnostic>,
    report: &mut Report,
    uses: &mut Uses,
) {
    for d in diags {
        match resolve_site(fa, cfg, d.rule, d.line) {
            Resolution::Annotation(ai) => {
                uses.annotations.insert((fi, ai));
                report.suppressed.push(Suppressed {
                    rule: d.rule,
                    path: d.path,
                    line: d.line,
                    how: "annotation",
                    reason: fa.allows[ai].reason.clone(),
                });
            }
            Resolution::Config(prefix) => {
                uses.config.insert((d.rule.to_string(), prefix));
                report.suppressed.push(Suppressed {
                    rule: d.rule,
                    path: d.path,
                    line: d.line,
                    how: "config",
                    reason: String::new(),
                });
            }
            Resolution::Open => report.diagnostics.push(d),
        }
    }
}

/// Lints one file's source text, appending into `report`. Lexical
/// rules plus suppression only — the interprocedural passes need the
/// whole workspace and run in [`run_workspace`].
pub fn lint_source(path: &str, src: &str, cfg: &Config, report: &mut Report) {
    let fa = analyze_source(path, src);
    let diags = fa.diags.clone();
    let mut uses = Uses::default();
    resolve_into(&fa, 0, cfg, diags, report, &mut uses);
}

/// Collects the `.rs` files the workspace lint covers: everything under
/// `crates/`, `src/`, `tests/`, and `examples/`, excluding build
/// output and lint fixtures (fixtures are deliberately-bad code,
/// exercised by `--self-check` and the fixture tests instead).
pub fn walk_workspace(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut out);
    }
    // Canonical order keeps reports byte-stable across platforms.
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-analysis options.
#[derive(Debug, Default)]
pub struct WsOptions {
    /// Cache file for per-file analyses; `None` disables caching.
    pub cache_file: Option<PathBuf>,
}

/// A fully analyzed workspace: per-file analyses, config, call graph,
/// and propagated effects. [`Workspace::report`] renders the verdict;
/// [`Workspace::effect_map_json`] the CI artifact.
pub struct Workspace {
    pub files: Vec<FileAnalysis>,
    pub cfg: Config,
    pub graph: callgraph::CallGraph,
    pub taint: effects::Taint,
    /// Cache statistics of this run: `(hits, misses)`; `(0, n)` cold.
    pub cache_stats: (usize, usize),
}

/// Analyzes the whole workspace rooted at `root`, reading `lint.toml`
/// from the root if present.
pub fn analyze_workspace(root: &Path, opts: &WsOptions) -> Result<Workspace, String> {
    let cfg = load_config(root)?;
    let mut cache = opts.cache_file.as_deref().map(cache::Cache::load);
    let mut files = Vec::new();
    for path in walk_workspace(root) {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
        let hash = cache::fnv64(src.as_bytes());
        let fa = match cache.as_mut().and_then(|c| c.get(&rel, hash)) {
            Some(hit) => hit,
            None => {
                let fa = analyze_source(&rel, &src);
                if let Some(c) = cache.as_mut() {
                    c.put(&rel, hash, &fa);
                }
                fa
            }
        };
        files.push(fa);
    }
    let cache_stats = cache
        .as_ref()
        .map(|c| (c.hits, c.misses))
        .unwrap_or((0, files.len()));
    if let Some(c) = cache.as_ref() {
        // Best-effort: a read-only checkout just stays cold.
        let _ = c.save();
    }

    let parsed: Vec<(&str, &FileItems)> =
        files.iter().map(|f| (f.path.as_str(), &f.items)).collect();
    let graph = callgraph::CallGraph::build(&parsed);
    let taint = effects::propagate(&files, &graph, &cfg);
    Ok(Workspace {
        files,
        cfg,
        graph,
        taint,
        cache_stats,
    })
}

impl Workspace {
    /// Resolves everything into the final report: lexical rules, the
    /// transitive-effect pass, and the suppression audit.
    pub fn report(&self) -> Report {
        let mut report = Report {
            files_scanned: self.files.len(),
            ..Report::default()
        };
        let mut uses = Uses::default();
        uses.annotations
            .extend(self.taint.used_annotations.iter().copied());
        uses.config.extend(self.taint.used_config.iter().cloned());

        for (fi, fa) in self.files.iter().enumerate() {
            resolve_into(fa, fi, &self.cfg, fa.diags.clone(), &mut report, &mut uses);
        }
        for (fi, d) in effects::findings(&self.files, &self.graph, &self.cfg, &self.taint) {
            audit::resolve_pass_diag(&self.files[fi], fi, &self.cfg, d, &mut uses, &mut report);
        }
        audit::run(&self.files, &self.cfg, &mut uses, &mut report);
        report.sort();
        report
    }

    /// The machine-readable per-function effect map (CI artifact).
    pub fn effect_map_json(&self) -> String {
        effects::effect_map_json(&self.graph, &self.taint)
    }
}

/// Lints the whole workspace rooted at `root` (no cache), reading
/// `lint.toml` from the root if present.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    analyze_workspace(root, &WsOptions::default()).map(|ws| ws.report())
}

/// Loads `lint.toml` from `root`; a missing file means an empty config.
pub fn load_config(root: &Path) -> Result<Config, String> {
    match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => Config::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("lint.toml: read failed: {e}")),
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The virtual workspace path a rule's fixtures are linted under, so
/// path-scoped rules fire on them.
pub fn fixture_virtual_path(rule_id: &str) -> String {
    match rule_id {
        "panic-in-decode" => "crates/core/src/persist/codec.rs".to_string(),
        "as-cast-truncation" => "crates/daemon/src/wire.rs".to_string(),
        "hash-iteration" => "crates/daemon/src/fixture_hash_iteration.rs".to_string(),
        _ => format!("crates/core/src/fixture_{}.rs", rule_id.replace('-', "_")),
    }
}

/// Outcome of checking one fixture file (or pass fixture tree).
#[derive(Debug)]
pub struct FixtureResult {
    pub rule: String,
    pub file: String,
    pub pass: bool,
    pub detail: String,
}

fn fixture_result(
    id: &str,
    file: String,
    kind: &str,
    hits: usize,
    suppressed: usize,
) -> FixtureResult {
    let (pass, detail) = match kind {
        "bad" => (hits >= 1, format!("{hits} diagnostic(s), expected >= 1")),
        "good" => (hits == 0, format!("{hits} diagnostic(s), expected 0")),
        _ => (
            hits == 0 && suppressed >= 1,
            format!(
                "{hits} diagnostic(s) (expected 0), {suppressed} reasoned suppression(s) (expected >= 1)"
            ),
        ),
    };
    FixtureResult {
        rule: id.to_string(),
        file,
        pass,
        detail,
    }
}

/// Runs every rule's bad/good/allow fixtures under
/// `crates/lint/tests/fixtures/<rule>/` and checks the contract:
/// `bad.rs` trips the rule, `good.rs` is clean, `allow.rs` is clean
/// *because* of annotations (suppressions present, reasons recorded).
/// The two interprocedural passes check the same contract over
/// bad/good/allow *mini-workspace trees* (each a root with its own
/// `crates/` and optional `lint.toml`), since they need call graphs
/// and configs, not single files.
pub fn self_check(root: &Path) -> Result<Vec<FixtureResult>, String> {
    let cfg = Config::default(); // fixtures never consult lint.toml
    let mut results = Vec::new();
    for rule in rules::all_rules() {
        let id = rule.id();
        let dir = root.join("crates/lint/tests/fixtures").join(id);
        let vpath = fixture_virtual_path(id);
        for kind in ["bad", "good", "allow"] {
            let fpath = dir.join(format!("{kind}.rs"));
            let src = std::fs::read_to_string(&fpath)
                .map_err(|e| format!("{}: read failed: {e}", fpath.display()))?;
            let mut report = Report::default();
            lint_source(&vpath, &src, &cfg, &mut report);
            let hits = report.diagnostics.iter().filter(|d| d.rule == id).count();
            let suppressed = report
                .suppressed
                .iter()
                .filter(|s| s.rule == id && s.how == "annotation" && !s.reason.is_empty())
                .count();
            results.push(fixture_result(
                id,
                format!("{id}/{kind}.rs"),
                kind,
                hits,
                suppressed,
            ));
        }
    }
    for id in [TRANSITIVE_EFFECT, STALE_SUPPRESSION] {
        for kind in ["bad", "good", "allow"] {
            let tree = root.join("crates/lint/tests/fixtures").join(id).join(kind);
            let report = run_workspace(&tree).map_err(|e| format!("{id}/{kind}: {e}"))?;
            if report.files_scanned == 0 {
                return Err(format!("{id}/{kind}: fixture tree has no files"));
            }
            let hits = report.diagnostics.iter().filter(|d| d.rule == id).count();
            let suppressed = report
                .suppressed
                .iter()
                .filter(|s| s.rule == id && s.how == "annotation" && !s.reason.is_empty())
                .count();
            results.push(fixture_result(
                id,
                format!("{id}/{kind}/"),
                kind,
                hits,
                suppressed,
            ));
        }
    }
    Ok(results)
}
