//! A small, purpose-built Rust lexer.
//!
//! `blameit-lint` needs just enough lexical structure to pattern-match
//! determinism hazards without false positives from comments, string
//! literals, or doc text: `Instant::now` inside a doc comment is prose,
//! inside code it is a violation. A full parser (`syn`) would pull a
//! proc-macro dependency closure into the workspace; this tokenizer
//! covers the subset the rules need:
//!
//! - line/block comments (nested), with `lint:allow(rule): reason`
//!   annotations extracted as [`AllowComment`]s rather than discarded;
//! - string/char/byte/raw-string literals (contents never tokenized);
//! - raw identifiers (`r#type`), lifetimes vs. char literals;
//! - attributes, so `#[cfg(test)]` modules and `#[test]` functions can
//!   be marked and skipped by rules (test code may use `unwrap`, wall
//!   clocks, etc. freely — the contract binds product code).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `r#type` → `type`).
    Ident,
    /// Single punctuation character (`.`, `:`, `(`, `[`, …).
    Punct,
    /// String, char, byte-string, or raw-string literal.
    Literal,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// True when the token sits inside a `#[cfg(test)]` module or a
    /// `#[test]` function body (filled in by [`mark_test_regions`]).
    pub in_test: bool,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A `lint:allow(<rule>): <reason>` annotation found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowComment {
    pub rule: String,
    pub reason: String,
    /// Line the annotation appears on.
    pub line: u32,
}

/// Lexer output for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowComment>,
}

/// Tokenizes `src`, extracting allow-annotations and marking test
/// regions. Never fails: unterminated constructs are consumed to EOF.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    };
    lx.run();
    let mut lexed = lx.out;
    mark_test_regions(&mut lexed.toks);
    lexed
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(line, col),
                'b' | 'r' if self.starts_string_prefix() => self.prefixed_lit(line, col),
                '\'' => self.quote(line, col),
                c if is_ident_start(c) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    let c = self.bump().unwrap();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
    }

    /// Does the cursor sit on a `b"`, `r"`, `br"`, `b'`, or `r#"`-style
    /// literal prefix (as opposed to an identifier starting with b/r)?
    fn starts_string_prefix(&self) -> bool {
        let mut i = 0;
        if self.peek(0) == Some('b') {
            i = 1;
        }
        if self.peek(i) == Some('r') {
            // br"…", r"…", or raw with hashes: br#…", r#…". `r#ident`
            // is a raw identifier, so hashes must lead to a quote.
            let mut j = i + 1;
            while self.peek(j) == Some('#') {
                j += 1;
            }
            return self.peek(j) == Some('"') && (j > i + 1 || self.peek(i + 1) == Some('"'));
        }
        // b"…" or b'…'
        i == 1 && matches!(self.peek(1), Some('"') | Some('\''))
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.scan_allow(&text, start_line);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        let mut text_line = self.line;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some('\n'), _) => {
                    self.scan_allow(&text, text_line);
                    text.clear();
                    self.bump();
                    text_line = self.line;
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.scan_allow(&text, text_line);
    }

    /// Extracts a `lint:allow(<rule>): <reason>` annotation from one
    /// line of comment text, if present.
    fn scan_allow(&mut self, text: &str, line: u32) {
        let mut t = text.trim_start();
        if let Some(body) = t.strip_prefix("//") {
            // Doc comments (`///`, `//!`) only *mention* the syntax in
            // prose; treating those as annotations would make the
            // suppression auditor flag every doc mention as stale.
            if body.starts_with('/') || body.starts_with('!') {
                return;
            }
            t = body.trim_start();
        }
        // A real escape starts its comment with `lint:allow(`;
        // mid-sentence mentions are not annotations.
        let Some(rest) = t.strip_prefix("lint:allow(") else {
            return;
        };
        let Some(close) = rest.find(')') else {
            return;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').unwrap_or(after).trim().to_string();
        self.out.allows.push(AllowComment { rule, reason, line });
    }

    fn string_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line, col);
    }

    fn prefixed_lit(&mut self, line: u32, col: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.quote(line, col); // b'x'
            return;
        }
        let raw = self.peek(0) == Some('r');
        if raw {
            self.bump();
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
                         // Raw string: ends at `"` followed by `hashes` hash marks.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.push(TokKind::Literal, String::new(), line, col);
        } else {
            self.string_lit(line, col); // b"…"
        }
    }

    /// A `'` is either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: skip the backslash and the
                // escaped character (which may itself be `'`), then
                // consume to the closing quote (covers `'\u{1F600}'`).
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, String::new(), line, col);
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char literal; `'a` (no closing quote after
                // the ident run) is a lifetime.
                let mut run = 1;
                while self.peek(run).map(is_ident_continue) == Some(true) {
                    run += 1;
                }
                if self.peek(run) == Some('\'') {
                    for _ in 0..=run {
                        self.bump();
                    }
                    self.push(TokKind::Literal, String::new(), line, col);
                } else {
                    let mut name = String::from("'");
                    while self.peek(0).map(is_ident_continue) == Some(true) {
                        name.push(self.bump().unwrap());
                    }
                    self.push(TokKind::Lifetime, name, line, col);
                }
            }
            Some(_) => {
                // `'(' `, `'\u{..}'`, etc.: consume to closing quote.
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, String::new(), line, col);
            }
            None => {}
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        name.push(self.bump().unwrap());
        // Raw identifier `r#type`: strip the prefix, keep the name.
        if name == "r"
            && self.peek(0) == Some('#')
            && self.peek(1).map(is_ident_start) == Some(true)
        {
            self.bump();
            name.clear();
        }
        while self.peek(0).map(is_ident_continue) == Some(true) {
            name.push(self.bump().unwrap());
        }
        self.push(TokKind::Ident, name, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).map(|d| d.is_ascii_digit()) == Some(true) {
                // `1.5` continues the number; `1.max(2)` and `0..n` do not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks tokens inside `#[cfg(test)] mod … { … }` blocks and `#[test]`
/// function bodies with `in_test = true`, so rules can skip them.
///
/// The scan is lexical: a test-flavored attribute (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`) arms a latch; the next
/// balanced `{ … }` block before a top-level `;` is the test region.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0;
    let mut armed = false;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Scan the attribute to its matching `]`.
            let mut depth = 0usize;
            let mut has_test = false;
            let mut has_not = false;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("test") || toks[j].is_ident("tests") {
                    has_test = true;
                } else if toks[j].is_ident("not") {
                    // `#[cfg(not(test))]` gates *product* code; treating
                    // it as test would silently skip real hazards.
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                armed = true;
            }
            i = j + 1;
            continue;
        }
        if armed {
            if toks[i].is_punct(';') {
                // `#[cfg(test)] use …;` — no block to skip.
                armed = false;
            } else if toks[i].is_punct('{') {
                let mut depth = 0usize;
                while i < toks.len() {
                    if toks[i].is_punct('{') {
                        depth += 1;
                    } else if toks[i].is_punct('}') {
                        depth -= 1;
                    }
                    toks[i].in_test = true;
                    i += 1;
                    if depth == 0 {
                        break;
                    }
                }
                armed = false;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_idents() {
        let src = r##"
// Instant::now in prose
/* block SystemTime::now */
let x = "Instant::now()";
let y = r#"SystemTime::now"#;
let z = b"thread_rng";
fn real() { foo(); }
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "Instant" || s == "SystemTime"));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; g(c, nl); }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let ids = idents("let r#type = 1; let plain = r#type;");
        assert_eq!(ids, vec!["let", "type", "let", "plain", "type"]);
    }

    #[test]
    fn allow_annotations_extracted() {
        let src = "// lint:allow(wall-clock): metrics-only timing\nfn f() {}\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.allows,
            vec![AllowComment {
                rule: "wall-clock".into(),
                reason: "metrics-only timing".into(),
                line: 1,
            }]
        );
    }

    #[test]
    fn doc_mentions_are_not_annotations() {
        let src = "\
/// A `lint:allow(wall-clock): reason` mention in docs.
//! syntax: `lint:allow(socket-io): why`
// the escape hatch is lint:allow(sip-hasher): mid-sentence
// lint:allow(float-order): the only real one here
fn f() {}
";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1, "{:?}", lexed.allows);
        assert_eq!(lexed.allows[0].rule, "float-order");
        assert_eq!(lexed.allows[0].line, 4);
    }

    #[test]
    fn cfg_test_modules_marked() {
        let src = "fn prod() { a(); }\n#[cfg(test)]\nmod tests {\n fn t() { b(); }\n}\nfn prod2() { c(); }\n";
        let lexed = lex(src);
        let a = lexed.toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        let c = lexed.toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert!(!a.in_test);
        assert!(b.in_test);
        assert!(!c.in_test);
    }

    #[test]
    fn test_attr_fn_marked_and_latch_clears_on_semi() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { x(); }\n#[test]\nfn t() { y(); }\n";
        let lexed = lex(src);
        let x = lexed.toks.iter().find(|t| t.is_ident("x")).unwrap();
        let y = lexed.toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert!(!x.in_test);
        assert!(y.in_test);
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let lexed = lex("for i in 0..10 { let x = 1.5; let y = 2.max(3); }");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2", "3"]);
    }
}
