//! `lint.toml` — the per-module allowlist.
//!
//! The file holds one `[allow]` table mapping rule IDs to path-prefix
//! lists; any file whose workspace-relative path starts with a listed
//! prefix is exempt from that rule (suppressions are still counted and
//! reported in `--json`). This is deliberately a tiny TOML subset —
//! sections, `key = ["a", "b"]` single-line string arrays, `#`
//! comments — parsed by hand so the linter stays dependency-free.
//!
//! ```toml
//! [allow]
//! wall-clock = ["crates/obs/", "crates/bench/src/bin/"]
//! ```

use std::collections::BTreeMap;

/// Parsed allowlist configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// rule id → path prefixes exempt from that rule.
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// True if `path` (workspace-relative, `/`-separated) is exempt
    /// from `rule`.
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|prefixes| prefixes.iter().any(|p| path.starts_with(p.as_str())))
    }

    /// Parses the `lint.toml` subset. Unknown sections are ignored;
    /// malformed lines are errors (a silently dropped allowlist entry
    /// would surface as a confusing violation).
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = [..]`", idx + 1));
            };
            if section != "allow" {
                continue;
            }
            let key = key.trim().trim_matches('"').to_string();
            let prefixes = parse_string_array(value.trim())
                .map_err(|e| format!("lint.toml:{}: {}", idx + 1, e))?;
            cfg.allow.entry(key).or_default().extend(prefixes);
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` into its strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[..]` array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let s = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{item}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_sections() {
        let cfg = Config::parse(
            "# comment\n[allow]\nwall-clock = [\"crates/obs/\", \"crates/bench/\"] # trailing\n\n[other]\nx = [\"y\"]\n",
        )
        .unwrap();
        assert!(cfg.allows("wall-clock", "crates/obs/src/trace.rs"));
        assert!(cfg.allows("wall-clock", "crates/bench/src/bin/run_all.rs"));
        assert!(!cfg.allows("wall-clock", "crates/core/src/pipeline.rs"));
        assert!(!cfg.allows("float-order", "crates/obs/src/trace.rs"));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Config::parse("[allow]\nwall-clock = nope\n").is_err());
        assert!(Config::parse("[allow]\njust words\n").is_err());
    }

    #[test]
    fn empty_and_missing_are_fine() {
        let cfg = Config::parse("").unwrap();
        assert!(!cfg.allows("wall-clock", "anything.rs"));
    }
}
