//! `lint.toml` — the per-module allowlist and effect-scope config.
//!
//! The file holds one `[allow]` table mapping rule IDs to path-prefix
//! lists; any file whose workspace-relative path starts with a listed
//! prefix is exempt from that rule (suppressions are still counted and
//! reported in `--json`). An optional `[effects]` table scopes the
//! transitive effect analysis: `protected` lists the path prefixes
//! whose functions must not *reach* an effect through any call chain
//! (default: `crates/core/src/`). This is deliberately a tiny TOML
//! subset — sections, `key = ["a", "b"]` single-line string arrays,
//! `#` comments — parsed by hand so the linter stays dependency-free.
//!
//! ```toml
//! [allow]
//! wall-clock = ["crates/obs/", "crates/bench/src/bin/"]
//!
//! [effects]
//! protected = ["crates/core/src/"]
//! ```

use std::collections::BTreeMap;

/// The effect-analysis protected scope when `[effects] protected` is
/// absent from `lint.toml`.
pub const DEFAULT_PROTECTED: &str = "crates/core/src/";

/// One `[allow]` entry, with its `lint.toml` line for the suppression
/// auditor's stale-prefix reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub prefix: String,
    /// 1-based line in `lint.toml`.
    pub line: u32,
}

/// Parsed allowlist configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// rule id → path prefixes exempt from that rule.
    pub allow: BTreeMap<String, Vec<String>>,
    /// Every `[allow]` entry in file order, for the suppression audit.
    pub entries: Vec<AllowEntry>,
    /// `[effects] protected` path prefixes.
    pub protected: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            allow: BTreeMap::new(),
            entries: Vec::new(),
            protected: vec![DEFAULT_PROTECTED.to_string()],
        }
    }
}

impl Config {
    /// True if `path` (workspace-relative, `/`-separated) is exempt
    /// from `rule`.
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.allowing_prefix(rule, path).is_some()
    }

    /// The first configured prefix that exempts `path` from `rule`,
    /// if any — callers use the prefix itself to mark the entry as
    /// live for the suppression audit.
    pub fn allowing_prefix(&self, rule: &str, path: &str) -> Option<&str> {
        self.allow.get(rule).and_then(|prefixes| {
            prefixes
                .iter()
                .find(|p| path.starts_with(p.as_str()))
                .map(|p| p.as_str())
        })
    }

    /// Parses the `lint.toml` subset. Unknown sections are ignored;
    /// malformed lines are errors (a silently dropped allowlist entry
    /// would surface as a confusing violation).
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut saw_protected = false;
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = [..]`", idx + 1));
            };
            let key = key.trim().trim_matches('"').to_string();
            if section == "allow" {
                let prefixes = parse_string_array(value.trim())
                    .map_err(|e| format!("lint.toml:{}: {}", idx + 1, e))?;
                for p in &prefixes {
                    cfg.entries.push(AllowEntry {
                        rule: key.clone(),
                        prefix: p.clone(),
                        line: idx as u32 + 1,
                    });
                }
                cfg.allow.entry(key).or_default().extend(prefixes);
            } else if section == "effects" && key == "protected" {
                let prefixes = parse_string_array(value.trim())
                    .map_err(|e| format!("lint.toml:{}: {}", idx + 1, e))?;
                if !saw_protected {
                    cfg.protected.clear();
                    saw_protected = true;
                }
                cfg.protected.extend(prefixes);
            }
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` into its strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[..]` array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let s = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{item}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_sections() {
        let cfg = Config::parse(
            "# comment\n[allow]\nwall-clock = [\"crates/obs/\", \"crates/bench/\"] # trailing\n\n[other]\nx = [\"y\"]\n",
        )
        .unwrap();
        assert!(cfg.allows("wall-clock", "crates/obs/src/trace.rs"));
        assert!(cfg.allows("wall-clock", "crates/bench/src/bin/run_all.rs"));
        assert!(!cfg.allows("wall-clock", "crates/core/src/pipeline.rs"));
        assert!(!cfg.allows("float-order", "crates/obs/src/trace.rs"));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Config::parse("[allow]\nwall-clock = nope\n").is_err());
        assert!(Config::parse("[allow]\njust words\n").is_err());
    }

    #[test]
    fn empty_and_missing_are_fine() {
        let cfg = Config::parse("").unwrap();
        assert!(!cfg.allows("wall-clock", "anything.rs"));
    }

    #[test]
    fn entries_carry_lines_and_prefixes() {
        let cfg = Config::parse(
            "[allow]\nwall-clock = [\"crates/obs/\"]\nsocket-io = [\"a/\", \"b/\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.entries.len(), 3);
        assert_eq!(cfg.entries[0].rule, "wall-clock");
        assert_eq!(cfg.entries[0].line, 2);
        assert_eq!(
            cfg.entries[2],
            AllowEntry {
                rule: "socket-io".into(),
                prefix: "b/".into(),
                line: 3
            }
        );
        assert_eq!(
            cfg.allowing_prefix("wall-clock", "crates/obs/src/trace.rs"),
            Some("crates/obs/")
        );
        assert_eq!(
            cfg.allowing_prefix("wall-clock", "crates/core/src/x.rs"),
            None
        );
    }

    #[test]
    fn effects_protected_overrides_default() {
        let def = Config::parse("").unwrap();
        assert_eq!(def.protected, vec![DEFAULT_PROTECTED.to_string()]);
        let cfg = Config::parse("[effects]\nprotected = [\"crates/daemon/src/\"]\n").unwrap();
        assert_eq!(cfg.protected, vec!["crates/daemon/src/".to_string()]);
    }
}
