//! The determinism rule set.
//!
//! Each rule is a lexical pattern over the token stream of one file,
//! deny-by-default, with two escape hatches handled by the driver: an
//! inline `// lint:allow(<rule>): <reason>` annotation, and a per-module
//! path allowlist in `lint.toml`. Rules skip `#[cfg(test)]` / `#[test]`
//! regions — the contract binds product code; tests are free to use
//! wall clocks and `unwrap`.
//!
//! Rules are heuristics, deliberately: a lexer cannot prove dataflow.
//! Each one is tuned so that every firing is either a real hazard or a
//! place where a one-line annotation documents *why* it is safe — which
//! is exactly the audit trail the determinism contract wants.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use std::collections::BTreeSet;

/// Everything a rule gets to look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    pub toks: &'a [Tok],
    /// Raw source lines (1-based indexing via `line - 1`).
    pub lines: &'a [String],
}

impl FileCtx<'_> {
    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn diag(&self, rule: &'static str, tok: &Tok, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
            witness: Vec::new(),
        }
    }
}

/// A determinism rule.
pub trait Rule {
    /// Stable rule ID, used in diagnostics, annotations, and lint.toml.
    fn id(&self) -> &'static str;
    /// One-line description for `--rules` and the docs table.
    fn summary(&self) -> &'static str;
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>);
}

/// The full registry, in diagnostic-ID order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(AmbientEntropy),
        Box::new(AsCastTruncation),
        Box::new(FloatKeySort),
        Box::new(FloatOrder),
        Box::new(HashIteration),
        Box::new(PanicInDecode),
        Box::new(SipHasher),
        Box::new(SocketIo),
        Box::new(ThreadIdentity),
        Box::new(UnorderedIteration),
        Box::new(WallClock),
    ]
}

/// True if `toks[i..]` starts with the given `(is_ident, text)`
/// pattern, where punctuation entries match single chars.
fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| {
        toks.get(i + k).is_some_and(|t| {
            if p.chars().count() == 1 && !p.chars().next().unwrap().is_alphanumeric() && *p != "_" {
                t.is_punct(p.chars().next().unwrap())
            } else {
                t.is_ident(p)
            }
        })
    })
}

// ---------------------------------------------------------------- wall-clock

/// `Instant::now` / `SystemTime::now` / `.elapsed()` in sim code.
///
/// Wall time differs across hosts, runs, and thread counts; anything it
/// feeds (beyond operator-facing metrics) diverges the tick transcript.
/// Sim code must use sim time. `.elapsed()` is only flagged in files
/// that also name `Instant`/`SystemTime`, so sim-time methods that
/// happen to be called `elapsed` do not trip it.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }
    fn summary(&self) -> &'static str {
        "Instant::now/SystemTime::now/.elapsed() outside obs & bench: sim code must use sim time"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        let has_std_time = f
            .toks
            .iter()
            .any(|t| !t.in_test && (t.is_ident("Instant") || t.is_ident("SystemTime")));
        for (i, t) in f.toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            for src in ["Instant", "SystemTime"] {
                if seq(f.toks, i, &[src, ":", ":", "now"]) {
                    out.push(f.diag(
                        self.id(),
                        t,
                        format!("`{src}::now` reads the wall clock; sim code must derive time from the tick (sim time) so transcripts replay byte-identically"),
                    ));
                }
            }
            if has_std_time && seq(f.toks, i, &[".", "elapsed", "("]) {
                out.push(f.diag(
                    self.id(),
                    &f.toks[i + 1],
                    "`.elapsed()` measures wall time in a file that uses std::time; route durations through sim time or annotate if metrics-only".to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- sip-hasher

/// Bare `HashMap`/`HashSet` in `crates/core`: engine maps must use the
/// deterministic Fx-hashed aliases.
///
/// `std`'s default `RandomState` seeds SipHash from process entropy —
/// slow for the short fixed-width keys the engine hashes, and a fresh
/// iteration order every run (one more variance source while chasing a
/// transcript diff). `crate::fxhash::{DetHashMap, DetHashSet}` are
/// drop-in replacements constructed via `::default()` or the
/// `det_*_with_capacity` helpers. The rule is lexical: any non-test
/// mention of the bare std names inside `crates/core/src/` fires —
/// type position, turbofish, or import — so the hazard is caught at
/// the `use` line, before the first map is even built. Annotate the
/// rare legitimate reference (the alias definitions themselves; the
/// legacy reference aggregator kept for the differential harness).
pub struct SipHasher;

impl Rule for SipHasher {
    fn id(&self) -> &'static str {
        "sip-hasher"
    }
    fn summary(&self) -> &'static str {
        "bare HashMap/HashSet in crates/core: use fxhash::DetHashMap/DetHashSet (deterministic, non-sip)"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        if !f.path.starts_with("crates/core/src/") {
            return;
        }
        for t in f.toks {
            if t.in_test || !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
                continue;
            }
            out.push(f.diag(
                self.id(),
                t,
                format!(
                    "bare `{name}` hashes with randomly-seeded SipHash; use `crate::fxhash::Det{name}` \
                     (construct via `::default()` or `det_*_with_capacity`) or annotate why std hashing is required",
                    name = t.text
                ),
            ));
        }
    }
}

// ----------------------------------------------------------------- socket-io

/// `TcpListener`/`TcpStream`/`UdpSocket` outside the daemon's IO
/// shell.
///
/// The standing architecture rule is *IO at the edges, determinism in
/// the middle*: every decision `blameitd` makes lives in
/// [`DaemonCore`], a pure function of the offered batches, and only
/// the server/feeder shell may touch sockets (allowlisted in
/// `lint.toml`). A socket type appearing anywhere else — the engine,
/// the daemon's decision core, the WAL — means IO is leaking into code
/// that must replay byte-identically without a network.
pub struct SocketIo;

impl Rule for SocketIo {
    fn id(&self) -> &'static str {
        "socket-io"
    }
    fn summary(&self) -> &'static str {
        "TcpListener/TcpStream/UdpSocket outside the daemon IO shell: keep sockets at the edges"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        for t in f.toks {
            if t.in_test {
                continue;
            }
            for name in ["TcpListener", "TcpStream", "UdpSocket"] {
                if t.is_ident(name) {
                    out.push(f.diag(
                        self.id(),
                        t,
                        format!(
                            "`{name}` is raw socket IO; decisions must stay in socket-free code \
                             (move the IO to the daemon's server/feeder shell, or annotate why \
                             this edge is sanctioned)"
                        ),
                    ));
                }
            }
        }
    }
}

// ----------------------------------------------------------- thread-identity

/// `thread::current()` / `ThreadId` anywhere in product code.
///
/// The sharded tick promises byte-identical transcripts at any thread
/// count; the moment RNG seeding or emission keys on which thread ran
/// the work, that promise is gone. Shard RNG keys on
/// (seed, bucket, shard) only — see `simnet::shard_rng`.
pub struct ThreadIdentity;

impl Rule for ThreadIdentity {
    fn id(&self) -> &'static str {
        "thread-identity"
    }
    fn summary(&self) -> &'static str {
        "thread::current()/ThreadId near RNG or emission: key on (seed, bucket, shard) instead"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        for (i, t) in f.toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            if seq(f.toks, i, &["thread", ":", ":", "current"]) {
                out.push(f.diag(
                    self.id(),
                    t,
                    "`thread::current()` makes output depend on which worker ran the shard; derive identity from (seed, bucket, shard) keys".to_string(),
                ));
            }
            if t.is_ident("ThreadId") {
                out.push(f.diag(
                    self.id(),
                    t,
                    "`ThreadId` is scheduler-assigned and varies run to run; key RNG/emission on (seed, bucket, shard) instead".to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------- ambient-entropy

/// `rand`, `RandomState`, and other nondeterministic seed sources.
///
/// All randomness must flow through `DetRng::from_keys(seed, …)` —
/// counter-based, platform-stable, thread-count-independent. Ambient
/// entropy (OS RNG, hasher randomization, time-derived seeds) breaks
/// replay and the 6-seed determinism suites cannot even detect it
/// reliably, because every run is its own seed.
pub struct AmbientEntropy;

impl Rule for AmbientEntropy {
    fn id(&self) -> &'static str {
        "ambient-entropy"
    }
    fn summary(&self) -> &'static str {
        "rand/RandomState/OS entropy outside DetRng: all randomness must be seed-keyed"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        for (i, t) in f.toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            if seq(f.toks, i, &["rand", ":", ":"])
                || seq(f.toks, i, &["use", "rand", ";"])
                || seq(f.toks, i, &["extern", "crate", "rand"])
            {
                out.push(f.diag(
                    self.id(),
                    t,
                    "the `rand` crate draws ambient entropy; use `DetRng::from_keys(seed, …)` so every draw is replayable".to_string(),
                ));
            }
            for ident in [
                "RandomState",
                "thread_rng",
                "from_entropy",
                "OsRng",
                "getrandom",
            ] {
                if t.is_ident(ident) {
                    out.push(f.diag(
                        self.id(),
                        t,
                        format!("`{ident}` is an ambient entropy source; all randomness must be keyed on the run seed via DetRng"),
                    ));
                }
            }
            if t.is_ident("UNIX_EPOCH") {
                out.push(f.diag(
                    self.id(),
                    t,
                    "time-since-epoch is a wall-clock-derived value; deriving ids or seeds from it varies per run".to_string(),
                ));
            }
        }
    }
}

// --------------------------------------------------------------- float-order

/// `partial_cmp` inside a sort/min/max comparator.
///
/// `partial_cmp(..).unwrap()` panics on NaN, and `unwrap_or(Equal)`
/// silently turns NaN into an unstable pivot — either way the order is
/// not total and the emitted ranking can differ between otherwise
/// identical runs. Comparators over floats must use `f64::total_cmp`.
pub struct FloatOrder;

const COMPARATOR_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

impl Rule for FloatOrder {
    fn id(&self) -> &'static str {
        "float-order"
    }
    fn summary(&self) -> &'static str {
        "partial_cmp in sort/min/max comparators: use total_cmp for a total, NaN-safe order"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        let toks = f.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test || t.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            if !COMPARATOR_FNS.contains(&t.text.as_str())
                || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // Scan the comparator's argument list to the matching `)`.
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("partial_cmp") {
                    out.push(f.diag(
                        self.id(),
                        &toks[j],
                        format!(
                            "`partial_cmp` inside `{}` is not a total order (NaN panics or compares Equal); use `f64::total_cmp`",
                            t.text
                        ),
                    ));
                }
                j += 1;
            }
        }
    }
}

// ------------------------------------------------------------ float-key-sort

/// Float-keyed sort/min/max outside the sanctioned comparators.
///
/// `float-order` catches `partial_cmp`; this rule catches the other
/// shape of the same hazard: a sort key or comparator built from
/// `f32`/`f64` values or float literals (`sort_by_key(|x| (x.score *
/// 1e6) as i64)` quantizes differently than the ranking math, and a
/// float-typed key cannot even express a total order). `total_cmp` and
/// `to_bits` are the sanctioned escape hatches — both give every bit
/// pattern, NaN included, one fixed position.
pub struct FloatKeySort;

const KEYED_COMPARATOR_FNS: &[&str] = &[
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "max_by_key",
    "min_by_key",
    "binary_search_by_key",
];

const SANCTIONED_FLOAT_ORDER: &[&str] = &["total_cmp", "to_bits"];

/// A numeric literal token that parses as a float (`1.5`, `2e9`).
fn is_float_literal(text: &str) -> bool {
    let bytes = text.as_bytes();
    if bytes.is_empty() || !bytes[0].is_ascii_digit() || text.starts_with("0x") {
        return false;
    }
    text.contains('.') || text.contains('e') || text.contains('E')
}

impl Rule for FloatKeySort {
    fn id(&self) -> &'static str {
        "float-key-sort"
    }
    fn summary(&self) -> &'static str {
        "f32/f64 inside sort/min/max keys or comparators: use total_cmp/to_bits or integer keys"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        let toks = f.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test || t.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            if !(KEYED_COMPARATOR_FNS.contains(&t.text.as_str())
                || COMPARATOR_FNS.contains(&t.text.as_str()))
                || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // Scan the argument list to the matching `)` for float
            // evidence, unless a sanctioned total order appears.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut float_at: Option<usize> = None;
            let mut sanctioned = false;
            while j < toks.len() {
                let a = &toks[j];
                if a.is_punct('(') {
                    depth += 1;
                } else if a.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if SANCTIONED_FLOAT_ORDER.contains(&a.text.as_str()) {
                    sanctioned = true;
                } else if float_at.is_none()
                    && (a.is_ident("f32")
                        || a.is_ident("f64")
                        || (a.kind == crate::lexer::TokKind::Num && is_float_literal(&a.text)))
                {
                    float_at = Some(j);
                }
                j += 1;
            }
            if let Some(fj) = float_at {
                if !sanctioned {
                    out.push(f.diag(
                        self.id(),
                        &toks[fj],
                        format!(
                            "float-valued key inside `{}` orders by a non-total comparison; use `total_cmp`/`to_bits` or an integer key so ranking ties break identically every run",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}

// -------------------------------------------------------- as-cast-truncation

/// Narrowing `as` casts in the codec paths.
///
/// `len() as u32` silently wraps past 4 GiB and `v as u8` drops high
/// bits; in `persist/` and the daemon wire codec a wrapped length
/// field is indistinguishable from corruption *two layers later*, when
/// the decoder walks off the frame. Width changes on these paths must
/// go through `try_from` (reject) or be annotated with the proof of
/// range (`lint:allow(as-cast-truncation): …`).
pub struct AsCastTruncation;

/// Paths where narrowing casts feed bytes on disk or on the wire.
const CAST_SCOPES: &[&str] = &["crates/core/src/persist/", "crates/daemon/src/wire.rs"];

/// Integer types narrower than the platform-width/64-bit values that
/// lengths, counts, and ids carry in this workspace.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

impl Rule for AsCastTruncation {
    fn id(&self) -> &'static str {
        "as-cast-truncation"
    }
    fn summary(&self) -> &'static str {
        "narrowing `as` casts in persist/ and daemon wire codec: use try_from or annotate the range proof"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        if !CAST_SCOPES.iter().any(|p| f.path.starts_with(p)) {
            return;
        }
        let toks = f.toks;
        for i in 1..toks.len() {
            let t = &toks[i];
            if t.in_test || !t.is_ident("as") {
                continue;
            }
            let Some(ty) = toks.get(i + 1) else { continue };
            if !NARROW_INTS.contains(&ty.text.as_str()) {
                continue;
            }
            // `use x as y` renames are not casts; the previous token of
            // a cast is an expression end, never the `use` path start.
            if toks[..i].iter().rev().take(8).any(|p| p.is_ident("use")) {
                continue;
            }
            out.push(f.diag(
                self.id(),
                t,
                format!(
                    "`as {ty}` truncates silently on this codec path; use `{ty}::try_from` and surface the error, or annotate the range proof",
                    ty = ty.text
                ),
            ));
        }
    }
}

// ----------------------------------------------------------- panic-in-decode

/// `unwrap`/`expect`/`panic!`/indexing in persist decode paths.
///
/// The persist_props fuzz contract: decoding arbitrary bytes must
/// return `Err`, never panic — a panic on a torn journal tail or a
/// bit-flipped snapshot turns recoverable corruption into a crash loop.
/// Applies to `crates/core/src/persist/{codec,journal,snapshot}.rs`.
pub struct PanicInDecode;

pub const DECODE_FILES: &[&str] = &[
    "crates/core/src/persist/codec.rs",
    "crates/core/src/persist/journal.rs",
    "crates/core/src/persist/snapshot.rs",
];

impl Rule for PanicInDecode {
    fn id(&self) -> &'static str {
        "panic-in-decode"
    }
    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/indexing in persist decode paths: corrupt input must return Err"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        if !DECODE_FILES.contains(&f.path) {
            return;
        }
        let toks = f.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test {
                continue;
            }
            for m in ["unwrap", "expect"] {
                if seq(toks, i, &[".", m, "("]) {
                    out.push(f.diag(
                        self.id(),
                        &toks[i + 1],
                        format!("`.{m}()` in a decode path panics on corrupt input; return a codec error (persist_props fuzz contract)"),
                    ));
                }
            }
            for m in [
                "panic",
                "unreachable",
                "todo",
                "unimplemented",
                "assert",
                "assert_eq",
                "assert_ne",
            ] {
                if t.is_ident(m) && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    out.push(f.diag(
                        self.id(),
                        t,
                        format!("`{m}!` in a decode path can fire on corrupt input; return a codec error instead"),
                    ));
                }
            }
            // Postfix indexing `x[..]` can panic on short input. Array
            // types/literals (`[u8; 4]`), macros (`vec![`), and
            // attributes (`#[`) are not postfix positions.
            if t.is_punct('[') && i > 0 {
                let prev = &toks[i - 1];
                let postfix = (prev.kind == crate::lexer::TokKind::Ident
                    && !is_keyword(&prev.text))
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if postfix {
                    out.push(f.diag(
                        self.id(),
                        t,
                        "indexing in a decode path panics when input is shorter than expected; use `get()`/`take()` and return an error".to_string(),
                    ));
                }
            }
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let" | "in" | "if" | "else" | "match" | "return" | "mut" | "ref" | "move" | "box"
    )
}

// ------------------------------------------------------ unordered-iteration

/// Iterating a `HashMap`/`HashSet` in `crates/core/src/` without an
/// order-restoring or order-insensitive sink.
///
/// Hash iteration order is unspecified and (for transcripts, alerts,
/// snapshots, metrics absorption) was the single largest source of
/// nondeterminism fixed in the sharded-tick PR. The rule tracks names
/// declared as hash containers in the file and flags iteration over
/// them, *except* when the same statement sorts the result, collects
/// into a BTree container, or reduces order-insensitively (`sum`,
/// `count`, `len`, `is_empty`, `all`, `any`, `contains…`), or when a
/// sort appears within the next three lines.
pub struct UnorderedIteration;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const SORT_FAMILY: &[&str] = &[
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

const ORDER_INSENSITIVE: &[&str] = &[
    "sum",
    "count",
    "len",
    "is_empty",
    "all",
    "any",
    "contains",
    "contains_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

impl Rule for UnorderedIteration {
    fn id(&self) -> &'static str {
        "unordered-iteration"
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration in core without sort/BTree/order-insensitive sink"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        if !f.path.starts_with("crates/core/src/") {
            return;
        }
        check_hash_iteration(self.id(), f, out);
    }
}

// ------------------------------------------------------------ hash-iteration

/// The same unordered-iteration hazard, extended beyond `crates/core`
/// to the other transcript-feeding paths the ROADMAP names: the daemon
/// (verdict batches, WAL records), the scenario runner (expectation
/// evaluation order), and obs render paths (report sections). These
/// crates are BTree-first today; the rule keeps growth honest — a
/// future `HashMap` iteration feeding a wire frame or a rendered table
/// reintroduces exactly the class of diff the sharded-tick PR killed.
pub struct HashIteration;

/// Path prefixes `hash-iteration` watches (core stays with
/// `unordered-iteration`, so each firing names the narrower rule).
const HASH_ITER_PATHS: &[&str] = &[
    "crates/daemon/src/",
    "crates/scenario/src/",
    "crates/obs/src/",
];

impl Rule for HashIteration {
    fn id(&self) -> &'static str {
        "hash-iteration"
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration in daemon/scenario/obs render paths without an ordered sink"
    }
    fn check(&self, f: &FileCtx, out: &mut Vec<Diagnostic>) {
        if !HASH_ITER_PATHS.iter().any(|p| f.path.starts_with(p)) {
            return;
        }
        check_hash_iteration(self.id(), f, out);
    }
}

/// Shared detection body for `unordered-iteration` / `hash-iteration`:
/// flags iteration over names bound to hash containers unless the
/// statement (or the next three lines) restores or ignores order.
fn check_hash_iteration(rule_id: &'static str, f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = f.toks;
    let events = binding_events(toks);
    if events.iter().all(|e| !e.hash) {
        return;
    }
    let sort_lines: BTreeSet<u32> = toks
        .iter()
        .filter(|t| SORT_FAMILY.contains(&t.text.as_str()))
        .map(|t| t.line)
        .collect();

    let is_waiver_word = |t: &Tok| {
        SORT_FAMILY.contains(&t.text.as_str()) || ORDER_INSENSITIVE.contains(&t.text.as_str())
    };
    let mut flag = |f: &FileCtx, idx: usize, name: &str, waivable: bool| {
        let mut waived = false;
        let mut stmt_end_line = toks[idx].line;
        if waivable {
            // Waiver 1a: statement prefix declares an ordered
            // destination (`let x: BTreeMap<…> = m.iter()…`).
            // Waiver words only count at chain depth 0 — words
            // inside closure bodies say nothing about the sink.
            let mut depth = 0isize;
            let mut j = idx;
            while j > 0 && idx - j < 200 {
                j -= 1;
                let t = &toks[j];
                if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth += 1;
                } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if depth == 0 && is_waiver_word(t) {
                    waived = true;
                    break;
                }
            }
            // Waiver 1b: the chain itself ends in a sort, a BTree
            // collect, or an order-insensitive reduction.
            let mut depth = 0isize;
            let mut j = idx;
            while j < toks.len() && j < idx + 400 {
                let t = &toks[j];
                stmt_end_line = t.line;
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if depth == 0 && is_waiver_word(t) {
                    waived = true;
                    break;
                }
                j += 1;
            }
            // Waiver 2: an explicit sort within three lines after
            // the statement (collect-then-sort as two statements).
            if !waived {
                waived = sort_lines
                    .iter()
                    .any(|l| *l >= toks[idx].line && *l <= stmt_end_line + 3);
            }
        }
        if !waived {
            out.push(f.diag(
                rule_id,
                &toks[idx],
                format!(
                    "iteration over hash container `{name}` feeds downstream state in arbitrary order; sort before emitting, collect into a BTreeMap/BTreeSet, or annotate why order cannot matter"
                ),
            ));
        }
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        // `name.iter()` / `self.name.keys()` / …
        if is_hash_at(&events, &t.text, i)
            && seq(toks, i + 1, &["."])
            && toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && toks.get(i + 3).is_some_and(|p| p.is_punct('('))
        {
            flag(f, i + 2, &t.text, true);
        }
        // `for pat in [&mut] name { … }` (direct Iterator impl).
        if t.is_ident("for") {
            if let Some(j) = (i + 1..(i + 14).min(toks.len())).find(|j| toks[*j].is_ident("in")) {
                let mut k = j + 1;
                while toks
                    .get(k)
                    .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
                {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| {
                    t.kind == crate::lexer::TokKind::Ident && is_hash_at(&events, &t.text, k)
                }) && toks.get(k + 1).is_some_and(|t| t.is_punct('{'))
                {
                    // A `for` body can do anything with the items;
                    // no lexical waiver applies — sort first or
                    // annotate why order cannot matter.
                    let name = toks[k].text.clone();
                    flag(f, k, &name, false);
                }
            }
        }
    }
}

/// One binding classification event: from token index `idx` onward,
/// `name` refers to a hash container (`hash: true`) or not. Shadowed
/// rebindings (`let rows = hash_map; … let rows: Vec<_> = …;`) emit a
/// later event that overrides the earlier classification, so a name's
/// meaning follows the program text instead of being file-global.
struct BindingEvent {
    idx: usize,
    name: String,
    hash: bool,
}

/// Index of the end of the statement containing token `from`: the
/// first `;` at depth 0, or the closing brace of the enclosing block.
/// A binding takes effect *after* its own statement, so the old
/// binding still governs uses inside the initializer
/// (`let m: Vec<_> = m.iter()…` iterates the hash `m`).
fn stmt_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from;
    while j < toks.len() && j < from + 400 {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    j
}

/// Collects binding events for hash-container classification, sorted
/// by position. Hash-positive events come from `name: HashMap<…>`
/// (fields, params, typed lets) and `name = HashMap::new()`-style
/// initializers; every plain `let [mut] name` additionally emits a
/// hash-negative event so rebinding a name to an ordered container
/// clears it. Fields and params classify file-wide (idx 0); `let`
/// bindings and local assignments classify from their statement end.
fn binding_events(toks: &[Tok]) -> Vec<BindingEvent> {
    let mut events = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        // The deterministic `fxhash` aliases and their capacity
        // helpers classify exactly like the std names: swapping the
        // hasher fixes seeding, not iteration order, so
        // unordered-iteration must keep watching these bindings.
        let hash_namer = t.is_ident("HashMap")
            || t.is_ident("HashSet")
            || t.is_ident("DetHashMap")
            || t.is_ident("DetHashSet")
            || t.is_ident("det_map_with_capacity")
            || t.is_ident("det_set_with_capacity");
        if t.in_test || !hash_namer {
            continue;
        }
        // Strip a `path::segments::` prefix walking backwards.
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == crate::lexer::TokKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        let prev = &toks[j - 1];
        let (cand_idx, is_annotation) = if prev.is_punct(':') && j >= 2 {
            // `name: HashMap<…>` — make sure it is a single `:`.
            if j >= 3 && toks[j - 2].is_punct(':') {
                continue;
            }
            (j - 2, true)
        } else if prev.is_punct('=') && j >= 2 {
            // `let [mut] name = HashMap::new()`, `self.name = HashMap…`.
            (j - 2, false)
        } else {
            continue;
        };
        let cand = &toks[cand_idx];
        if cand.kind != crate::lexer::TokKind::Ident || is_keyword(&cand.text) {
            continue;
        }
        let before = cand_idx.checked_sub(1).map(|b| &toks[b]);
        let let_bound = matches!(before, Some(b) if b.is_ident("let") || b.is_ident("mut"));
        let field_like = matches!(before, Some(b) if b.is_punct('.'));
        // Fields and params (annotations outside `let`, or assignments
        // through `self.`/`x.`) hold for the whole file; local
        // bindings hold from the end of their own statement.
        let idx = if field_like || (is_annotation && !let_bound) {
            0
        } else {
            stmt_end(toks, i)
        };
        events.push(BindingEvent {
            idx,
            name: cand.text.clone(),
            hash: true,
        });
    }
    // Shadowing rebindings: every `let [mut] name` clears the name
    // from its statement end, unless a hash event above re-marks it.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || !t.is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name_tok) = toks.get(k) else {
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident || is_keyword(&name_tok.text) {
            continue;
        }
        events.push(BindingEvent {
            idx: stmt_end(toks, k),
            name: name_tok.text.clone(),
            hash: false,
        });
    }
    // At equal positions (a hash-typed `let` emits both events at the
    // same statement end) the hash-positive event must win, so sort
    // false-before-true and let the lookup take the last match.
    events.sort_by_key(|e| (e.idx, e.hash));
    events
}

/// Whether `name` refers to a hash container at token index `use_idx`:
/// the classification of the last binding event at or before the use.
fn is_hash_at(events: &[BindingEvent], name: &str, use_idx: usize) -> bool {
    let mut hash = false;
    for e in events {
        if e.idx > use_idx {
            break;
        }
        if e.name == name {
            hash = e.hash;
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check_one(rule: &dyn Rule, path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let ctx = FileCtx {
            path,
            toks: &lexed.toks,
            lines: &lines,
        };
        let mut out = Vec::new();
        rule.check(&ctx, &mut out);
        out
    }

    #[test]
    fn rule_ids_are_sorted_and_unique() {
        let ids: Vec<_> = all_rules().iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids, sorted, "registry must stay in ID order, no dups");
    }

    #[test]
    fn elapsed_needs_std_time_in_file() {
        let sim = "fn f(o: &Incident) -> u64 { o.elapsed() }";
        assert!(check_one(&WallClock, "crates/core/src/x.rs", sim).is_empty());
        let wall = "use std::time::Instant;\nfn f(t: Instant) -> u128 { t.elapsed().as_nanos() }";
        assert_eq!(check_one(&WallClock, "crates/core/src/x.rs", wall).len(), 1);
    }

    #[test]
    fn hash_names_found_through_paths_and_new() {
        let src = "struct S { counts: std::collections::HashMap<u32, u64> }\nfn f() { let mut seen = HashSet::new(); seen.len(); }";
        let toks = &lex(src).toks;
        let events = binding_events(toks);
        // `counts` is a field: hash from the start of the file.
        assert!(is_hash_at(&events, "counts", 0));
        // `seen` is a local `let`: hash only after its statement.
        assert!(is_hash_at(&events, "seen", toks.len() - 1));
        assert!(!is_hash_at(&events, "seen", 0));
        assert!(!is_hash_at(&events, "other", toks.len() - 1));
    }

    #[test]
    fn rebinding_tracks_shadowed_names() {
        // hash → ordered rebinding: the `for` iterates the sorted Vec,
        // not the map; must NOT flag.
        let cleared = "use std::collections::HashMap;\n\
             fn f(m: HashMap<u32, u32>) {\n\
             let mut rows: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();\n\
             rows.sort_unstable();\n\
             let m = rows;\n\
             for (k, v) in &m { emit(k, v); }\n\
             }";
        assert!(
            check_one(&UnorderedIteration, "crates/core/src/x.rs", cleared).is_empty(),
            "rebinding to an ordered container must clear the name"
        );
        // ordered → hash rebinding: the later `let` re-marks the name;
        // must flag the iteration after it.
        let remarked = "use std::collections::HashMap;\n\
             fn f() {\n\
             let m: Vec<(u32, u32)> = Vec::new();\n\
             for (k, v) in &m { emit(k, v); }\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             for (k, v) in &m { emit(k, v); }\n\
             }";
        assert_eq!(
            check_one(&UnorderedIteration, "crates/core/src/x.rs", remarked).len(),
            1,
            "rebinding to a hash container must re-mark the name"
        );
        // The shadowing initializer still sees the old hash binding:
        // `let m: Vec<_> = m.iter()…` without a sort must flag.
        let initializer = "use std::collections::HashMap;\n\
             fn f(m: HashMap<u32, u32>) {\n\
             let m: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();\n\
             emit_all(m);\n\
             }";
        assert_eq!(
            check_one(&UnorderedIteration, "crates/core/src/x.rs", initializer).len(),
            1,
            "uses inside the shadowing initializer refer to the old binding"
        );
    }

    #[test]
    fn unordered_iteration_waivers() {
        let flagged = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) { for (k, v) in &m { emit(k, v); } }";
        assert_eq!(
            check_one(&UnorderedIteration, "crates/core/src/x.rs", flagged).len(),
            1
        );
        let sorted_chain = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) { let mut v: Vec<_> = m.iter().collect(); v.sort(); }";
        assert!(check_one(&UnorderedIteration, "crates/core/src/x.rs", sorted_chain).is_empty());
        let sum = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) -> u32 { m.values().sum() }";
        assert!(check_one(&UnorderedIteration, "crates/core/src/x.rs", sum).is_empty());
        let next_line_sort = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) { let mut v: Vec<_> = m.keys().copied().collect();\n v.sort_unstable();\n }";
        assert!(check_one(&UnorderedIteration, "crates/core/src/x.rs", next_line_sort).is_empty());
        // Outside crates/core the rule is silent.
        assert!(check_one(&UnorderedIteration, "crates/cli/src/x.rs", flagged).is_empty());
    }

    #[test]
    fn float_order_only_in_comparators() {
        let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(check_one(&FloatOrder, "crates/core/src/x.rs", bad).len(), 1);
        let good = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(check_one(&FloatOrder, "crates/core/src/x.rs", good).is_empty());
        let outside =
            "impl PartialOrd for S { fn partial_cmp(&self, o: &S) -> Option<Ordering> { None } }";
        assert!(check_one(&FloatOrder, "crates/core/src/x.rs", outside).is_empty());
    }

    #[test]
    fn panic_in_decode_scope_and_postfix_index() {
        let src = "fn decode(b: &[u8]) -> u8 { let x = b[0]; x }";
        assert_eq!(
            check_one(&PanicInDecode, "crates/core/src/persist/codec.rs", src).len(),
            1
        );
        assert!(check_one(&PanicInDecode, "crates/core/src/pipeline.rs", src).is_empty());
        let arr_ty = "fn f() -> [u8; 2] { let a: [u8; 2] = [0, 1]; a }";
        assert!(check_one(&PanicInDecode, "crates/core/src/persist/codec.rs", arr_ty).is_empty());
        let mac = "fn f() -> Vec<u8> { vec![0; 4] }";
        assert!(check_one(&PanicInDecode, "crates/core/src/persist/codec.rs", mac).is_empty());
    }

    #[test]
    fn float_key_sort_evidence_and_sanctions() {
        let bad = "fn f(v: &mut Vec<Row>) { v.sort_by_key(|x| (x.score * 1e6) as i64); }";
        assert_eq!(
            check_one(&FloatKeySort, "crates/core/src/x.rs", bad).len(),
            1
        );
        let bad_cmp = "fn f(v: &mut Vec<f64>) { v.sort_unstable_by(|a, b| cmp_f64(*a, *b)); }";
        // `f64` appears inside the comparator args? No — only in the fn
        // signature, outside the call. Must stay quiet.
        assert!(check_one(&FloatKeySort, "crates/core/src/x.rs", bad_cmp).is_empty());
        let total = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }";
        assert!(check_one(&FloatKeySort, "crates/core/src/x.rs", total).is_empty());
        let bits = "fn f(v: &mut Vec<f64>) { v.sort_by_key(|x| x.to_bits()); }";
        assert!(check_one(&FloatKeySort, "crates/core/src/x.rs", bits).is_empty());
        let ints = "fn f(v: &mut Vec<(u64, u32)>) { v.sort_by_key(|x| x.0); }";
        assert!(check_one(&FloatKeySort, "crates/core/src/x.rs", ints).is_empty());
        let typed = "fn f(v: &mut Vec<Row>) { v.min_by_key(|x| x.w as f64 ); }";
        assert_eq!(
            check_one(&FloatKeySort, "crates/core/src/x.rs", typed).len(),
            1
        );
    }

    #[test]
    fn as_cast_truncation_scope_and_types() {
        let bad =
            "fn put(buf: &mut Vec<u8>, len: usize) { let n = len as u32; buf.push(n as u8); }";
        assert_eq!(
            check_one(&AsCastTruncation, "crates/daemon/src/wire.rs", bad).len(),
            2
        );
        assert_eq!(
            check_one(&AsCastTruncation, "crates/core/src/persist/codec.rs", bad).len(),
            2
        );
        // Outside the codec scopes the rule is silent.
        assert!(check_one(&AsCastTruncation, "crates/core/src/pipeline.rs", bad).is_empty());
        // Widening casts are fine.
        let widen = "fn get(b: u8) -> u64 { b as u64 }";
        assert!(check_one(&AsCastTruncation, "crates/daemon/src/wire.rs", widen).is_empty());
    }

    #[test]
    fn hash_iteration_scope() {
        let flagged = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) { for (k, v) in &m { emit(k, v); } }";
        for path in [
            "crates/daemon/src/server.rs",
            "crates/scenario/src/runner.rs",
            "crates/obs/src/render.rs",
        ] {
            assert_eq!(check_one(&HashIteration, path, flagged).len(), 1, "{path}");
        }
        // Core belongs to unordered-iteration; elsewhere out of scope.
        assert!(check_one(&HashIteration, "crates/core/src/x.rs", flagged).is_empty());
        assert!(check_one(&HashIteration, "crates/bench/src/x.rs", flagged).is_empty());
        let ordered = "use std::collections::BTreeMap;\nfn f(m: BTreeMap<u32, u32>) { for (k, v) in &m { emit(k, v); } }";
        assert!(check_one(&HashIteration, "crates/daemon/src/server.rs", ordered).is_empty());
    }

    #[test]
    fn ambient_entropy_patterns() {
        let bad = "use rand::Rng;\nfn f() { let s = RandomState::new(); }";
        let diags = check_one(&AmbientEntropy, "crates/core/src/x.rs", bad);
        assert_eq!(diags.len(), 2);
        let good =
            "fn f(seed: u64) { let mut rng = DetRng::from_keys(seed, &[1]); rng.next_u64(); }";
        assert!(check_one(&AmbientEntropy, "crates/core/src/x.rs", good).is_empty());
    }
}
