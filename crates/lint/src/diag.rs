//! Diagnostics and report rendering (human text and `--json`).

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// The offending source line, trimmed, for context in reports.
    pub snippet: String,
    /// For interprocedural findings: the call chain from the flagged
    /// function to the effect site, one hop per entry. Empty for plain
    /// lexical rules.
    pub witness: Vec<String>,
}

/// A violation that was suppressed, and why.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    /// `annotation` (inline `lint:allow`) or `config` (lint.toml).
    pub how: &'static str,
    /// The reason given in the annotation (empty for config allows).
    pub reason: String,
}

/// Full result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub suppressed: Vec<Suppressed>,
    pub files_scanned: usize,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Canonical ordering: path, then line, then column, then rule.
    /// Keeps output byte-stable regardless of walk or rule order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        self.suppressed
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n",
                d.path, d.line, d.col, d.rule, d.message, d.snippet
            ));
            for hop in &d.witness {
                out.push_str(&format!("      {hop}\n"));
            }
        }
        out.push_str(&format!(
            "blameit-lint: {} violation(s), {} suppressed, {} file(s) scanned\n",
            self.diagnostics.len(),
            self.suppressed.len(),
            self.files_scanned
        ));
        out
    }

    /// Machine-readable report (single JSON object).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            push_json_str(&mut out, d.rule);
            out.push_str(", \"path\": ");
            push_json_str(&mut out, &d.path);
            out.push_str(&format!(", \"line\": {}, \"col\": {}, ", d.line, d.col));
            out.push_str("\"message\": ");
            push_json_str(&mut out, &d.message);
            out.push_str(", \"snippet\": ");
            push_json_str(&mut out, &d.snippet);
            out.push_str(", \"witness\": [");
            for (k, hop) in d.witness.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                push_json_str(&mut out, hop);
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            push_json_str(&mut out, s.rule);
            out.push_str(", \"path\": ");
            push_json_str(&mut out, &s.path);
            out.push_str(&format!(", \"line\": {}, \"how\": ", s.line));
            push_json_str(&mut out, s.how);
            out.push_str(", \"reason\": ");
            push_json_str(&mut out, &s.reason);
            out.push('}');
        }
        out.push_str(&format!(
            "\n  ],\n  \"files_scanned\": {},\n  \"violations\": {}\n}}\n",
            self.files_scanned,
            self.diagnostics.len()
        ));
        out
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
/// Mirrors `blameit-obs::json` — duplicated so this crate stays
/// dependency-free even within the workspace.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            diagnostics: vec![Diagnostic {
                rule: "wall-clock",
                path: "a\\b.rs".into(),
                line: 3,
                col: 7,
                message: "say \"no\"".into(),
                snippet: "x".into(),
                witness: vec!["a -> b".into()],
            }],
            suppressed: vec![],
            files_scanned: 1,
        };
        r.sort();
        let j = r.render_json();
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"witness\": [\"a -> b\"]"));
        assert!(r.render_text().contains("      a -> b\n"));
        assert!(!r.ok());
    }

    #[test]
    fn sort_is_canonical() {
        let d = |path: &str, line| Diagnostic {
            rule: "x",
            path: path.into(),
            line,
            col: 1,
            message: String::new(),
            snippet: String::new(),
            witness: Vec::new(),
        };
        let mut r = Report {
            diagnostics: vec![d("b.rs", 1), d("a.rs", 9), d("a.rs", 2)],
            suppressed: vec![],
            files_scanned: 2,
        };
        r.sort();
        let order: Vec<_> = r
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
