//! Whole-workspace call graph over the parsed items.
//!
//! Name resolution is heuristic — the lexer-level parser has no type
//! information — and tuned to *under*-approximate rather than flood:
//! a call edge the resolver cannot place with reasonable confidence is
//! dropped (the analysis misses a propagation), never guessed across
//! the whole workspace (which would taint everything through common
//! method names like `len` or `get`). The rules:
//!
//! - free calls (`foo(...)`) resolve by name, preferring same-file
//!   definitions, then same-crate, then workspace-unique;
//! - path calls (`Qual::foo(...)`) additionally require the qualifier
//!   to match the definition's `impl` type, module, or file stem when
//!   more than one candidate exists;
//! - method calls (`x.foo(...)`) resolve only when the method name is
//!   defined by same-file candidates or is unique workspace-wide;
//! - `use orig as alias` renames are applied before lookup.
//!
//! Everything is index-based and sorted, so graph construction and
//! traversal order are byte-deterministic across platforms.

use crate::parse::{CallKind, FileItems, FnItem};
use std::collections::BTreeMap;

/// One function node in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file path.
    pub file: String,
    /// The parsed item (name, impl type, body extent, call sites).
    pub item: FnItem,
}

impl FnNode {
    /// `module::Type::name` display key.
    pub fn qual(&self) -> String {
        self.item.qual()
    }

    /// Top-level crate prefix of the file (`crates/core/`), used for
    /// same-crate resolution preference.
    pub fn crate_prefix(&self) -> &str {
        crate_prefix(&self.file)
    }
}

/// `crates/<name>/` prefix of a workspace path, or the first path
/// segment for root `src/`/`tests/` files.
pub fn crate_prefix(path: &str) -> &str {
    let mut slashes = 0usize;
    for (i, b) in path.bytes().enumerate() {
        if b == b'/' {
            slashes += 1;
            let want = if path.starts_with("crates/") { 2 } else { 1 };
            if slashes == want {
                return &path[..=i];
            }
        }
    }
    path
}

/// Method/free names that std's prelude and core traits define on
/// practically every type (`x.clone()`, `w.write(..)`, `it.collect()`).
/// A workspace-unique local definition with one of these names is far
/// more likely to be shadowed by the std method at any given call site
/// than to be its target, so cross-file resolution never commits to
/// them — only a same-file definition counts.
const UBIQUITOUS_NAMES: &[&str] = &[
    "add",
    "as_bytes",
    "as_ref",
    "as_str",
    "borrow",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "count",
    "default",
    "drain",
    "eq",
    "extend",
    "filter",
    "find",
    "flush",
    "fold",
    "from",
    "get",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "join",
    "last",
    "len",
    "load",
    "map",
    "max",
    "min",
    "new",
    "next",
    "open",
    "parse",
    "push",
    "read",
    "remove",
    "retain",
    "rev",
    "set",
    "sort",
    "split",
    "store",
    "sub",
    "sum",
    "take",
    "to_string",
    "trim",
    "write",
];

/// A resolved edge: `caller` (node index) calls `callee` at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub caller: u32,
    pub callee: u32,
    pub line: u32,
    pub col: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes sorted by (file, line): index order is canonical.
    pub nodes: Vec<FnNode>,
    /// Resolved edges, sorted; parallel adjacency built on demand.
    pub edges: Vec<Edge>,
    /// Outgoing adjacency: `out[i]` = indices into `edges`, sorted.
    pub out: Vec<Vec<u32>>,
    /// Incoming adjacency: `incoming[i]` = indices into `edges`.
    pub incoming: Vec<Vec<u32>>,
}

impl CallGraph {
    /// Builds the graph from per-file parsed items. `files` must be
    /// sorted by path (the workspace walker guarantees it).
    pub fn build(files: &[(&str, &FileItems)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (path, items) in files {
            for f in &items.fns {
                nodes.push(FnNode {
                    file: path.to_string(),
                    item: f.clone(),
                });
            }
        }
        nodes.sort_by(|a, b| {
            (&a.file, a.item.line, a.item.col, &a.item.name).cmp(&(
                &b.file,
                b.item.line,
                b.item.col,
                &b.item.name,
            ))
        });

        // Name index over non-test definitions.
        let mut by_name: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if !n.item.in_test {
                by_name.entry(&n.item.name).or_default().push(i as u32);
            }
        }

        // Per-file alias maps.
        let aliases: BTreeMap<&str, BTreeMap<&str, &str>> = files
            .iter()
            .map(|(path, items)| {
                let m: BTreeMap<&str, &str> = items
                    .aliases
                    .iter()
                    .filter(|a| a.alias != a.target)
                    .map(|a| (a.alias.as_str(), a.target.as_str()))
                    .collect();
                (*path, m)
            })
            .collect();

        let mut edges = Vec::new();
        for (ci, caller) in nodes.iter().enumerate() {
            if caller.item.in_test {
                continue;
            }
            let renames = aliases.get(caller.file.as_str());
            for call in &caller.item.calls {
                let name = renames
                    .and_then(|m| m.get(call.name.as_str()).copied())
                    .unwrap_or(call.name.as_str());
                let Some(cands) = by_name.get(name) else {
                    continue;
                };
                if let Some(callee) = resolve(&nodes, caller, call.kind, &call.qualifier, cands) {
                    if callee != ci as u32 {
                        edges.push(Edge {
                            caller: ci as u32,
                            callee,
                            line: call.line,
                            col: call.col,
                        });
                    }
                }
            }
        }
        edges.sort();
        edges.dedup_by(|a, b| (a.caller, a.callee) == (b.caller, b.callee));

        let mut out = vec![Vec::new(); nodes.len()];
        let mut incoming = vec![Vec::new(); nodes.len()];
        for (ei, e) in edges.iter().enumerate() {
            out[e.caller as usize].push(ei as u32);
            incoming[e.callee as usize].push(ei as u32);
        }
        CallGraph {
            nodes,
            edges,
            out,
            incoming,
        }
    }
}

/// Picks the definition a call site refers to, or `None` when the
/// heuristics cannot commit to one.
fn resolve(
    nodes: &[FnNode],
    caller: &FnNode,
    kind: CallKind,
    qualifier: &str,
    cands: &[u32],
) -> Option<u32> {
    debug_assert!(!cands.is_empty());
    let same_file: Vec<u32> = cands
        .iter()
        .copied()
        .filter(|&i| nodes[i as usize].file == caller.file)
        .collect();
    // Ubiquitous std names: trust only local evidence (same file, or an
    // explicit corroborated path qualifier below).
    if !matches!(kind, CallKind::Path)
        && UBIQUITOUS_NAMES.contains(&nodes[cands[0] as usize].item.name.as_str())
    {
        return (same_file.len() == 1).then(|| same_file[0]);
    }
    match kind {
        CallKind::Method => {
            // Method names are the ambiguity hot spot (`len`, `get`,
            // `new`): commit only with local or unique evidence.
            if same_file.len() == 1 {
                Some(same_file[0])
            } else if same_file.is_empty() && cands.len() == 1 {
                Some(cands[0])
            } else {
                first_in_crate_if_unique(nodes, caller, &same_file, cands)
            }
        }
        CallKind::Path => {
            // The qualifier must corroborate: impl type, module tail,
            // or file stem. `Self::helper` matches the caller's type.
            let matches_qual = |i: u32| -> bool {
                let n = &nodes[i as usize];
                let stem = n
                    .file
                    .rsplit('/')
                    .next()
                    .and_then(|f| f.strip_suffix(".rs"))
                    .unwrap_or("");
                qualifier == n.item.self_ty
                    || n.item.module.rsplit("::").next() == Some(qualifier)
                    || qualifier == stem
                    || (qualifier == "Self"
                        && !caller.item.self_ty.is_empty()
                        && n.item.self_ty == caller.item.self_ty
                        && n.crate_prefix() == caller.crate_prefix())
                    || (qualifier == "crate" && n.crate_prefix() == caller.crate_prefix())
            };
            let hits: Vec<u32> = cands.iter().copied().filter(|&i| matches_qual(i)).collect();
            match hits.len() {
                1 => Some(hits[0]),
                0 if cands.len() == 1 => Some(cands[0]),
                0 => None,
                // Qualifier matched several (same type name in two
                // crates): prefer the caller's own file, then crate.
                _ => hits
                    .iter()
                    .copied()
                    .find(|&i| nodes[i as usize].file == caller.file)
                    .or_else(|| {
                        let in_crate: Vec<u32> = hits
                            .iter()
                            .copied()
                            .filter(|&i| nodes[i as usize].crate_prefix() == caller.crate_prefix())
                            .collect();
                        (in_crate.len() == 1).then(|| in_crate[0])
                    }),
            }
        }
        CallKind::Free => {
            if same_file.len() == 1 {
                Some(same_file[0])
            } else if same_file.len() > 1 {
                // Two same-file defs with one name (different impls):
                // prefer the caller's own impl type.
                same_file
                    .iter()
                    .copied()
                    .find(|&i| nodes[i as usize].item.self_ty == caller.item.self_ty)
            } else if cands.len() == 1 {
                Some(cands[0])
            } else {
                first_in_crate_if_unique(nodes, caller, &same_file, cands)
            }
        }
    }
}

/// Falls back to "exactly one candidate in the caller's crate".
fn first_in_crate_if_unique(
    nodes: &[FnNode],
    caller: &FnNode,
    same_file: &[u32],
    cands: &[u32],
) -> Option<u32> {
    if !same_file.is_empty() {
        return None;
    }
    let in_crate: Vec<u32> = cands
        .iter()
        .copied()
        .filter(|&i| nodes[i as usize].crate_prefix() == caller.crate_prefix())
        .collect();
    (in_crate.len() == 1).then(|| in_crate[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(&str, FileItems)> = files
            .iter()
            .map(|(p, src)| (*p, parse_items(&lex(src).toks)))
            .collect();
        let borrowed: Vec<(&str, &FileItems)> = parsed.iter().map(|(p, i)| (*p, i)).collect();
        CallGraph::build(&borrowed)
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| {
                (
                    g.nodes[e.caller as usize].qual(),
                    g.nodes[e.callee as usize].qual(),
                )
            })
            .collect()
    }

    #[test]
    fn cross_file_free_call_resolves_when_unique() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn alpha() { beta(); }"),
            ("crates/b/src/lib.rs", "fn beta() { }"),
        ]);
        assert_eq!(edge_names(&g), vec![("alpha".into(), "beta".into())]);
    }

    #[test]
    fn same_file_wins_over_cross_crate() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn run() { helper(); }\nfn helper() {}",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let e = edge_names(&g);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].0, "run");
        assert_eq!(
            g.nodes[g.edges[0].callee as usize].file,
            "crates/a/src/lib.rs"
        );
    }

    #[test]
    fn ambiguous_method_calls_drop() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn go(x: W) { x.len(); }"),
            ("crates/b/src/lib.rs", "impl V { fn len(&self) {} }"),
            ("crates/c/src/lib.rs", "impl W { fn len(&self) {} }"),
        ]);
        assert!(edge_names(&g).is_empty(), "two candidate `len`s: no edge");
    }

    #[test]
    fn unique_method_resolves() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn go(x: W) { x.observe_rtt(); }"),
            ("crates/b/src/lib.rs", "impl W { fn observe_rtt(&self) {} }"),
        ]);
        assert_eq!(edge_names(&g), vec![("go".into(), "W::observe_rtt".into())]);
    }

    #[test]
    fn path_calls_need_matching_qualifier() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn go() { Widget::make(); Other::make(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "impl Widget { fn make() {} }\nimpl Gadget { fn make() {} }",
            ),
        ]);
        assert_eq!(
            edge_names(&g),
            vec![("go".into(), "Widget::make".into())],
            "Other::make matches no impl and must drop"
        );
    }

    #[test]
    fn use_renames_resolve_to_target() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use b::orig_name as short;\nfn go() { short(); }",
            ),
            ("crates/b/src/lib.rs", "fn orig_name() {}"),
        ]);
        assert_eq!(edge_names(&g), vec![("go".into(), "orig_name".into())]);
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "#[test]\nfn t() { target(); }\nfn target() {}\nfn prod() { target(); }",
        )]);
        assert_eq!(edge_names(&g), vec![("prod".into(), "target".into())]);
    }

    #[test]
    fn crate_prefix_shapes() {
        assert_eq!(crate_prefix("crates/core/src/pipeline.rs"), "crates/core/");
        assert_eq!(crate_prefix("src/lib.rs"), "src/");
        assert_eq!(crate_prefix("tests/props.rs"), "tests/");
    }
}
