//! Per-file analysis cache.
//!
//! A file's `FileAnalysis` (raw diagnostics, effect sites, allow
//! annotations, parsed items) is a pure function of its content, so it
//! is cached keyed on an FNV-1a content hash — warm runs skip the
//! lexer, all rules, and the item parser, and only the cross-file
//! phases (call graph, propagation, suppression, audit) re-run. The
//! config is deliberately *not* part of the key: suppression is
//! resolved after analysis, so editing `lint.toml` never invalidates a
//! single entry.
//!
//! The format is a line-oriented tab-separated text file (one record
//! type per line, `\t`/`\n`/`\\` escaped) with a fingerprint header;
//! any mismatch, truncation, or hand-edit parses as a miss, never a
//! panic or a wrong analysis. Bump [`FINGERPRINT`] whenever rules or
//! the analysis shape change.

use crate::lexer::AllowComment;
use crate::parse::{CallKind, CallSite, FnItem, UseAlias};
use crate::FileAnalysis;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Bump on any rule or analysis-shape change to drop stale caches.
pub const FINGERPRINT: &str = "blameit-lint-cache v1 rules=11+2";

/// FNV-1a 64-bit over raw bytes: tiny, dependency-free, and stable
/// across platforms — collisions would need an adversarial source
/// file, at which point the author can also just delete the cache.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loaded cache plus run statistics.
#[derive(Debug, Default)]
pub struct Cache {
    path: PathBuf,
    entries: BTreeMap<String, (u64, FileAnalysis)>,
    dirty: bool,
    pub hits: usize,
    pub misses: usize,
}

impl Cache {
    /// Loads the cache file; a missing, unreadable, or mismatched file
    /// yields an empty cache.
    pub fn load(path: &Path) -> Cache {
        let mut cache = Cache {
            path: path.to_path_buf(),
            ..Cache::default()
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        if lines.next() != Some(FINGERPRINT) {
            return cache;
        }
        let mut cur: Option<(String, u64, FileAnalysis)> = None;
        let mut bad = false;
        for line in lines {
            let fields: Vec<String> = match split_fields(line) {
                Some(f) => f,
                None => {
                    bad = true;
                    cur = None;
                    continue;
                }
            };
            let tag = fields.first().map(|s| s.as_str()).unwrap_or("");
            if tag == "F" {
                if let Some((rel, hash, fa)) = cur.take() {
                    if !bad {
                        cache.entries.insert(rel, (hash, fa));
                    }
                }
                bad = false;
                if fields.len() == 3 {
                    if let Ok(hash) = u64::from_str_radix(&fields[2], 16) {
                        let fa = FileAnalysis {
                            path: fields[1].clone(),
                            ..FileAnalysis::default()
                        };
                        cur = Some((fields[1].clone(), hash, fa));
                        continue;
                    }
                }
                bad = true;
                continue;
            }
            let Some((_, _, fa)) = cur.as_mut() else {
                continue;
            };
            if !apply_record(fa, tag, &fields) {
                bad = true;
                cur = None;
            }
        }
        if let Some((rel, hash, fa)) = cur.take() {
            if !bad {
                cache.entries.insert(rel, (hash, fa));
            }
        }
        cache
    }

    /// A hit returns a clone of the cached analysis.
    pub fn get(&mut self, rel: &str, hash: u64) -> Option<FileAnalysis> {
        match self.entries.get(rel) {
            Some((h, fa)) if *h == hash => {
                self.hits += 1;
                Some(fa.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn put(&mut self, rel: &str, hash: u64, fa: &FileAnalysis) {
        self.entries.insert(rel.to_string(), (hash, fa.clone()));
        self.dirty = true;
    }

    /// Writes the cache back if anything changed. Failures (read-only
    /// checkout, missing parent) are reported but non-fatal — the next
    /// run is merely cold again.
    pub fn save(&self) -> Result<(), String> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("{}: create failed: {e}", parent.display()))?;
        }
        let mut out = String::from(FINGERPRINT);
        out.push('\n');
        for (rel, (hash, fa)) in &self.entries {
            serialize_analysis(&mut out, rel, *hash, fa);
        }
        std::fs::write(&self.path, out)
            .map_err(|e| format!("{}: write failed: {e}", self.path.display()))
    }
}

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Splits a record line into unescaped tab-separated fields.
fn split_fields(line: &str) -> Option<Vec<String>> {
    Some(line.split('\t').map(unesc).collect())
}

fn push_record(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        esc(out, f);
    }
    out.push('\n');
}

/// Serializes one file's analysis. Record types: `F` header, `D` raw
/// diagnostic, `S` effect site, `A` allow annotation (+ target line),
/// `N` fn item (followed by its `C` call sites), `U` use alias.
pub fn serialize_analysis(out: &mut String, rel: &str, hash: u64, fa: &FileAnalysis) {
    push_record(out, &["F", rel, &format!("{hash:016x}")]);
    for d in &fa.diags {
        push_record(
            out,
            &[
                "D",
                d.rule,
                &d.line.to_string(),
                &d.col.to_string(),
                &d.message,
                &d.snippet,
            ],
        );
    }
    for s in &fa.sites {
        push_record(
            out,
            &[
                "S",
                s.kind.as_str(),
                &s.line.to_string(),
                &s.col.to_string(),
                &s.what,
            ],
        );
    }
    for (ai, a) in fa.allows.iter().enumerate() {
        push_record(
            out,
            &[
                "A",
                &a.rule,
                &a.line.to_string(),
                &fa.allow_targets[ai].to_string(),
                &a.reason,
            ],
        );
    }
    for (k, f) in fa.items.fns.iter().enumerate() {
        let (lo, hi) = fa.fn_lines[k];
        push_record(
            out,
            &[
                "N",
                &f.name,
                &f.self_ty,
                &f.module,
                &f.line.to_string(),
                &f.col.to_string(),
                if f.in_test { "1" } else { "0" },
                &lo.to_string(),
                &hi.to_string(),
                &fa.fn_sigs[k],
            ],
        );
        for c in &f.calls {
            push_record(
                out,
                &[
                    "C",
                    &c.name,
                    &c.qualifier,
                    c.kind.as_str(),
                    &c.line.to_string(),
                    &c.col.to_string(),
                ],
            );
        }
    }
    for u in &fa.items.aliases {
        push_record(out, &["U", &u.alias, &u.target]);
    }
}

/// Applies one record to the analysis under construction; false on any
/// malformed field (the caller then discards the whole entry).
fn apply_record(fa: &mut FileAnalysis, tag: &str, fields: &[String]) -> bool {
    let num = |s: &String| s.parse::<u32>().ok();
    match tag {
        "D" => {
            if fields.len() != 6 {
                return false;
            }
            let (Some(rule), Some(line), Some(col)) = (
                crate::intern_rule(&fields[1]),
                num(&fields[2]),
                num(&fields[3]),
            ) else {
                return false;
            };
            fa.diags.push(crate::diag::Diagnostic {
                rule,
                path: fa.path.clone(),
                line,
                col,
                message: fields[4].clone(),
                snippet: fields[5].clone(),
                witness: Vec::new(),
            });
            true
        }
        "S" => {
            if fields.len() != 5 {
                return false;
            }
            let (Some(kind), Some(line), Some(col)) = (
                crate::effects::EffectKind::parse(&fields[1]),
                num(&fields[2]),
                num(&fields[3]),
            ) else {
                return false;
            };
            fa.sites.push(crate::effects::EffectSite {
                kind,
                line,
                col,
                what: fields[4].clone(),
            });
            true
        }
        "A" => {
            if fields.len() != 5 {
                return false;
            }
            let (Some(line), Some(target)) = (num(&fields[2]), num(&fields[3])) else {
                return false;
            };
            fa.allows.push(AllowComment {
                rule: fields[1].clone(),
                reason: fields[4].clone(),
                line,
            });
            fa.allow_targets.push(target);
            true
        }
        "N" => {
            if fields.len() != 10 {
                return false;
            }
            let (Some(line), Some(col), Some(lo), Some(hi)) = (
                num(&fields[4]),
                num(&fields[5]),
                num(&fields[7]),
                num(&fields[8]),
            ) else {
                return false;
            };
            fa.items.fns.push(FnItem {
                name: fields[1].clone(),
                self_ty: fields[2].clone(),
                module: fields[3].clone(),
                line,
                col,
                body: (0, 0), // token extents are not needed post-analysis
                in_test: fields[6] == "1",
                calls: Vec::new(),
            });
            fa.fn_lines.push((lo, hi));
            fa.fn_sigs.push(fields[9].clone());
            true
        }
        "C" => {
            if fields.len() != 6 {
                return false;
            }
            let (Some(kind), Some(line), Some(col)) = (
                CallKind::parse(&fields[3]),
                num(&fields[4]),
                num(&fields[5]),
            ) else {
                return false;
            };
            let Some(f) = fa.items.fns.last_mut() else {
                return false;
            };
            f.calls.push(CallSite {
                name: fields[1].clone(),
                qualifier: fields[2].clone(),
                kind,
                line,
                col,
            });
            true
        }
        "U" => {
            if fields.len() != 3 {
                return false;
            }
            fa.items.aliases.push(UseAlias {
                alias: fields[1].clone(),
                target: fields[2].clone(),
            });
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    const SRC: &str = "\
use std::time::Instant;
// lint:allow(wall-clock): timing shim for the harness
fn stamp() -> std::time::Instant { Instant::now() }
fn caller() { stamp(); helper::go(); }
";

    #[test]
    fn round_trip_is_lossless() {
        let fa = analyze_source("crates/core/src/x.rs", SRC);
        let hash = fnv64(SRC.as_bytes());
        let mut text = String::from(FINGERPRINT);
        text.push('\n');
        serialize_analysis(&mut text, "crates/core/src/x.rs", hash, &fa);
        let dir = std::env::temp_dir().join("blameit-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cache");
        std::fs::write(&path, &text).unwrap();
        let mut cache = Cache::load(&path);
        let back = cache.get("crates/core/src/x.rs", hash).expect("hit");
        assert_eq!(back.path, fa.path);
        assert_eq!(back.sites, fa.sites);
        assert_eq!(back.allow_targets, fa.allow_targets);
        assert_eq!(back.fn_lines, fa.fn_lines);
        assert_eq!(back.fn_sigs, fa.fn_sigs);
        assert_eq!(back.items.aliases, fa.items.aliases);
        assert_eq!(back.items.fns.len(), fa.items.fns.len());
        for (a, b) in back.items.fns.iter().zip(&fa.items.fns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.calls, b.calls);
            assert_eq!(a.in_test, b.in_test);
        }
        assert_eq!(back.diags.len(), fa.diags.len());
        for (a, b) in back.diags.iter().zip(&fa.diags) {
            assert_eq!((a.rule, a.line, a.col), (b.rule, b.line, b.col));
            assert_eq!(a.message, b.message);
        }
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn stale_hash_and_corrupt_lines_miss_without_panic() {
        let fa = analyze_source("crates/core/src/x.rs", SRC);
        let hash = fnv64(SRC.as_bytes());
        let mut text = String::from(FINGERPRINT);
        text.push('\n');
        serialize_analysis(&mut text, "crates/core/src/x.rs", hash, &fa);
        let dir = std::env::temp_dir().join("blameit-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.cache");

        // Content changed → hash mismatch → miss.
        std::fs::write(&path, &text).unwrap();
        let mut cache = Cache::load(&path);
        assert!(cache.get("crates/core/src/x.rs", hash ^ 1).is_none());

        // Truncations and garbage at every prefix parse as misses.
        for cut in (0..text.len()).step_by(37) {
            let mut broken = text[..cut].to_string();
            broken.push_str("\nX\tgarbage\nD\tnot-a-rule\tx\ty\tz\tw\n");
            std::fs::write(&path, &broken).unwrap();
            let _ = Cache::load(&path);
        }

        // Wrong fingerprint → empty cache.
        std::fs::write(&path, format!("other-fingerprint\n{text}")).unwrap();
        let mut cache = Cache::load(&path);
        assert!(cache.get("crates/core/src/x.rs", hash).is_none());
    }

    #[test]
    fn save_and_reload() {
        let fa = analyze_source("crates/core/src/y.rs", SRC);
        let hash = fnv64(SRC.as_bytes());
        let dir = std::env::temp_dir().join("blameit-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved.cache");
        let _ = std::fs::remove_file(&path);
        let mut cache = Cache::load(&path);
        cache.put("crates/core/src/y.rs", hash, &fa);
        cache.save().unwrap();
        let mut re = Cache::load(&path);
        assert!(re.get("crates/core/src/y.rs", hash).is_some());
    }
}
